"""Tests for the snapshot-based serving API (repro.api).

The contracts under test, per ISSUE 2:

* every clusterer in the repository is a :class:`repro.api.StreamClusterer`
  and ``request_clustering()`` returns a :class:`repro.api.ClusterSnapshot`;
* ``predict_many(X)`` is element-wise identical to ``[predict_one(x) for x
  in X]``, both on the snapshot and on the model;
* snapshots are immutable: one taken before further ingestion is
  bit-identical after it, and its arrays reject writes;
* snapshot versions strictly increase across publications;
* stable cluster ids carry across snapshots that share surviving clusters;
* ``learn_many`` accepts StreamPoints and raw values on every clusterer.
"""

import numpy as np
import pytest

from repro.api import (
    ClusterSnapshot,
    GridSpec,
    ServingView,
    SnapshotPublisher,
    StreamClusterer,
)
from repro.baselines import (
    DBSCAN,
    Birch,
    CluStream,
    DBStream,
    DenStream,
    DStream,
    KMeans,
    MRStream,
    PeriodicDPStream,
    SOStream,
)
from repro.core import EDMStream
from repro.streams import SDSGenerator
from repro.streams.point import StreamPoint


def two_blob_points(n=400, seed=3):
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=(0.0, 0.0), scale=0.4, size=(n // 2, 2))
    b = rng.normal(loc=(6.0, 6.0), scale=0.4, size=(n // 2, 2))
    values = np.concatenate([a, b])
    order = rng.permutation(n)
    return [
        StreamPoint.from_sequence(values[i], timestamp=0.01 * rank, label=int(i >= n // 2))
        for rank, i in enumerate(order)
    ]


def all_clusterers():
    """One instance of every clusterer in the repository."""
    return [
        EDMStream(radius=0.8, beta=0.0021, stream_rate=100.0),
        DBSCAN(eps=0.8, min_pts=3.0),
        KMeans(n_clusters=2),
        DenStream(eps=0.8, mu=3.0, beta=0.5),
        DStream(grid_size=1.0),
        DBStream(radius=0.8),
        MRStream(bounds=(-3.0, 9.0), max_height=4),
        CluStream(n_micro_clusters=30, n_macro_clusters=2),
        PeriodicDPStream(radius=0.8, tau=3.0, stream_rate=100.0),
        Birch(threshold=0.8, n_macro_clusters=2),
        SOStream(merge_threshold=0.4),
    ]


class TestProtocolConformance:
    def test_every_clusterer_implements_the_protocol(self):
        algorithms = all_clusterers()
        assert len(algorithms) == 11
        for algorithm in algorithms:
            assert isinstance(algorithm, StreamClusterer), algorithm

    @pytest.mark.parametrize("algorithm", all_clusterers(), ids=lambda a: a.name)
    def test_request_clustering_returns_a_snapshot(self, algorithm):
        algorithm.learn_many(two_blob_points())
        snapshot = algorithm.request_clustering()
        assert isinstance(snapshot, ClusterSnapshot)
        assert snapshot.algorithm == algorithm.name
        assert snapshot.version >= 1
        assert snapshot.n_clusters >= 0

    @pytest.mark.parametrize("algorithm", all_clusterers(), ids=lambda a: a.name)
    def test_learn_many_accepts_raw_values(self, algorithm):
        raw = [p.values for p in two_blob_points(n=60)]
        results = algorithm.learn_many(raw)
        assert len(results) == len(raw)

    @pytest.mark.parametrize("algorithm", all_clusterers(), ids=lambda a: a.name)
    def test_model_predict_many_equals_predict_one_loop(self, algorithm):
        points = two_blob_points()
        algorithm.learn_many(points)
        algorithm.request_clustering()
        queries = [p.values for p in points[:80]]
        batched = algorithm.predict_many(queries)
        looped = [int(algorithm.predict_one(q)) for q in queries]
        assert [int(v) for v in batched] == looped

    @pytest.mark.parametrize("algorithm", all_clusterers(), ids=lambda a: a.name)
    def test_snapshot_predict_many_equals_snapshot_predict_one(self, algorithm):
        points = two_blob_points()
        algorithm.learn_many(points)
        snapshot = algorithm.request_clustering()
        queries = [p.values for p in points[:80]]
        batched = snapshot.predict_many(queries)
        looped = [snapshot.predict_one(q) for q in queries]
        assert [int(v) for v in batched] == looped

    @pytest.mark.parametrize("algorithm", all_clusterers(), ids=lambda a: a.name)
    def test_snapshot_is_stale_but_consistent(self, algorithm):
        """snapshot() serves the last published view without recomputing."""
        algorithm.learn_many(two_blob_points())
        published = algorithm.request_clustering()
        algorithm.learn_many(two_blob_points(n=40, seed=9))
        assert algorithm.snapshot().version >= published.version


class TestEDMStreamSnapshots:
    @pytest.fixture()
    def stream(self):
        return SDSGenerator(n_points=4000, rate=1000.0, seed=7).generate()

    @pytest.fixture()
    def model(self, stream):
        model = EDMStream(radius=0.3, beta=0.0021, stream_rate=stream.rate)
        model.learn_many(stream)
        return model

    def test_snapshot_versions_strictly_increase(self, model):
        first = model.request_clustering()
        model.learn_many([(0.5, 0.5), (0.6, 0.4)])
        second = model.request_clustering()
        model.learn_one((0.7, 0.7))
        third = model.request_clustering()
        assert first.version < second.version < third.version

    def test_unchanged_state_does_not_republish(self, model):
        first = model.request_clustering()
        second = model.request_clustering()
        assert second is first

    def test_snapshot_immutable_under_continued_ingestion(self, model, stream):
        snapshot = model.request_clustering()
        seeds = snapshot.seeds.copy()
        labels = snapshot.labels.copy()
        cell_ids = snapshot.cell_ids.copy()
        densities = snapshot.densities.copy()
        stable_ids = dict(snapshot.stable_ids)
        probe = [(8.0, 9.5), (1.0, 1.0), (4.0, 4.0)]
        answers = snapshot.predict_many(probe).tolist()

        model.learn_many(SDSGenerator(n_points=4000, rate=1000.0, seed=11).generate())
        model.request_clustering()

        assert np.array_equal(snapshot.seeds, seeds)
        assert np.array_equal(snapshot.labels, labels)
        assert np.array_equal(snapshot.cell_ids, cell_ids)
        assert np.array_equal(snapshot.densities, densities)
        assert dict(snapshot.stable_ids) == stable_ids
        assert snapshot.predict_many(probe).tolist() == answers

    def test_snapshot_arrays_reject_writes(self, model):
        snapshot = model.request_clustering()
        with pytest.raises(ValueError):
            snapshot.seeds[0, 0] = 99.0
        with pytest.raises(ValueError):
            snapshot.labels[0] = 99
        with pytest.raises(TypeError):
            snapshot.stable_ids[123] = 0  # mappingproxy

    def test_stable_ids_carry_across_surviving_clusters(self, model):
        first = model.request_clustering()
        assert first.n_clusters >= 2
        # Keep ingesting the same regions: the clusters survive, so each new
        # native root must map onto the stable id its predecessor had.
        model.learn_many(SDSGenerator(n_points=1000, rate=1000.0, seed=13).generate())
        second = model.request_clustering()
        assert second.version > first.version
        first_stable = {first.stable_ids[label] for label in first.cluster_labels()}
        second_stable = {second.stable_ids[label] for label in second.cluster_labels()}
        assert first_stable & second_stable, "no stable id survived between snapshots"

    def test_predict_many_matches_predict_one_on_sds(self, model, stream):
        queries = [p.values for p in stream.points[:500]]
        batched = model.predict_many(queries)
        looped = np.asarray([model.predict_one(q) for q in queries])
        assert np.array_equal(batched, looped)
        # The snapshot query agrees with the model query.
        snapshot = model.request_clustering()
        assert np.array_equal(snapshot.predict_many(queries), batched)

    def test_snapshot_agrees_with_live_queries(self, model):
        snapshot = model.request_clustering()
        assert snapshot.tau == pytest.approx(model.tau)
        assert snapshot.n_clusters == model.n_clusters
        assert snapshot.clusters() == model.clusters()
        assert snapshot.n_points == model.n_points

    def test_learn_many_raw_values_equivalent_to_stream_points(self):
        raw_model = EDMStream(radius=0.3, beta=0.0021, stream_rate=1000.0)
        point_model = EDMStream(radius=0.3, beta=0.0021, stream_rate=1000.0)
        points = two_blob_points(n=300)
        raw_model.learn_many([p.values for p in points], batch_size=64)
        point_model.learn_many(
            [StreamPoint(values=p.values, timestamp=None) for p in points],
            batch_size=64,
        )
        assert raw_model.clusters() == point_model.clusters()

    def test_jaccard_snapshot_serves_token_queries(self):
        from repro.distance import TokenSetPoint

        model = EDMStream(radius=0.6, metric="jaccard", stream_rate=100.0)
        docs = [
            frozenset({"goal", "match", "football"}),
            frozenset({"goal", "match", "league"}),
            frozenset({"phone", "android", "release"}),
            frozenset({"phone", "android", "update"}),
        ] * 40
        model.learn_many([TokenSetPoint(tokens) for tokens in docs])
        snapshot = model.request_clustering()
        queries = [
            TokenSetPoint(frozenset({"goal", "match"})),
            TokenSetPoint(frozenset({"phone", "android"})),
        ]
        batched = snapshot.predict_many(queries)
        looped = [model.predict_one(q) for q in queries]
        assert batched.tolist() == looped


class TestStableIdMatching:
    def _view(self, labels_by_cell):
        cell_ids = sorted(labels_by_cell)
        return ServingView(
            seeds=np.zeros((len(cell_ids), 2)),
            cell_ids=cell_ids,
            labels=[labels_by_cell[cid] for cid in cell_ids],
        )

    def test_surviving_cluster_keeps_its_stable_id(self):
        publisher = SnapshotPublisher()
        first = publisher.publish(self._view({1: 10, 2: 10, 3: 20, 4: 20}))
        # Cluster 10 renamed to 77 but keeps members 1, 2: same stable id.
        second = publisher.publish(self._view({1: 77, 2: 77, 3: 20, 4: 20}))
        assert second.stable_ids[77] == first.stable_ids[10]
        assert second.stable_ids[20] == first.stable_ids[20]
        assert second.version == first.version + 1

    def test_new_cluster_gets_a_fresh_stable_id(self):
        publisher = SnapshotPublisher()
        first = publisher.publish(self._view({1: 10, 2: 10}))
        second = publisher.publish(self._view({1: 10, 2: 10, 8: 30, 9: 30}))
        assert second.stable_ids[10] == first.stable_ids[10]
        assert second.stable_ids[30] not in set(first.stable_ids.values())

    def test_disjoint_partition_reuses_nothing(self):
        publisher = SnapshotPublisher()
        first = publisher.publish(self._view({1: 10, 2: 10}))
        second = publisher.publish(self._view({8: 10, 9: 10}))
        # Same native label but zero member overlap: a different cluster.
        assert second.stable_ids[10] != first.stable_ids[10]


class TestGridSnapshots:
    def test_grid_spec_lookup_matches_dstream_predictions(self):
        model = DStream(grid_size=1.0)
        points = two_blob_points()
        model.learn_many(points)
        snapshot = model.request_clustering()
        assert snapshot.grid is not None
        queries = [p.values for p in points[:50]]
        assert [int(v) for v in snapshot.predict_many(queries)] == [
            model.predict_one(q) for q in queries
        ]

    def test_grid_spec_clamps_to_bounds(self):
        spec = GridSpec(width=0.25, origin=0.0, divisions=4, labels={(3,): 1})
        assert spec.keys_of(np.asarray([[99.0]])) == [(3,)]
        assert spec.keys_of(np.asarray([[-99.0]])) == [(0,)]


class TestSnapshotQueryPerformance:
    def test_predict_many_is_faster_than_the_loop(self):
        """Vectorised serving must clearly beat the per-point query loop.

        Typically 10-20x on an idle machine; the tier-1 bar is a
        contention-tolerant 3x (override via ``REPRO_TEST_QUERY_MIN_SPEEDUP``;
        CI relaxes to 2x).  The full >= 5x acceptance bar of ISSUE 2 is
        asserted and recorded by the env-tunable ``bench_query_throughput``
        benchmark, whose measurements are not interleaved with a full test
        run.
        """
        import os
        import time

        min_speedup = float(os.environ.get("REPRO_TEST_QUERY_MIN_SPEEDUP", "3.0"))

        stream = SDSGenerator(n_points=6000, rate=1000.0, seed=7).generate()
        model = EDMStream(radius=0.3, beta=0.0021, stream_rate=stream.rate)
        model.learn_many(stream)
        snapshot = model.request_clustering()
        queries = [p.values for p in stream.points] + [
            p.values for p in stream.points[:4000]
        ]
        assert len(queries) == 10000

        started = time.perf_counter()
        looped = [model.predict_one(q) for q in queries]
        loop_seconds = time.perf_counter() - started

        # The batch path finishes in milliseconds, so a single scheduling
        # hiccup can dominate one measurement; take the best of three.
        batch_seconds = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            batched = snapshot.predict_many(queries)
            batch_seconds = min(batch_seconds, time.perf_counter() - started)

        assert [int(v) for v in batched] == [int(v) for v in looped]
        assert batch_seconds * min_speedup <= loop_seconds, (
            f"snapshot predict_many ({batch_seconds:.4f}s) should be >= "
            f"{min_speedup}x faster than the predict_one loop "
            f"({loop_seconds:.4f}s) on 10k queries"
        )
