"""Tests for the experiment-driver extensions (real-time throughput, radius
summary columns, and the new CLI ablation entries)."""


from repro.harness import experiments
from repro.harness.cli import EXPERIMENTS, run_experiment


class TestThroughputDriver:
    def test_summary_reports_realtime_and_amortised_throughput(self):
        result = experiments.experiment_throughput(
            datasets=("KDDCUP99",),
            algorithms=("EDMStream", "D-Stream"),
            n_points=1500,
            checkpoint_every=500,
        )
        rows = result.tables["summary"]
        assert {row["algorithm"] for row in rows} == {"EDMStream", "D-Stream"}
        for row in rows:
            assert row["mean_throughput"] > 0
            assert row["mean_amortised_throughput"] > 0

    def test_realtime_and_amortised_series_registered(self):
        result = experiments.experiment_throughput(
            datasets=("KDDCUP99",),
            algorithms=("EDMStream",),
            n_points=1200,
            checkpoint_every=400,
        )
        assert "KDDCUP99/EDMStream" in result.series
        assert "KDDCUP99/EDMStream/amortised" in result.series
        realtime = result.series["KDDCUP99/EDMStream"]
        assert all(y > 0 for y in realtime.y)

    def test_speedups_metadata_present(self):
        result = experiments.experiment_throughput(
            datasets=("KDDCUP99",),
            algorithms=("EDMStream", "D-Stream"),
            n_points=1200,
            checkpoint_every=400,
        )
        speedups = result.metadata["speedups"]
        assert len(speedups) == 1
        assert speedups[0]["dataset"] == "KDDCUP99"


class TestRadiusDriver:
    def test_summary_reports_total_cells(self):
        result = experiments.experiment_radius(
            percentiles=(0.5, 2.0),
            dataset="PAMAP2",
            n_points=1500,
            checkpoint_every=500,
            quality_window=200,
        )
        rows = result.tables["summary"]
        assert len(rows) == 2
        for row in rows:
            assert row["total_cells"] >= row["active_cells"]
            assert row["total_cells"] > 0


class TestCLIRegistry:
    def test_new_ablation_entries_registered(self):
        expected = {
            "ablation_decay",
            "ablation_beta",
            "ablation_index",
            "ablation_tracking",
            "ablation_cftree",
        }
        assert expected <= set(EXPERIMENTS)

    def test_run_experiment_resolves_new_ids(self):
        result = run_experiment("ablation_index", points=200)
        assert result.experiment_id == "ablation_index"
        assert "summary" in result.tables


class TestMemoryDriver:
    def test_memory_experiment_reports_cap_and_quality(self):
        result = experiments.experiment_memory(
            datasets=("SDS",), n_points=6000, eval_every=2000, quality_window=300
        )
        rows = result.tables["summary"]
        assert [row["mode"] for row in rows] == ["exact", "capped"]
        exact, capped = rows
        assert capped["memory_cap_bytes"] >= 32_768
        assert capped["evictions"] > 0
        assert 0.0 <= capped["cmm_drop"] <= 1.0
        assert 0.0 <= capped["purity_drop"] <= 1.0
        assert "SDS/exact" in result.series and "SDS/capped" in result.series
        assert result.metadata["cap_fraction"] == 0.5

    def test_batch_throughput_rows_report_memory_columns(self):
        result = experiments.experiment_batch_throughput(
            n_points=2000, datasets=("SDS",), batch_sizes=(256,)
        )
        for row in result.tables["summary"]:
            assert row["cell_state_bytes"] > 0
            assert row["arena_bytes"] > 0
