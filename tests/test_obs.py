"""Observability-tier tests (ISSUE 10): metrics, phases, events, stats.

The contracts under test:

* **registry round-trip** — counters/gauges/histograms registered by name
  read back exactly what was recorded, survive array growth, and reject
  kind conflicts;
* **null path is free** — with ``telemetry=None`` the model clusters
  bit-identically to a never-instrumented build, and the null registry's
  ``inc`` allocates nothing (measured with ``sys.getallocatedblocks``);
* **instrumented path is observational only** — telemetry on and off
  produce the identical clustering, while the on-path records per-phase
  wall clock, lifetime counters, and MONIC evolution events;
* **stats block** — the serving tier's shared-memory stats segment
  round-trips publisher/worker counters, and ``python -m repro stats``
  renders rates/quantiles from two reads without touching the writers.
"""

import gc
import json
import sys

import pytest

from repro.core import EDMStream
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_S,
    NULL_REGISTRY,
    NULL_TELEMETRY,
    EventRing,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    quantile_from_buckets,
)
from repro.obs.export import stats_main, stats_report, to_prometheus, write_telemetry_json
from repro.streams import SDSGenerator


def make_stream(n_points=4000, seed=7):
    return SDSGenerator(n_points=n_points, rate=1000.0, seed=seed).generate()


def make_model(telemetry=None, **kwargs):
    return EDMStream(
        radius=0.3, beta=0.0021, stream_rate=1000.0, telemetry=telemetry, **kwargs
    )


def canonical_partition(model):
    seed_of = {cid: tuple(model.tree.get(cid).seed) for cid in model.tree.cell_ids()}
    return {
        seed_of[root]: frozenset(seed_of[member] for member in members)
        for root, members in model.partition_snapshot().items()
    }


class TestRegistry:
    def test_counter_gauge_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("points").inc()
        registry.counter("points").inc(41.0)
        registry.gauge("depth").set(7.0)
        registry.gauge("depth").inc(-2.0)
        assert registry.counter("points").value == 42.0
        assert registry.gauge("depth").value == 5.0
        snapshot = registry.snapshot()
        assert snapshot["points"] == {"kind": "counter", "value": 42.0}
        assert snapshot["depth"] == {"kind": "gauge", "value": 5.0}

    def test_histogram_buckets_and_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.002, 0.002, 0.05, 5.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(5.0545)
        assert hist.bucket_counts() == [1.0, 2.0, 1.0, 1.0]  # last = overflow
        # The median lands in the (0.001, 0.01] bucket.
        assert 0.001 <= hist.quantile(0.5) <= 0.01
        # Overflow observations clamp to the last finite bound.
        assert hist.quantile(1.0) == pytest.approx(0.1)

    def test_quantile_from_buckets_empty(self):
        assert quantile_from_buckets((0.1, 1.0), [0.0, 0.0, 0.0], 0.5) == 0.0

    def test_same_name_same_instrument_and_kind_conflicts(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        assert registry.counter("a") is counter
        with pytest.raises(ValueError):
            registry.gauge("a")
        with pytest.raises(ValueError):
            registry.histogram("a")

    def test_growth_keeps_old_instruments_live(self):
        registry = MetricsRegistry(capacity=2)
        first = registry.counter("c0")
        first.inc(3.0)
        for i in range(50):  # force several array regrowths
            registry.counter(f"extra{i}").inc()
        first.inc()
        assert registry.counter("c0").value == 4.0
        assert registry.counter("extra49").value == 1.0

    def test_default_latency_buckets_cover_serving_range(self):
        assert DEFAULT_LATENCY_BUCKETS_S[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BUCKETS_S[-1] > 0.1
        assert list(DEFAULT_LATENCY_BUCKETS_S) == sorted(DEFAULT_LATENCY_BUCKETS_S)


class TestEventRing:
    def test_bounded_ring_drops_oldest(self):
        ring = EventRing(capacity=4)
        for i in range(10):
            ring.push("cluster_split", time=float(i), index=i)
        assert len(ring) == 4
        assert ring.total == 10
        assert ring.dropped == 6
        snapshot = ring.snapshot()
        assert [event["index"] for event in snapshot] == [6, 7, 8, 9]
        assert snapshot[0]["kind"] == "cluster_split"

    def test_counts_survive_eviction(self):
        ring = EventRing(capacity=2)
        for _ in range(5):
            ring.push("cell_evicted")
        ring.push("worker_restart")
        assert ring.counts() == {"cell_evicted": 5, "worker_restart": 1}


class TestTelemetry:
    def test_phase_accumulation_and_totals(self):
        telemetry = Telemetry()
        for _ in range(3):
            with telemetry.phase("assign"):
                pass
        totals = telemetry.phase_totals()
        assert totals["assign"]["count"] == 3
        assert totals["assign"]["seconds"] >= 0.0
        assert totals["maintenance"]["count"] == 0

    def test_unknown_phase_registered_on_demand(self):
        telemetry = Telemetry()
        with telemetry.phase("custom_stage"):
            pass
        assert telemetry.phase_totals()["custom_stage"]["count"] == 1

    def test_phase_decorator_form(self):
        telemetry = Telemetry()

        @telemetry.phase("assign")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert telemetry.phase_totals()["assign"]["count"] == 1

    def test_snapshot_bundles_metrics_phases_events(self):
        telemetry = Telemetry()
        telemetry.counter("n").inc()
        with telemetry.phase("absorb"):
            pass
        telemetry.record_event("cluster_merge", time=1.0, old_clusters=2)
        snapshot = telemetry.snapshot()
        assert snapshot["metrics"]["n"]["value"] == 1.0
        assert snapshot["phases"]["absorb"]["count"] == 1
        assert snapshot["event_counts"] == {"cluster_merge": 1}
        assert snapshot["events"][0]["old_clusters"] == 2

    def test_null_telemetry_is_disabled_and_inert(self):
        assert NULL_TELEMETRY.enabled is False
        with NULL_TELEMETRY.phase("assign"):
            pass
        NULL_TELEMETRY.counter("x").inc()
        NULL_TELEMETRY.record_event("cluster_split")
        assert NULL_TELEMETRY.snapshot()["metrics"] == {}
        assert NULL_TELEMETRY.phase_totals() == {}
        # The null phase context is shared, not allocated per call.
        assert NULL_TELEMETRY.phase("a") is NULL_TELEMETRY.phase("b")
        assert isinstance(NullTelemetry(), NullTelemetry)

    def test_null_increment_is_allocation_free(self):
        counter = NULL_REGISTRY.counter("anything")
        counter.inc()  # warm any lazy state
        deltas = []
        gc.disable()
        try:
            for _ in range(3):
                before = sys.getallocatedblocks()
                for _ in range(1000):
                    counter.inc()
                deltas.append(sys.getallocatedblocks() - before)
        finally:
            gc.enable()
        # The loop itself may jitter a few blocks; 1000 incs must not
        # allocate per call.
        assert min(deltas) <= 5


class TestModelIntegration:
    def test_telemetry_off_is_bit_identical(self):
        off = make_model(telemetry=None)
        off.learn_many(make_stream(), batch_size=256)
        on = make_model(telemetry=Telemetry())
        on.learn_many(make_stream(), batch_size=256)
        assert canonical_partition(on) == canonical_partition(off)
        assert on.n_clusters == off.n_clusters
        assert on._tau == off._tau
        off_summary, on_summary = off.summary(), on.summary()
        on_summary.pop("telemetry")
        assert "telemetry" not in off_summary
        # Wall-clock timings legitimately differ between runs.
        for summary in (off_summary, on_summary):
            summary.pop("dependency_update_seconds")
        assert on_summary == off_summary

    def test_enabled_path_records_phases_counters_events(self):
        telemetry = Telemetry()
        model = make_model(telemetry=telemetry)
        stream = make_stream()
        model.learn_many(stream, batch_size=256)
        model.request_clustering()
        totals = telemetry.phase_totals()
        assert totals["assign"]["count"] > 0
        assert totals["maintenance"]["count"] > 0
        assert totals["snapshot_publish"]["count"] >= 1
        assert telemetry.registry.counter("ingest_points_total").value == len(stream)
        assert telemetry.registry.counter("ingest_batches_total").value > 0
        counts = telemetry.events.counts()
        assert counts.get("cluster_emerge", 0) >= 1
        assert counts.get("snapshot_publish", 0) >= 1

    def test_telemetry_true_builds_fresh_instance(self):
        model = make_model(telemetry=True)
        assert model.obs.enabled
        assert model.obs is not NULL_TELEMETRY

    def test_config_rejects_junk_telemetry(self):
        with pytest.raises(ValueError):
            make_model(telemetry=object())

    def test_sketch_tier_counters_and_events_flow_through(self):
        telemetry = Telemetry()
        model = make_model(telemetry=telemetry, memory_cap_bytes=40_000)
        model.learn_many(make_stream(6000), batch_size=256)
        memory = model.summary()["memory"]
        # Satellite: the bounded tier's counters are part of the public
        # summary and snapshot surfaces.
        assert memory["evictions"] > 0
        assert memory["revivals"] > 0
        assert memory["cap_overflows"] >= 0
        snap_memory = model.snapshot().metadata["memory"]
        for key in ("evictions", "revivals", "cap_overflows", "memory_cap_bytes"):
            assert key in snap_memory
        assert telemetry.registry.counter("cells_evicted_total").value > 0
        assert telemetry.registry.counter("cells_revived_total").value > 0
        counts = telemetry.events.counts()
        assert counts.get("cell_evicted", 0) > 0
        assert counts.get("cell_revived", 0) > 0
        totals = telemetry.phase_totals()
        assert totals["sketch_evict"]["count"] > 0


class TestExport:
    def test_prometheus_rendering(self):
        telemetry = Telemetry()
        telemetry.counter("ingest_points_total").inc(5)
        telemetry.gauge("depth").set(3.0)
        telemetry.histogram("lat", (0.001, 0.01)).observe(0.002)
        with telemetry.phase("assign"):
            pass
        telemetry.record_event("cluster_split", time=1.0)
        text = to_prometheus(telemetry)
        assert "repro_ingest_points_total 5" in text
        assert "repro_ingest_points_total_total" not in text
        assert 'repro_depth 3' in text
        assert 'repro_lat_bucket{le="0.01"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert 'repro_phase_calls_total{phase="assign"} 1' in text
        assert 'repro_events_total{kind="cluster_split"} 1' in text

    def test_json_round_trip_and_file_dump(self, tmp_path):
        telemetry = Telemetry()
        telemetry.counter("n").inc()
        path = tmp_path / "telemetry.json"
        write_telemetry_json(path, telemetry, extra={"run": "t"})
        payload = json.loads(path.read_text())
        assert payload["telemetry"]["metrics"]["n"]["value"] == 1.0
        assert payload["run"] == "t"


class TestStatsBlock:
    @pytest.fixture
    def token(self):
        import uuid

        from repro.serving import cleanup_segments

        token = f"obstest{uuid.uuid4().hex[:8]}"
        yield token
        cleanup_segments(token)

    def test_round_trip_and_report(self, token):
        from repro.serving import StatsBlock

        block, created = StatsBlock.create_or_attach(token)
        assert created
        try:
            block.publisher_update(
                1000, 4, 123.0, {"assign": {"seconds": 0.5, "count": 10}}
            )
            slot = block.claim_worker_slot(4242, preferred=0)
            assert slot == 0
            for _ in range(20):
                block.record_worker_batch(slot, 64, 0.002, 0.01, 3)
            first = block.read()
            assert first["publisher"]["points_ingested"] == 1000.0
            assert first["publisher"]["publishes"] == 4.0
            assert first["publisher"]["phases"]["assign"]["count"] == 10
            worker = first["workers"][0]
            assert worker["pid"] == 4242.0
            assert worker["queries"] == 20 * 64
            assert worker["snapshot_version"] == 3.0

            block.publisher_update(
                3000, 6, 125.0, {"assign": {"seconds": 0.6, "count": 12}}
            )
            block.record_worker_batch(slot, 64, 0.002, 0.01, 3)
            second = block.read()
            second["sampled_at"] = first.get("sampled_at", 0.0) + 2.0
            report = stats_report(first, second, 2.0)
            assert report["publisher"]["points_per_s"] == pytest.approx(1000.0)
            slot_report = report["workers"][0]
            assert slot_report["qps"] == pytest.approx(32.0)
            # All observations landed in the 0.002s bucket region.
            assert 0.001 < slot_report["p50_s"] < 0.005
            assert slot_report["snapshot_version"] == 3.0
        finally:
            block.close()

    def test_slot_claim_release_and_reuse(self, token):
        from repro.serving import StatsBlock

        block, _ = StatsBlock.create_or_attach(token)
        try:
            a = block.claim_worker_slot(100)
            b = block.claim_worker_slot(200)
            assert a != b
            block.release_worker_slot(a)
            c = block.claim_worker_slot(300, preferred=a)
            assert c == a
        finally:
            block.close()

    def test_attach_requires_existing_segment(self, token):
        from repro.serving import StatsBlock

        with pytest.raises(FileNotFoundError):
            StatsBlock.attach(token)

    def test_stats_main_renders_live_rates(self, token):
        from repro.serving import StatsBlock

        block, _ = StatsBlock.create_or_attach(token)
        try:
            block.publisher_update(500, 2, 10.0, {"assign": {"seconds": 0.1, "count": 2}})
            slot = block.claim_worker_slot(777, preferred=0)
            block.record_worker_batch(slot, 10, 0.001, 0.05, 1)

            lines = []

            def fake_sleep(_):
                block.publisher_update(
                    700, 3, 11.0, {"assign": {"seconds": 0.2, "count": 3}}
                )
                block.record_worker_batch(slot, 30, 0.001, 0.05, 2)

            code = stats_main(token, interval_s=0.5, _print=lines.append, sleep=fake_sleep)
            assert code == 0
            output = "\n".join(lines)
            assert "serving stats" in output
            assert "publisher:" in output
            assert "assign" in output
            assert "777" in output
        finally:
            block.close()

    def test_stats_main_without_segment_fails_cleanly(self):
        lines = []
        code = stats_main("nosuchtoken123", _print=lines.append, sleep=lambda _: None)
        assert code == 1
        assert "no stats segment" in lines[0]
