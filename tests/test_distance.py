"""Tests for the distance metrics and the text/Jaccard support."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.distance import (
    chebyshev,
    cosine,
    euclidean,
    get_metric,
    jaccard_distance,
    jaccard_similarity,
    manhattan,
    minkowski,
    squared_euclidean,
    tokenize,
    TokenSetPoint,
)
from repro.distance.metrics import euclidean_to_many

import numpy as np

vectors = st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=8)
paired_vectors = st.integers(min_value=1, max_value=8).flatmap(
    lambda d: st.tuples(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=d, max_size=d),
        st.lists(st.floats(min_value=-100, max_value=100), min_size=d, max_size=d),
    )
)


class TestNumericMetrics:
    def test_euclidean_known_value(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_squared_euclidean_known_value(self):
        assert squared_euclidean((0, 0), (3, 4)) == pytest.approx(25.0)

    def test_manhattan_known_value(self):
        assert manhattan((1, 2), (4, 6)) == pytest.approx(7.0)

    def test_chebyshev_known_value(self):
        assert chebyshev((1, 2), (4, 6)) == pytest.approx(4.0)

    def test_minkowski_p2_equals_euclidean(self):
        assert minkowski((1, 2, 3), (4, 5, 6), p=2) == pytest.approx(
            euclidean((1, 2, 3), (4, 5, 6))
        )

    def test_minkowski_rejects_nonpositive_order(self):
        with pytest.raises(ValueError):
            minkowski((1,), (2,), p=0)

    def test_cosine_orthogonal_vectors(self):
        assert cosine((1, 0), (0, 1)) == pytest.approx(1.0)

    def test_cosine_parallel_vectors(self):
        assert cosine((1, 2), (2, 4)) == pytest.approx(0.0, abs=1e-12)

    def test_cosine_zero_vectors(self):
        assert cosine((0, 0), (0, 0)) == 0.0
        assert cosine((0, 0), (1, 1)) == 1.0

    @given(paired_vectors)
    def test_euclidean_symmetry(self, pair):
        a, b = pair
        assert euclidean(a, b) == pytest.approx(euclidean(b, a))

    @given(vectors)
    def test_euclidean_identity(self, a):
        assert euclidean(a, a) == pytest.approx(0.0)

    @given(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda d: st.tuples(
                *[
                    st.lists(st.floats(min_value=-50, max_value=50), min_size=d, max_size=d)
                    for _ in range(3)
                ]
            )
        )
    )
    def test_euclidean_triangle_inequality(self, triple):
        a, b, c = triple
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9

    def test_euclidean_to_many_matches_pairwise(self):
        matrix = np.asarray([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
        distances = euclidean_to_many((0.0, 0.0), matrix)
        assert distances == pytest.approx([0.0, 5.0, math.sqrt(2)])


class TestMetricFactory:
    @pytest.mark.parametrize(
        "name, func",
        [("euclidean", euclidean), ("l2", euclidean), ("manhattan", manhattan), ("cosine", cosine)],
    )
    def test_lookup_by_name(self, name, func):
        assert get_metric(name) is func

    def test_lookup_jaccard(self):
        metric = get_metric("jaccard")
        assert metric({"a"}, {"a"}) == 0.0

    def test_lookup_is_case_insensitive(self):
        assert get_metric("Euclidean") is euclidean

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            get_metric("mahalanobis")


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity({"a", "b"}, {"a", "b"}) == 1.0
        assert jaccard_distance({"a", "b"}, {"a", "b"}) == 0.0

    def test_disjoint_sets(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0
        assert jaccard_distance({"a"}, {"b"}) == 1.0

    def test_partial_overlap(self):
        assert jaccard_similarity({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(0.5)

    def test_empty_sets_are_identical(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_accepts_token_set_points(self):
        a = TokenSetPoint(tokens=frozenset({"x", "y"}))
        b = TokenSetPoint(tokens=frozenset({"y", "z"}))
        assert jaccard_distance(a, b) == pytest.approx(2.0 / 3.0)

    @given(
        st.sets(st.sampled_from("abcdefgh")), st.sets(st.sampled_from("abcdefgh"))
    )
    def test_distance_in_unit_interval_and_symmetric(self, a, b):
        d = jaccard_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(jaccard_distance(b, a))


class TestTokenization:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Google Launches SDK") == frozenset({"google", "launches", "sdk"})

    def test_tokenize_removes_stop_words(self):
        tokens = tokenize("the quick fox and the dog")
        assert "the" not in tokens
        assert "and" not in tokens
        assert "fox" in tokens

    def test_tokenize_keeps_stop_words_when_asked(self):
        tokens = tokenize("the fox", remove_stop_words=False)
        assert "the" in tokens

    def test_token_set_point_from_text(self):
        point = TokenSetPoint.from_text("Apple Samsung patent battle")
        assert "apple" in point.tokens
        assert point.text == "Apple Samsung patent battle"
        assert len(point) == len(point.tokens)
        assert list(point) == sorted(point.tokens)
