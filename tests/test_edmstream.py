"""Behavioural tests for the EDMStream algorithm (Section 4)."""


import numpy as np
import pytest

from repro import EDMStream, EDMStreamConfig
from repro.distance import TokenSetPoint
from repro.streams import SDSGenerator


def feed(model, stream, limit=None):
    for i, point in enumerate(stream):
        if limit is not None and i >= limit:
            break
        model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
    return model


class TestConstruction:
    def test_keyword_overrides_build_a_config(self):
        model = EDMStream(radius=0.7, beta=0.001)
        assert model.config.radius == 0.7
        assert model.config.beta == 0.001

    def test_config_plus_overrides(self):
        config = EDMStreamConfig(radius=0.5)
        model = EDMStream(config, beta=0.01)
        assert model.config.radius == 0.5
        assert model.config.beta == 0.01

    def test_initial_state_is_empty(self):
        model = EDMStream()
        assert model.n_points == 0
        assert model.n_active_cells == 0
        assert model.n_clusters == 0
        assert not model.initialized


class TestIngestion:
    def test_learn_one_returns_a_cell_id(self):
        model = EDMStream(radius=0.5)
        cell_id = model.learn_one((0.0, 0.0), timestamp=0.0)
        assert isinstance(cell_id, int)
        assert model.n_points == 1

    def test_close_points_share_a_cell(self):
        model = EDMStream(radius=0.5)
        first = model.learn_one((0.0, 0.0), timestamp=0.0)
        second = model.learn_one((0.1, 0.1), timestamp=0.001)
        assert first == second

    def test_far_points_create_new_cells(self):
        model = EDMStream(radius=0.5)
        first = model.learn_one((0.0, 0.0), timestamp=0.0)
        second = model.learn_one((10.0, 10.0), timestamp=0.001)
        assert first != second

    def test_missing_timestamps_auto_increment(self):
        model = EDMStream(radius=0.5, stream_rate=100.0)
        model.learn_one((0.0, 0.0))
        model.learn_one((0.0, 0.1))
        assert model.now == pytest.approx(0.01)

    def test_learn_many_consumes_stream_points(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        assigned = model.learn_many(two_blob_stream)
        assert len(assigned) == len(two_blob_stream)
        assert model.n_points == len(two_blob_stream)

    def test_initialization_happens_at_init_size(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        feed(model, two_blob_stream, limit=49)
        assert not model.initialized
        feed(model, two_blob_stream[49:], limit=1)
        assert model.initialized
        assert model.tau is not None
        assert model.alpha is not None


class TestClustering:
    def test_two_blobs_give_two_clusters(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50, beta=0.001)
        feed(model, two_blob_stream)
        assert model.n_clusters == 2

    def test_three_blobs_give_three_clusters(self, three_blob_stream):
        model = EDMStream(radius=0.4, init_size=60, beta=0.001)
        feed(model, three_blob_stream)
        assert model.n_clusters == 3

    def test_clusters_partition_the_active_cells(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        feed(model, two_blob_stream)
        clusters = model.clusters()
        members = [cid for cluster in clusters.values() for cid in cluster]
        assert sorted(members) == sorted(model.tree.cell_ids())

    def test_predict_one_separates_the_blobs(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50, beta=0.001)
        feed(model, two_blob_stream)
        label_a = model.predict_one((0.0, 0.0))
        label_b = model.predict_one((6.0, 6.0))
        assert label_a != label_b
        assert label_a != model.config.outlier_label
        assert label_b != model.config.outlier_label

    def test_predict_far_point_is_outlier(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        feed(model, two_blob_stream)
        assert model.predict_one((100.0, 100.0)) == model.config.outlier_label

    def test_predict_on_empty_model_is_outlier(self):
        assert EDMStream().predict_one((0.0, 0.0)) == -1

    def test_cell_assignment_and_cluster_label_of_cell_agree(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        feed(model, two_blob_stream)
        assignment = model.request_clustering().cell_assignment()
        for cell_id, root in assignment.items():
            assert model.cluster_label_of_cell(cell_id) == root

    def test_cluster_label_of_inactive_cell_is_outlier(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        feed(model, two_blob_stream)
        for cell in model.reservoir.cells():
            assert model.cluster_label_of_cell(cell.cell_id) == model.config.outlier_label
            break

    def test_decision_graph_covers_active_cells(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        feed(model, two_blob_stream)
        graph = model.decision_graph()
        assert len(graph) == model.n_active_cells
        # Sorted by decreasing density.
        densities = [rho for rho, _, _ in graph]
        assert densities == sorted(densities, reverse=True)


class TestDecayAndReservoir:
    def test_stale_clusters_decay_into_the_reservoir(self):
        rng = np.random.default_rng(3)
        # Fast forgetting: a cluster that stops receiving points disappears.
        model = EDMStream(radius=0.5, beta=0.01, decay_a=0.5, decay_lambda=1.0,
                          stream_rate=100.0, init_size=20)
        # Phase 1: a dense blob at the origin.
        for i in range(300):
            model.learn_one(tuple(rng.normal((0, 0), 0.2)), timestamp=i / 100.0)
        assert model.n_active_cells > 0
        # Phase 2: the stream moves to a far location; the old blob decays.
        for i in range(300, 1500):
            model.learn_one(tuple(rng.normal((30, 30), 0.2)), timestamp=i / 100.0)
        for cell in model.tree.cells():
            seed = np.asarray(cell.seed)
            assert np.linalg.norm(seed - np.asarray((30.0, 30.0))) < 5.0, (
                "stale cells near the origin should have been deactivated"
            )

    def test_reservoir_history_recorded(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        feed(model, two_blob_stream)
        # At least one maintenance sweep ran (stream spans 0.2 s at 1000 pt/s
        # with maintenance_interval 1.0 it may not) — force one more second.
        model.learn_one((0.0, 0.0), timestamp=5.0)
        model.learn_one((0.0, 0.0), timestamp=6.5)
        assert model.reservoir_size_history

    def test_summary_contains_key_fields(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        feed(model, two_blob_stream)
        summary = model.summary()
        for key in ("points", "active_cells", "inactive_cells", "clusters", "tau", "filter_stats"):
            assert key in summary


class TestFilters:
    def test_filters_do_not_change_the_clustering(self, three_blob_stream):
        """Theorems 1 and 2 only skip provably-unnecessary updates."""
        results = {}
        for flag in (True, False):
            model = EDMStream(
                radius=0.4,
                init_size=60,
                beta=0.001,
                enable_density_filter=flag,
                enable_triangle_filter=flag,
            )
            feed(model, three_blob_stream)
            probes = [(0.0, 0.0), (5.0, 0.0), (2.5, 5.0)]
            labelling = [model.predict_one(p) for p in probes]
            # Compare the induced partition of probes, not raw cell ids.
            canonical = tuple(labelling.index(x) for x in labelling)
            results[flag] = (model.n_clusters, canonical)
        assert results[True] == results[False]

    def test_filters_reduce_distance_computations(self, three_blob_stream):
        with_filters = EDMStream(radius=0.4, init_size=60, beta=0.001)
        without_filters = EDMStream(
            radius=0.4, init_size=60, beta=0.001,
            enable_density_filter=False, enable_triangle_filter=False,
        )
        feed(with_filters, three_blob_stream)
        feed(without_filters, three_blob_stream)
        assert (
            with_filters.filter_stats.distance_computations
            < without_filters.filter_stats.distance_computations
        )

    def test_filter_statistics_are_populated(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        feed(model, two_blob_stream)
        stats = model.filter_stats
        assert stats.candidates > 0
        assert stats.density_filtered > 0


class TestTextStreams:
    def test_jaccard_metric_clusters_topics(self):
        model = EDMStream(radius=0.4, metric="jaccard", init_size=20, beta=0.01,
                          stream_rate=100.0)
        tech = [TokenSetPoint(frozenset({"google", "android", "wear", str(i % 3)})) for i in range(60)]
        sport = [TokenSetPoint(frozenset({"football", "goal", "match", str(i % 3)})) for i in range(60)]
        t = 0.0
        for a, b in zip(tech, sport):
            model.learn_one(a, timestamp=t)
            t += 0.01
            model.learn_one(b, timestamp=t)
            t += 0.01
        assert model.n_clusters == 2
        tech_label = model.predict_one(TokenSetPoint(frozenset({"google", "android", "wear"})))
        sport_label = model.predict_one(TokenSetPoint(frozenset({"football", "goal", "match"})))
        assert tech_label != sport_label


class TestEvolutionIntegration:
    def test_sds_stream_produces_all_four_evolution_types(self):
        stream = SDSGenerator(n_points=16000, rate=1000.0, seed=7).generate()
        model = EDMStream(
            radius=0.3, beta=0.0021, decay_a=0.998, decay_lambda=1000.0, stream_rate=1000.0
        )
        for point in stream:
            model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
        counts = model.evolution.counts()
        assert counts["merge"] >= 1
        assert counts["emerge"] >= 3  # two initial clusters + the 12 s emergence
