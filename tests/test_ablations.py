"""Smoke and shape tests for the ablation experiment drivers (small sizes)."""


from repro.harness import ablations


class TestDecayAblation:
    def test_summary_has_one_row_per_half_life(self):
        result = ablations.experiment_decay_ablation(
            n_points=1500, half_lives=(1.0, 1e9)
        )
        rows = result.tables["summary"]
        assert len(rows) == 2
        assert {row["variant"] for row in rows} == {"half-life 1s", "no decay"}
        assert all(0.0 <= row["mean_cmm"] <= 1.0 for row in rows)
        assert all(row["decay_lambda"] > 0 for row in rows)

    def test_series_registered_per_variant(self):
        result = ablations.experiment_decay_ablation(n_points=1200, half_lives=(2.0,))
        assert "half-life 2s" in result.series


class TestBetaAblation:
    def test_threshold_monotone_in_beta(self):
        result = ablations.experiment_beta_ablation(
            n_points=1500, betas=(0.001, 0.01, 0.05)
        )
        rows = result.tables["summary"]
        thresholds = [row["active_threshold"] for row in rows]
        assert thresholds == sorted(thresholds)
        assert rows[0]["active_cells"] >= rows[-1]["active_cells"]

    def test_cell_counts_reported(self):
        result = ablations.experiment_beta_ablation(n_points=1200, betas=(0.0021,))
        row = result.tables["summary"][0]
        assert row["active_cells"] + row["inactive_cells"] > 0


class TestIndexAblation:
    def test_indexes_agree_with_brute_force(self):
        result = ablations.experiment_index_ablation(
            seed_counts=(50, 200), n_queries=200, seed=1
        )
        rows = result.tables["summary"]
        assert len(rows) == 6  # 3 indexes x 2 seed counts
        assert all(row["agreement_with_brute_force"] > 0.99 for row in rows)
        assert all(row["query_time_us"] > 0 for row in rows)

    def test_series_per_index(self):
        result = ablations.experiment_index_ablation(seed_counts=(50,), n_queries=100)
        assert set(result.series) == {"BruteForce", "Grid", "KDTree"}


class TestTrackingComparison:
    def test_all_trackers_report_counts(self):
        result = ablations.experiment_tracking_comparison(
            n_points=4000, snapshot_every=1.0, window_size=300
        )
        counts = {row["tracker"]: row for row in result.tables["event_counts"]}
        assert set(counts) == {"EDMStream (online)", "MONIC (offline)", "MEC (offline)"}
        assert counts["EDMStream (online)"]["emerge"] >= 1
        agreement = result.tables["agreement_vs_online"]
        assert {row["tracker"] for row in agreement} == {"MONIC", "MEC"}
        assert all(0.0 <= row["recall"] <= 1.0 for row in agreement)
        assert all(0.0 <= row["precision"] <= 1.0 for row in agreement)

    def test_cost_table_present(self):
        result = ablations.experiment_tracking_comparison(
            n_points=3000, snapshot_every=1.0, window_size=200
        )
        cost = {row["component"]: row["seconds"] for row in result.tables["cost"]}
        assert len(cost) == 2
        assert all(value >= 0 for value in cost.values())


class TestCFTreeVsDPTree:
    def test_both_algorithms_reported(self):
        result = ablations.experiment_cftree_vs_dptree(n_points=2000)
        rows = {row["algorithm"]: row for row in result.tables["summary"]}
        assert set(rows) == {"EDMStream", "BIRCH"}
        assert rows["BIRCH"]["tree_height"] >= 1
        assert rows["BIRCH"]["summaries"] >= 1
        assert rows["EDMStream"]["summaries"] >= 1
        assert all(0.0 <= row["mean_cmm"] <= 1.0 for row in rows.values())

    def test_series_registered(self):
        result = ablations.experiment_cftree_vs_dptree(n_points=1500)
        assert "cmm/EDMStream" in result.series
        assert "response/BIRCH" in result.series
