"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.stream import DataStream, stream_from_arrays


@pytest.fixture
def two_blob_points():
    """Two well-separated 2-D Gaussian blobs (200 points, labels 0/1)."""
    rng = np.random.default_rng(42)
    blob_a = rng.normal((0.0, 0.0), 0.4, size=(100, 2))
    blob_b = rng.normal((6.0, 6.0), 0.4, size=(100, 2))
    values = np.vstack([blob_a, blob_b])
    labels = np.asarray([0] * 100 + [1] * 100)
    order = rng.permutation(200)
    return values[order], labels[order]


@pytest.fixture
def two_blob_stream(two_blob_points) -> DataStream:
    """The two blobs as a 1,000 pt/s stream."""
    values, labels = two_blob_points
    return stream_from_arrays(values, labels, rate=1000.0, name="two-blobs")


@pytest.fixture
def three_blob_stream() -> DataStream:
    """Three separated blobs of different sizes as a stream."""
    rng = np.random.default_rng(7)
    blobs = [
        rng.normal((0.0, 0.0), 0.3, size=(150, 2)),
        rng.normal((5.0, 0.0), 0.3, size=(100, 2)),
        rng.normal((2.5, 5.0), 0.3, size=(80, 2)),
    ]
    labels = np.concatenate([np.full(len(b), i) for i, b in enumerate(blobs)])
    values = np.vstack(blobs)
    order = rng.permutation(len(values))
    return stream_from_arrays(values[order], labels[order], rate=1000.0, name="three-blobs")
