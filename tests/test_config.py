"""Tests for EDMStreamConfig validation."""

import pytest

from repro.core.config import EDMStreamConfig


class TestDefaults:
    def test_defaults_match_paper_parameters(self):
        config = EDMStreamConfig()
        assert config.beta == 0.0021
        assert config.decay_a == 0.998
        assert config.decay_lambda == 1.0
        assert config.stream_rate == 1000.0
        assert config.enable_density_filter and config.enable_triangle_filter
        assert config.adaptive_tau

    def test_beta_range_validation_passes_for_defaults(self):
        EDMStreamConfig().validate_beta_range()

    def test_beta_range_validation_rejects_too_small_beta(self):
        config = EDMStreamConfig(beta=1e-7, stream_rate=1000.0)
        with pytest.raises(ValueError):
            config.validate_beta_range()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"radius": 0.0},
            {"radius": -1.0},
            {"beta": 0.0},
            {"beta": 1.0},
            {"decay_a": 1.0},
            {"decay_a": 0.0},
            {"decay_lambda": 0.0},
            {"stream_rate": 0.0},
            {"tau": 0.0},
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"init_size": 1},
            {"maintenance_interval": 0.0},
            {"snapshot_interval": 0.0},
            {"tau_reoptimize_interval": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EDMStreamConfig(**kwargs)

    def test_valid_explicit_tau_and_alpha(self):
        config = EDMStreamConfig(tau=2.5, alpha=0.4)
        assert config.tau == 2.5
        assert config.alpha == 0.4
