"""Tests for the bounded-memory sketch tier (repro.sketch).

Covers the approximate structures in isolation (decayed count-min sketch,
bloom filter), the :class:`SketchTier` evict/estimate contract, the
:class:`BoundedCellStore` cap enforcement, and the end-to-end behavior of
``EDMStream(memory_cap_bytes=...)`` — including the guarantee that leaving
the cap unset takes none of the bounded code paths.
"""

import numpy as np
import pytest

from repro.core.cellstore import CellStore
from repro.core.decay import DecayModel
from repro.core.edmstream import EDMStream
from repro.core.reservoir import OutlierReservoir
from repro.core.soa import CellArrays
from repro.distance import get_metric
from repro.sketch import (
    BloomFilter,
    BoundedCellStore,
    DecayedCountMinSketch,
    SketchTier,
    cell_state_footprint,
    stable_key_hash,
)


class TestStableKeyHash:
    def test_deterministic_across_calls(self):
        assert stable_key_hash((3, -1)) == stable_key_hash((3, -1))

    def test_lattice_neighbors_do_not_collide(self):
        keys = {stable_key_hash((i, j)) for i in range(-20, 20) for j in range(-20, 20)}
        assert len(keys) == 1600

    def test_order_sensitive(self):
        assert stable_key_hash((1, 2)) != stable_key_hash((2, 1))


class TestDecayedCountMinSketch:
    def test_fold_round_trip_without_elapsed_time(self):
        cms = DecayedCountMinSketch(width=256, depth=4, decay=DecayModel())
        cms.fold((3, -1), 5.0, now=10.0)
        assert cms.estimate((3, -1), now=10.0) == pytest.approx(5.0)

    def test_estimate_ages_like_the_decay_model(self):
        decay = DecayModel(a=0.998, lam=1.0)
        cms = DecayedCountMinSketch(width=256, depth=4, decay=decay)
        cms.fold((0, 0), 8.0, now=0.0)
        expected = 8.0 * decay.rate**25.0
        assert cms.estimate((0, 0), now=25.0) == pytest.approx(expected)

    def test_fold_is_max_merge_idempotent(self):
        # Evict -> revive -> evict must not double-count: folding the same
        # absolute density twice leaves the estimate unchanged.
        cms = DecayedCountMinSketch(width=256, depth=4, decay=DecayModel())
        cms.fold((5, 5), 3.0, now=1.0)
        cms.fold((5, 5), 3.0, now=1.0)
        assert cms.estimate((5, 5), now=1.0) == pytest.approx(3.0)

    def test_fold_keeps_the_larger_aged_value(self):
        cms = DecayedCountMinSketch(width=256, depth=4, decay=DecayModel())
        cms.fold((1, 1), 10.0, now=0.0)
        cms.fold((1, 1), 0.5, now=0.0)  # smaller fold must not clobber
        assert cms.estimate((1, 1), now=0.0) == pytest.approx(10.0)

    def test_add_accumulates(self):
        cms = DecayedCountMinSketch(width=256, depth=4, decay=DecayModel())
        for _ in range(7):
            cms.add((2, 2), 1.0, now=0.0)
        assert cms.estimate((2, 2), now=0.0) == pytest.approx(7.0)

    def test_never_underestimates_folded_mass(self):
        cms = DecayedCountMinSketch(width=64, depth=4, decay=DecayModel())
        rng = np.random.default_rng(3)
        truth = {}
        for _ in range(300):
            key = (int(rng.integers(0, 50)), int(rng.integers(0, 50)))
            value = float(rng.uniform(0.1, 5.0))
            cms.fold(key, value, now=0.0)
            truth[key] = max(truth.get(key, 0.0), value)
        for key, value in truth.items():
            assert cms.estimate(key, now=0.0) >= value - 1e-9

    def test_unseen_key_estimates_zero_when_uncrowded(self):
        cms = DecayedCountMinSketch(width=4096, depth=4, decay=DecayModel())
        cms.fold((0, 0), 5.0, now=0.0)
        assert cms.estimate((123, 456), now=0.0) == pytest.approx(0.0)

    def test_load_and_nbytes(self):
        cms = DecayedCountMinSketch(width=128, depth=2, decay=DecayModel())
        assert cms.load(now=0.0) == 0.0
        # Counter + timestamp grids dominate; hash parameters add a sliver.
        assert 128 * 2 * 8 * 2 <= cms.nbytes() < 128 * 2 * 8 * 2 + 256
        cms.fold((9, 9), 1.0, now=0.0)
        assert 0.0 < cms.load(now=0.0) <= 2 / 128

    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            DecayedCountMinSketch(width=0)
        with pytest.raises(ValueError):
            DecayedCountMinSketch(depth=0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=1000, error_rate=0.01)
        keys = [(i, i * 3) for i in range(500)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_design_point(self):
        bloom = BloomFilter(capacity=2000, error_rate=0.01, seed=5)
        for i in range(2000):
            bloom.add((i, 0))
        false_hits = sum((i, 1) in bloom for i in range(10000))
        assert false_hits / 10000 < 0.05  # design point 1%, generous slack

    def test_add_is_idempotent_for_fill_ratio(self):
        bloom = BloomFilter(capacity=100, error_rate=0.01)
        bloom.add((1, 2))
        ratio = bloom.fill_ratio()
        bloom.add((1, 2))
        assert bloom.fill_ratio() == ratio

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(capacity=100)
        assert (0, 0) not in bloom


class TestSketchTier:
    def tier(self, **kwargs):
        return SketchTier(decay=DecayModel(), radius=0.5, **kwargs)

    def test_key_quantises_by_cell_diameter(self):
        tier = self.tier()
        # box = 2 * radius = 1.0
        assert tier.key_of((0.2, 0.7)) == (0, 0)
        assert tier.key_of((1.2, -0.3)) == (1, -1)

    def test_evict_then_estimate_revives_density(self):
        tier = self.tier(revive_min=0.05)
        tier.evict((3.2, 3.4), 4.0, now=10.0)
        # A later point in the same grid box sees the aged density.
        estimate = tier.estimate((3.4, 3.1), now=10.0)
        assert estimate == pytest.approx(4.0)
        assert tier.evictions == 1

    def test_unknown_region_estimates_zero(self):
        tier = self.tier()
        tier.evict((3.2, 3.4), 4.0, now=0.0)
        assert tier.estimate((50.0, 50.0), now=0.0) == 0.0

    def test_estimates_below_revive_min_are_suppressed(self):
        tier = self.tier(revive_min=0.5)
        tier.evict((0.0, 0.0), 0.4, now=0.0)
        assert tier.estimate((0.0, 0.0), now=0.0) == 0.0

    def test_stats_counters(self):
        tier = self.tier()
        tier.evict((0.0, 0.0), 2.0, now=0.0)
        tier.record_revival(1.5)
        stats = tier.stats()
        assert stats["evictions"] == 1
        assert stats["revivals"] == 1
        assert stats["folded_density"] == pytest.approx(2.0)
        assert stats["revived_density"] == pytest.approx(1.5)
        assert stats["sketch_bytes"] == tier.nbytes()

    def test_auto_sized_fits_small_caps(self):
        tier = SketchTier.auto_sized(
            decay=DecayModel(), radius=0.5, memory_cap_bytes=40_000
        )
        assert tier.nbytes() < 40_000 // 4
        # Defaults are upper bounds: a huge cap keeps the configured geometry.
        big = SketchTier.auto_sized(
            decay=DecayModel(), radius=0.5, memory_cap_bytes=1 << 30
        )
        assert big.cms.width == 4096


def _bounded_fixture(n_cells, cap=1 << 20, radius=0.5):
    """An arena + stores + reservoir + tier holding ``n_cells`` inactive cells.

    Returns ``(bounded, ids)``: the cell ids in creation (= coldness) order.
    Cell ``i`` has ``last_update = i``, so lower indices are colder.
    """
    decay = DecayModel()
    metric = get_metric("euclidean")
    arena = CellArrays(numeric=True)
    active = CellStore(numeric=True, metric=metric, arrays=arena)
    inactive = CellStore(numeric=True, metric=metric, arrays=arena)
    reservoir = OutlierReservoir(decay=decay, beta=0.0021, stream_rate=1000.0)
    tier = SketchTier.auto_sized(decay=decay, radius=radius, memory_cap_bytes=cap)
    bounded = BoundedCellStore(
        arena=arena,
        active=active,
        inactive=inactive,
        reservoir=reservoir,
        tier=tier,
        memory_cap_bytes=cap,
    )
    ids = []
    for i in range(n_cells):
        cell = arena.create(
            seed=(float(i), float(-i)),
            density=1.0 + (i % 7),
            created_at=float(i),
            last_update=float(i),
        )
        inactive.add(cell)
        reservoir.add(cell)
        ids.append(cell.cell_id)
    return bounded, ids


class TestBoundedCellStore:
    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            _bounded_fixture(0, cap=0)

    def test_rejects_cap_smaller_than_sketch(self):
        with pytest.raises(ValueError):
            _bounded_fixture(0, cap=4096)

    def test_evict_coldest_is_lru_by_last_update(self):
        bounded, ids = _bounded_fixture(10)
        evicted = bounded.evict_coldest(3, now=100.0)
        assert evicted == 3
        # The first three created cells had the stalest last_update.
        assert all(cell_id not in bounded.arena for cell_id in ids[:3])
        assert all(cell_id in bounded.arena for cell_id in ids[3:])
        assert len(bounded.reservoir) == 7
        assert bounded.tier.evictions == 3

    def test_eviction_folds_decayed_density(self):
        bounded, _ = _bounded_fixture(1)
        decay = bounded.tier.decay
        bounded.evict_coldest(1, now=50.0)
        expected = 1.0 * decay.rate**50.0  # cell 0: density 1.0 at t=0
        estimate = bounded.tier.estimate((0.0, 0.0), now=50.0)
        assert estimate == pytest.approx(expected)

    def test_revival_density_counts_revivals(self):
        bounded, _ = _bounded_fixture(1)
        bounded.evict_coldest(1, now=0.0)
        assert bounded.revival_density((0.0, 0.0), now=0.0) == pytest.approx(1.0)
        assert bounded.tier.revivals == 1
        # A region never evicted revives nothing and counts nothing.
        assert bounded.revival_density((99.0, 99.0), now=0.0) == 0.0
        assert bounded.tier.revivals == 1

    def test_enforce_trims_back_under_cap(self):
        bounded, _ = _bounded_fixture(400)
        cap = bounded.note_peak() - 10_000  # force an overshoot
        bounded.memory_cap_bytes = cap
        evicted = bounded.enforce(now=1000.0)
        assert evicted > 0
        assert bounded.memory_footprint()["total"] <= cap
        assert bounded.cap_overflows == 0

    def test_stats_reports_peak_and_cap(self):
        bounded, _ = _bounded_fixture(5)
        stats = bounded.stats()
        assert stats["memory_cap_bytes"] == 1 << 20
        assert stats["cell_state_bytes"] > 0
        assert stats["peak_cell_state_bytes"] >= stats["cell_state_bytes"]
        assert stats["cap_overflows"] == 0

    def test_cell_state_footprint_components(self):
        bounded, _ = _bounded_fixture(5)
        footprint = cell_state_footprint(
            bounded.arena, bounded.active, bounded.inactive, sketch_bytes=123
        )
        assert footprint["sketch"] == 123
        assert footprint["total"] == (
            footprint["arena"]
            + footprint["side_state"]
            + footprint["stores"]
            + footprint["sketch"]
        )


class TestMassEviction:
    """Satellite coverage: thousands of evictions through the free-list."""

    N = 3000

    def test_mass_eviction_recycles_every_slot(self):
        bounded, ids = _bounded_fixture(self.N)
        arena = bounded.arena
        high_water = arena.high_water
        evicted = bounded.evict_coldest(self.N, now=float(self.N))
        assert evicted == self.N
        assert len(arena) == 0
        assert arena.n_free == high_water
        assert len(bounded.inactive) == 0
        assert len(bounded.reservoir) == 0
        arena.validate()
        # Reallocation drains the free-list without growing the arena.
        capacity = arena.capacity
        base = max(ids) + 1
        for i in range(self.N):
            arena.allocate(base + i, (float(i), 0.0))
        assert arena.capacity == capacity
        assert arena.n_free == high_water - self.N
        arena.validate()

    def test_mass_eviction_invalidates_store_caches(self):
        bounded, ids = _bounded_fixture(self.N)
        inactive = bounded.inactive
        ids_before = inactive.ids_array()
        seeds_before = inactive.seed_view()
        assert ids_before.size == self.N
        assert seeds_before is not None and seeds_before.shape[0] == self.N
        bounded.evict_coldest(self.N // 2, now=float(self.N))
        ids_after = inactive.ids_array()
        seeds_after = inactive.seed_view()
        assert ids_after.size == self.N - self.N // 2
        assert seeds_after.shape[0] == self.N - self.N // 2
        # The survivors are exactly the hottest (most recently created) half.
        assert set(ids_after.tolist()) == set(ids[self.N // 2 :])
        inactive.validate()
        bounded.arena.validate()

    def test_interleaved_eviction_and_allocation(self):
        bounded, _ = _bounded_fixture(self.N)
        arena = bounded.arena
        inactive = bounded.inactive
        reservoir = bounded.reservoir
        next_id = self.N
        rng = np.random.default_rng(11)
        for round_no in range(6):
            bounded.evict_coldest(250, now=float(self.N + round_no))
            for _ in range(int(rng.integers(50, 150))):
                cell = arena.create(
                    seed=(float(next_id % 97), float(next_id % 89)),
                    density=1.0,
                    created_at=float(next_id),
                    last_update=float(next_id),
                )
                inactive.add(cell)
                reservoir.add(cell)
                next_id += 1
            arena.validate()
            inactive.validate()
        assert len(arena) == len(inactive) == len(reservoir)


def _cluster_stream(n, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [0.0, 5.0], [5.0, 0.0]])
    points = []
    for i in range(n):
        if rng.random() < 0.1:
            points.append(tuple(rng.uniform(-3.0, 8.0, size=2)))
        else:
            center = centers[int(rng.integers(0, len(centers)))]
            points.append(tuple(center + rng.normal(0.0, 0.3, size=2)))
    return points


class TestBoundedEDMStream:
    def test_cap_requires_numeric_metric(self):
        with pytest.raises(ValueError, match="numeric"):
            EDMStream(radius=0.5, metric="jaccard", memory_cap_bytes=1 << 20)

    def test_bounded_run_stays_under_cap_and_clusters(self):
        points = _cluster_stream(6000, seed=2)
        exact = EDMStream(radius=0.4, beta=0.0021, stream_rate=1000.0)
        for i, p in enumerate(points):
            exact.learn_one(p, timestamp=i / 1000.0)
        cap = max(exact.memory_footprint()["total"] // 2, 65_536)

        capped = EDMStream(
            radius=0.4, beta=0.0021, stream_rate=1000.0, memory_cap_bytes=cap
        )
        peak = 0
        for i, p in enumerate(points):
            capped.learn_one(p, timestamp=i / 1000.0)
            if i % 500 == 0:
                peak = max(peak, capped.memory_footprint()["total"])
        bounded = capped.bounded_store
        peak = max(peak, bounded.peak_bytes)
        assert peak <= cap
        assert bounded.cap_overflows == 0
        assert bounded.tier.evictions > 0
        assert capped.n_clusters == exact.n_clusters
        capped._cells.validate()

    def test_bounded_batch_run_stays_under_cap(self):
        from repro.streams.point import StreamPoint

        points = [
            StreamPoint(values=p, timestamp=i / 1000.0, label=None, point_id=i)
            for i, p in enumerate(_cluster_stream(6000, seed=3))
        ]
        exact = EDMStream(radius=0.4, beta=0.0021, stream_rate=1000.0)
        exact.learn_many(points, batch_size=256)
        cap = max(exact.memory_footprint()["total"] // 2, 65_536)

        capped = EDMStream(
            radius=0.4, beta=0.0021, stream_rate=1000.0, memory_cap_bytes=cap
        )
        capped.learn_many(points, batch_size=256)
        bounded = capped.bounded_store
        assert bounded.peak_bytes <= cap
        assert bounded.cap_overflows == 0
        assert bounded.tier.evictions > 0
        assert capped.n_clusters == exact.n_clusters
        capped._cells.validate()

    def test_unset_cap_takes_no_bounded_paths(self):
        model = EDMStream(radius=0.4)
        assert model.bounded_store is None
        assert model.memory_footprint()["sketch"] == 0
        model.learn_one((0.0, 0.0), timestamp=0.0)
        snapshot = model.snapshot()
        assert "memory" not in snapshot.metadata
        assert "memory" not in model.summary()

    def test_bounded_summary_and_snapshot_report_sketch_stats(self):
        model = EDMStream(radius=0.4, memory_cap_bytes=1 << 20)
        for i, p in enumerate(_cluster_stream(500, seed=4)):
            model.learn_one(p, timestamp=i / 1000.0)
        memory = model.summary()["memory"]
        assert memory["memory_cap_bytes"] == 1 << 20
        assert memory["cell_state_bytes"] > 0
        snapshot = model.snapshot()
        assert snapshot.metadata["memory"]["memory_cap_bytes"] == 1 << 20

    def test_revived_cell_carries_sketch_density(self):
        model = EDMStream(radius=0.4, beta=0.0021, stream_rate=1000.0,
                          memory_cap_bytes=1 << 20)
        # Build a cold cell, force-evict it, then re-arrive in its box.
        for i in range(20):
            model.learn_one((10.0, 10.0), timestamp=i / 1000.0)
        bounded = model.bounded_store
        # Make every cell inactive-evictable except none are active yet.
        n_before = len(model._cells)
        assert n_before > 0
        evicted = bounded.evict_coldest(len(model._inactive), now=0.02)
        assert evicted > 0
        assert bounded.tier.evictions == evicted
        model.learn_one((10.0, 10.0), timestamp=0.03)
        assert bounded.tier.revivals >= 1
        revived = [c for c in model.reservoir.cells()] + list(model._active.cells())
        assert any(c.density > 1.5 for c in revived)

    def test_config_validates_cap_and_sketch_fields(self):
        with pytest.raises(ValueError):
            EDMStream(radius=0.5, memory_cap_bytes=-1)
        with pytest.raises(ValueError):
            EDMStream(radius=0.5, memory_cap_bytes=1 << 20, sketch_depth=0)
        with pytest.raises(ValueError):
            EDMStream(radius=0.5, memory_cap_bytes=1 << 20, sketch_revive_min=-2.0)
