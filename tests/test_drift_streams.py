"""Tests for the concept-drift stream generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.streams.drift import (
    GaussianMixture,
    RBFDriftGenerator,
    abrupt_drift_stream,
    gradual_drift_stream,
)


class TestRBFDriftGenerator:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RBFDriftGenerator(n_points=0)
        with pytest.raises(ValueError):
            RBFDriftGenerator(n_kernels=0)
        with pytest.raises(ValueError):
            RBFDriftGenerator(dimension=0)
        with pytest.raises(ValueError):
            RBFDriftGenerator(noise_fraction=1.0)
        with pytest.raises(ValueError):
            RBFDriftGenerator(bounds=(5.0, 1.0))
        with pytest.raises(ValueError):
            RBFDriftGenerator(drift_speed=-0.1)

    def test_stream_shape(self):
        stream = RBFDriftGenerator(n_points=500, n_kernels=3, dimension=4, seed=1).generate()
        assert len(stream) == 500
        assert stream.dimension == 4
        labels = {p.label for p in stream}
        assert labels <= set(range(3))

    def test_timestamps_follow_rate(self):
        stream = RBFDriftGenerator(n_points=100, rate=100.0, seed=2).generate()
        assert stream[1].timestamp - stream[0].timestamp == pytest.approx(0.01)
        assert stream.duration == pytest.approx(0.99)

    def test_reproducible_with_seed(self):
        a = RBFDriftGenerator(n_points=200, seed=7).generate()
        b = RBFDriftGenerator(n_points=200, seed=7).generate()
        assert all(pa.values == pb.values for pa, pb in zip(a, b))

    def test_different_seeds_differ(self):
        a = RBFDriftGenerator(n_points=200, seed=7).generate()
        b = RBFDriftGenerator(n_points=200, seed=8).generate()
        assert any(pa.values != pb.values for pa, pb in zip(a, b))

    def test_noise_points_are_labelled_minus_one(self):
        stream = RBFDriftGenerator(n_points=2000, noise_fraction=0.2, seed=3).generate()
        noise = sum(1 for p in stream if p.label == -1)
        assert 200 < noise < 700

    def test_drift_moves_cluster_centroids(self):
        generator = RBFDriftGenerator(
            n_points=4000, n_kernels=2, drift_speed=2.0, kernel_std=0.05, seed=4
        )
        stream = generator.generate()
        early = np.asarray([p.as_tuple() for p in stream.points[:500] if p.label == 0])
        late = np.asarray([p.as_tuple() for p in stream.points[-500:] if p.label == 0])
        assert early.size and late.size
        assert np.linalg.norm(early.mean(axis=0) - late.mean(axis=0)) > 0.5

    def test_zero_drift_keeps_centroids(self):
        generator = RBFDriftGenerator(
            n_points=4000, n_kernels=1, drift_speed=0.0, kernel_std=0.05, seed=5
        )
        stream = generator.generate()
        early = np.asarray([p.as_tuple() for p in stream.points[:500]])
        late = np.asarray([p.as_tuple() for p in stream.points[-500:]])
        assert np.linalg.norm(early.mean(axis=0) - late.mean(axis=0)) < 0.1

    def test_points_bounce_inside_bounds(self):
        generator = RBFDriftGenerator(
            n_points=3000, n_kernels=3, drift_speed=5.0, kernel_std=0.01,
            bounds=(0.0, 4.0), seed=6,
        )
        stream = generator.generate()
        matrix = stream.values_matrix()
        # Kernel centres stay inside the domain; points may stick out by a
        # few standard deviations only.
        assert matrix.min() > -1.0
        assert matrix.max() < 5.0


class TestGaussianMixture:
    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMixture(centers=[])
        with pytest.raises(ValueError):
            GaussianMixture(centers=[(0.0,)], weights=[0.5, 0.5])
        with pytest.raises(ValueError):
            GaussianMixture(centers=[(0.0,)], labels=[0, 1])

    def test_sample_label_defaults_to_component_index(self):
        mixture = GaussianMixture(centers=[(0.0, 0.0), (10.0, 10.0)], std=0.01)
        rng = np.random.default_rng(0)
        values, label = mixture.sample(rng)
        assert label in (0, 1)
        center = (0.0, 0.0) if label == 0 else (10.0, 10.0)
        assert np.linalg.norm(np.asarray(values) - center) < 1.0

    def test_explicit_labels_and_weights(self):
        mixture = GaussianMixture(
            centers=[(0.0,), (5.0,)], std=0.01, weights=[1.0, 0.0], labels=[7, 9]
        )
        rng = np.random.default_rng(1)
        labels = {mixture.sample(rng)[1] for _ in range(20)}
        assert labels == {7}


class TestAbruptDrift:
    def test_drift_point_validation(self):
        before = GaussianMixture(centers=[(0.0, 0.0)])
        after = GaussianMixture(centers=[(5.0, 5.0)])
        with pytest.raises(ValueError):
            abrupt_drift_stream(before, after, drift_point=0.0)

    def test_concept_switches_at_drift_point(self):
        before = GaussianMixture(centers=[(0.0, 0.0)], std=0.05)
        after = GaussianMixture(centers=[(10.0, 10.0)], std=0.05, labels=[1])
        stream = abrupt_drift_stream(before, after, n_points=1000, drift_point=0.5, seed=0)
        first_half = np.asarray([p.as_tuple() for p in stream.points[:500]])
        second_half = np.asarray([p.as_tuple() for p in stream.points[500:]])
        assert np.linalg.norm(first_half.mean(axis=0)) < 1.0
        assert np.linalg.norm(second_half.mean(axis=0) - (10.0, 10.0)) < 1.0

    def test_labels_follow_concepts(self):
        before = GaussianMixture(centers=[(0.0, 0.0)], labels=[0])
        after = GaussianMixture(centers=[(10.0, 10.0)], labels=[1])
        stream = abrupt_drift_stream(before, after, n_points=100, drift_point=0.3, seed=1)
        assert {p.label for p in stream.points[:30]} == {0}
        assert {p.label for p in stream.points[30:]} == {1}


class TestGradualDrift:
    def test_window_validation(self):
        mixture = GaussianMixture(centers=[(0.0,)])
        with pytest.raises(ValueError):
            gradual_drift_stream(mixture, mixture, drift_start=0.7, drift_end=0.3)

    def test_mixture_proportion_shifts_over_time(self):
        before = GaussianMixture(centers=[(0.0, 0.0)], std=0.05, labels=[0])
        after = GaussianMixture(centers=[(10.0, 10.0)], std=0.05, labels=[1])
        stream = gradual_drift_stream(
            before, after, n_points=3000, drift_start=0.2, drift_end=0.8, seed=2
        )
        first = [p.label for p in stream.points[:600]]
        middle = [p.label for p in stream.points[1400:1600]]
        last = [p.label for p in stream.points[-600:]]
        assert set(first) == {0}
        assert set(last) == {1}
        middle_fraction = sum(middle) / len(middle)
        assert 0.2 < middle_fraction < 0.8

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=100, max_value=500), st.integers(min_value=0, max_value=1000))
    def test_stream_length_and_monotone_timestamps(self, n_points, seed):
        before = GaussianMixture(centers=[(0.0, 0.0)])
        after = GaussianMixture(centers=[(3.0, 3.0)])
        stream = gradual_drift_stream(before, after, n_points=n_points, seed=seed)
        assert len(stream) == n_points
        timestamps = [p.timestamp for p in stream]
        assert all(t2 >= t1 for t1, t2 in zip(timestamps, timestamps[1:]))
