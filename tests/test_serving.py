"""Serving-tier tests (ISSUE 7): shared-memory fan-out of snapshots.

The contracts under test:

* **zero-copy publication** — a worker-side hydrated snapshot serves
  ``predict_many`` off arrays that are *views into the shared segment*
  (``np.shares_memory`` against the segment buffer), never copies;
* **version handshake under rapid republish** — a reader refreshing while
  the publisher swaps segments as fast as it can always lands on a
  consistent (generation, version, arrays) triple, and retries on the
  swapped-away-segment race instead of failing;
* **publisher restart** — a new publisher over the same token bumps the
  generation; already-attached readers re-handshake onto it;
* **segment hygiene** — steady state is one control block plus one data
  segment; shutdown unlinks everything; a SIGKILLed publisher's segments
  are swept by the cluster's health check (no ``/dev/shm`` leaks);
* **micro-batch frontend** — flushes on the max-batch trigger (immediate)
  and on the max-delay trigger (timer), with per-trigger counters;
* **lifecycle** — a full ``ServingCluster`` serves synchronized labels
  from every worker while ingestion runs, and exposes staleness and
  publish/attach counters via ``summary()``.
"""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.core import EDMStream
from repro.serving import (
    MicroBatchFrontend,
    ServingCluster,
    ShmSnapshotPublisher,
    SnapshotBackend,
    SnapshotReader,
    WorkerPoolBackend,
    cleanup_segments,
    list_segments,
)
from repro.streams import SDSGenerator


def make_model():
    return EDMStream(radius=0.3, beta=0.0021, stream_rate=1000.0)


def make_stream(n_points=1500, seed=7):
    return SDSGenerator(n_points=n_points, rate=1000.0, seed=seed).generate()


def make_snapshot(n_points=1500, seed=7):
    model = make_model()
    model.learn_many(make_stream(n_points, seed))
    return model.request_clustering()


QUERIES = np.asarray(
    [p.values for p in SDSGenerator(n_points=32, rate=1000.0, seed=9).generate()]
)


@pytest.fixture
def token():
    """A per-test serving token, swept clean afterwards no matter what."""
    value = f"test{os.getpid()}"
    cleanup_segments(value)
    yield value
    cleanup_segments(value)
    assert list_segments(value) == []


class TestPublisherReaderHandshake:
    def test_publish_hydrate_round_trip(self, token):
        snapshot = make_snapshot()
        with ShmSnapshotPublisher(token) as publisher:
            version = publisher.publish(snapshot)
            assert version == 1
            reader = SnapshotReader(token)
            hydrated = reader.refresh()
            assert hydrated is not None and hydrated.key == (1, 1)
            assert hydrated.mode == "arrays"
            assert hydrated.snapshot.predict_many(QUERIES).tolist() == (
                snapshot.predict_many(QUERIES).tolist()
            )
            reader.close()

    def test_hydration_is_zero_copy_out_of_the_segment(self, token):
        snapshot = make_snapshot()
        with ShmSnapshotPublisher(token) as publisher:
            publisher.publish(snapshot)
            reader = SnapshotReader(token)
            hydrated = reader.refresh()
            segment_bytes = np.frombuffer(
                hydrated._segment.buf, dtype=np.uint8
            )
            checked = 0
            for name in ("seeds", "cell_ids", "labels", "densities", "coverage"):
                array = getattr(hydrated.snapshot, name)
                if not isinstance(array, np.ndarray):
                    continue  # scalar coverage has no buffer form
                assert not array.flags.writeable, name
                assert np.shares_memory(array, segment_bytes), name
                checked += 1
            assert checked >= 4  # seeds, cell_ids, labels, densities
            del segment_bytes, array
            reader.close()

    def test_rapid_republish_always_lands_consistent(self, token):
        model = make_model()
        model.learn_many(make_stream())
        with ShmSnapshotPublisher(token) as publisher:
            reader = SnapshotReader(token)
            last_version = 0
            for _ in range(40):
                publisher.publish(model.snapshot())
                hydrated = reader.refresh()
                # Consistency: the hydrated header matches its own arrays
                # and versions move monotonically forward.
                assert hydrated.version >= last_version
                assert hydrated.generation == publisher.generation
                labels = hydrated.snapshot.predict_many(QUERIES)
                assert len(labels) == len(QUERIES)
                last_version = hydrated.version
            assert last_version == 40
            # Steady state: exactly one control block + one data segment.
            assert len(list_segments(token)) == 2
            reader.close()

    def test_reader_survives_swap_while_detached(self, token):
        snapshot = make_snapshot()
        with ShmSnapshotPublisher(token) as publisher:
            publisher.publish(snapshot)
            reader = SnapshotReader(token)
            reader.refresh()
            for _ in range(5):  # several swaps while the reader sleeps
                publisher.publish(snapshot)
            hydrated = reader.refresh()
            assert hydrated.version == 6
            # The old publication was unlinked but the reader's arrays
            # stayed valid the whole time (mapping outlives the unlink).
            assert hydrated.snapshot.predict_many(QUERIES).tolist() == (
                snapshot.predict_many(QUERIES).tolist()
            )
            reader.close()

    def test_attach_after_publisher_restart_bumps_generation(self, token):
        snapshot = make_snapshot()
        first = ShmSnapshotPublisher(token)
        first.publish(snapshot)
        reader = SnapshotReader(token)
        assert reader.refresh().key == (1, 1)
        first.close(unlink=False)  # simulated crash: segments stay behind

        second = ShmSnapshotPublisher(token)
        assert second.generation == 2
        second.publish(snapshot)
        hydrated = reader.refresh()
        assert hydrated.key == (2, 1)
        assert hydrated.snapshot.predict_many(QUERIES).tolist() == (
            snapshot.predict_many(QUERIES).tolist()
        )
        reader.close()
        second.close()

    def test_pickle_fallback_for_object_snapshots(self, token):
        from repro.distance import TokenSetPoint

        model = EDMStream(radius=0.6, metric="jaccard", stream_rate=1000.0)
        docs = [
            frozenset({"goal", "match", "football"}),
            frozenset({"phone", "android", "release"}),
        ] * 400
        model.learn_many([TokenSetPoint(tokens) for tokens in docs])
        snapshot = model.request_clustering()
        assert snapshot.seed_objects is not None
        with ShmSnapshotPublisher(token) as publisher:
            publisher.publish(snapshot)
            assert publisher.counters["pickle_publishes"] == 1
            reader = SnapshotReader(token)
            hydrated = reader.refresh()
            assert hydrated.mode == "pickle"
            queries = [TokenSetPoint(frozenset({"goal", "match"}))]
            assert hydrated.snapshot.predict_many(queries).tolist() == (
                snapshot.predict_many(queries).tolist()
            )
            reader.close()

    def test_publisher_counters_and_staleness(self, token):
        snapshot = make_snapshot()
        with ShmSnapshotPublisher(token) as publisher:
            assert publisher.staleness_s() == float("inf")
            publisher.publish(snapshot)
            publisher.publish(snapshot)
            summary = publisher.summary()
            assert summary["publishes"] == 2
            assert summary["last_version"] == 2
            assert summary["bytes_published"] > 0
            assert 0.0 <= summary["snapshot_staleness_s"] < 60.0


class TestMicroBatchFrontend:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_flush_on_max_batch_is_immediate(self):
        snapshot = make_snapshot()

        async def scenario():
            front = MicroBatchFrontend(
                SnapshotBackend(snapshot), max_batch=8, max_delay=60.0
            )
            labels = await asyncio.gather(
                *(front.predict(q) for q in QUERIES[:8])
            )
            return front, labels

        front, labels = self._run(scenario())
        # max_delay is a minute: only the size trigger can have flushed.
        assert front.counters["size_flushes"] == 1
        assert front.counters["delay_flushes"] == 0
        assert front.counters["batches"] == 1
        assert labels == snapshot.predict_many(QUERIES[:8]).tolist()

    def test_flush_on_max_delay_timer(self):
        snapshot = make_snapshot()

        async def scenario():
            front = MicroBatchFrontend(
                SnapshotBackend(snapshot), max_batch=1000, max_delay=0.01
            )
            labels = await asyncio.gather(
                *(front.predict(q) for q in QUERIES[:3])
            )
            return front, labels

        front, labels = self._run(scenario())
        assert front.counters["delay_flushes"] == 1
        assert front.counters["size_flushes"] == 0
        assert labels == snapshot.predict_many(QUERIES[:3]).tolist()

    def test_drain_flushes_the_tail(self):
        snapshot = make_snapshot()

        async def scenario():
            front = MicroBatchFrontend(
                SnapshotBackend(snapshot), max_batch=1000, max_delay=60.0
            )
            pending = [asyncio.ensure_future(front.predict(q)) for q in QUERIES[:5]]
            await asyncio.sleep(0)  # let the predicts enqueue
            await front.drain()
            return front, [await p for p in pending]

        front, labels = self._run(scenario())
        assert front.counters["batches"] == 1
        assert labels == snapshot.predict_many(QUERIES[:5]).tolist()

    def test_backend_error_propagates_to_every_caller(self):
        class FailingBackend:
            async def predict_many(self, points, stable):
                raise RuntimeError("backend down")

        async def scenario():
            front = MicroBatchFrontend(FailingBackend(), max_batch=2, max_delay=60.0)
            results = await asyncio.gather(
                front.predict([0.0, 0.0]),
                front.predict([1.0, 1.0]),
                return_exceptions=True,
            )
            return results

        results = self._run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)


class TestServingCluster:
    def test_end_to_end_serving_under_ingestion(self):
        with ServingCluster(
            make_model, make_stream, n_workers=2, chunk_size=256
        ) as cluster:
            cluster.wait_until_serving(timeout_s=60.0)
            labels0, version0, staleness0 = cluster.request(QUERIES, worker=0)
            labels1, version1, _ = cluster.request(QUERIES, worker=1)
            assert len(labels0) == len(QUERIES)
            assert version0 >= 1 and version1 >= 1
            assert 0.0 <= staleness0 < 60.0

            ping = cluster.ping(0)
            assert ping["queries"] >= len(QUERIES)
            assert ping["attaches"] >= 1
            assert ping["snapshot_version"] >= 1

            summary = cluster.summary()
            assert summary["publisher_alive"]
            assert summary["points_ingested"] > 0
            assert summary["snapshot_staleness_s"] < 60.0
            assert all(w["alive"] for w in summary["workers"])

            # The shared-memory stats block carries the live serving surface.
            stats = summary["stats"]
            assert stats is not None
            assert stats["publisher"]["publishes"] >= 1
            assert stats["publisher"]["points_ingested"] > 0
            assert stats["publisher"]["phases"]["assign"]["count"] > 0
            assert len(stats["workers"]) == 2
            served = {w["slot"]: w for w in stats["workers"]}
            assert served[0]["queries"] >= len(QUERIES)
            assert served[0]["latency_count"] >= 1
            assert served[0]["snapshot_version"] >= 1

            async def through_frontend():
                backend = WorkerPoolBackend(cluster.connections)
                front = MicroBatchFrontend(backend, max_batch=8, max_delay=0.005)
                labels = await asyncio.gather(*(front.predict(q) for q in QUERIES))
                await front.drain()
                return labels

            labels = asyncio.run(through_frontend())
            assert len(labels) == len(QUERIES)
            token = cluster.token
        assert list_segments(token) == []

    def test_sigkilled_publisher_segments_are_swept(self):
        cluster = ServingCluster(make_model, make_stream, n_workers=1)
        try:
            cluster.wait_until_serving(timeout_s=60.0)
            assert len(cluster.leaked_segments()) >= 2
            os.kill(cluster._publisher.pid, signal.SIGKILL)
            cluster._publisher.join(10.0)
            health = cluster.health_check()
            assert not health["publisher_alive"]
            assert cluster.counters["crash_cleanups"] == 1
            assert cluster.leaked_segments() == []
            # The attached worker still answers off its mapped arrays.
            labels, _, _ = cluster.request(QUERIES, worker=0)
            assert len(labels) == len(QUERIES)
        finally:
            cluster.shutdown()
        assert cluster.leaked_segments() == []

    def test_sigkilled_worker_is_restarted_by_health_check(self):
        with ServingCluster(make_model, make_stream, n_workers=2) as cluster:
            cluster.wait_until_serving(timeout_s=60.0)
            victim, _ = cluster._workers[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(10.0)

            health = cluster.health_check()
            entry = health["workers"][1]
            assert entry["restarted"]
            assert cluster.counters["worker_restarts"] == 1
            # Satellite: restart provenance is part of the health surface.
            assert entry["restarts"] == 1
            assert "SIGKILL" in entry["last_exit_reason"]
            survivor = health["workers"][0]
            assert survivor["restarts"] == 0
            assert survivor["last_exit_reason"] is None
            # The replacement runs on the same token: it re-handshakes and
            # serves queries again, while the survivor was never touched.
            cluster.wait_until_serving(timeout_s=60.0)
            labels, version, _ = cluster.request(QUERIES, worker=1)
            assert len(labels) == len(QUERIES)
            assert version >= 1
            labels0, _, _ = cluster.request(QUERIES, worker=0)
            assert len(labels0) == len(QUERIES)
            # Healthy clusters are left alone on subsequent checks.
            again = cluster.health_check()
            assert all(w["alive"] for w in again["workers"])
            assert cluster.counters["worker_restarts"] == 1

    def test_shutdown_is_idempotent_and_leak_free(self):
        cluster = ServingCluster(make_model, make_stream, n_workers=1)
        cluster.wait_until_serving(timeout_s=60.0)
        token = cluster.token
        cluster.shutdown()
        cluster.shutdown()
        assert list_segments(token) == []
        assert not cluster._publisher.is_alive()
        assert not any(proc.is_alive() for proc, _ in cluster._workers)
