"""Tests for the command-line interface and the experiment registry."""

import pytest

from repro.harness import registry
from repro.harness.cli import EXPERIMENTS, build_parser, main, run_experiment


class TestRegistry:
    def test_cli_table_is_generated_from_the_registry(self):
        specs = registry.all_experiments()
        assert set(EXPERIMENTS) == set(specs)
        for experiment_id, (description, _) in EXPERIMENTS.items():
            assert description == specs[experiment_id].description

    def test_extension_experiments_are_registered(self):
        assert {"serve", "memory", "query", "fig10_batch"} <= set(
            registry.all_experiments()
        )

    def test_get_experiment_unknown_id_lists_known_ids(self):
        with pytest.raises(KeyError, match="memory"):
            registry.get_experiment("nope")

    def test_register_makes_an_experiment_runnable_everywhere(self):
        sentinel = object()
        registry.register("_test_tmp", "temporary", lambda points: sentinel)
        try:
            assert registry.get_experiment("_test_tmp").run() is sentinel
            assert run_experiment("_test_tmp") is sentinel
        finally:
            registry._REGISTRY.pop("_test_tmp", None)
            dict.pop(EXPERIMENTS, "_test_tmp", None)


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses_options(self):
        args = build_parser().parse_args(["run", "fig15", "--points", "500"])
        assert args.command == "run"
        assert args.experiment == "fig15"
        assert args.points == 500

    def test_unknown_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_every_paper_artifact_has_an_entry(self):
        assert {"table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13", "fig14", "fig15", "fig16", "fig17", "ablation"} <= set(EXPERIMENTS)


class TestExecution:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_run_experiment_by_id(self):
        result = run_experiment("table2", points=300)
        assert result.experiment_id == "table2"

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_run_command_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        code = main(["run", "fig15", "--points", "4000", "--output", str(target)])
        assert code == 0
        assert target.exists()
        assert "dynamic" in target.read_text()

    def test_run_command_prints_to_stdout(self, capsys):
        assert main(["run", "table2", "--points", "300"]) == 0
        assert "Datasets" in capsys.readouterr().out


class TestFleetCommand:
    def test_fleet_run_parses_options(self):
        args = build_parser().parse_args(
            [
                "fleet", "run", "--tag", "bench", "--id", "query", "--points",
                "500", "--seed", "7", "--jobs", "2", "--resume", "--no-gate",
            ]
        )
        assert args.command == "fleet" and args.fleet_command == "run"
        assert args.tag == ["bench"] and args.ids == ["query"]
        assert args.points == 500 and args.seed == 7 and args.jobs == 2
        assert args.resume and args.no_gate

    def test_fleet_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])

    def test_fleet_list_shows_planned_runs(self, capsys):
        assert main(["fleet", "list", "--tag", "bench", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "matrix bench: 5 runs" in output
        assert "query--seed=3" in output
        assert "BENCH_query.json" in output

    def test_fleet_list_empty_filter_is_an_error_on_run(self, capsys):
        assert main(["fleet", "run", "--tag", "no-such-tag"]) == 1
        assert "matrix is empty" in capsys.readouterr().out

    def test_fleet_run_executes_a_registered_toy(self, tmp_path, capsys):
        from repro.harness.results import ExperimentResult

        def factory(points, seed=None, **kw):
            result = ExperimentResult("_cli_toy", "toy")
            result.metadata["seed"] = seed
            return result

        registry.all_experiments()
        registry.register("_cli_toy", "toy", factory)
        try:
            code = main(
                [
                    "fleet", "run", "--id", "_cli_toy", "--seed", "9",
                    "--jobs", "0", "--name", "clitoy",
                    "--results-dir", str(tmp_path / "results"),
                    "--artifacts-dir", str(tmp_path / "artifacts"),
                ]
            )
            assert code == 0
            assert "_cli_toy--seed=9" in capsys.readouterr().out
            assert (
                tmp_path / "results" / "clitoy" / "_cli_toy--seed=9" / "metadata.json"
            ).is_file()
        finally:
            registry._REGISTRY.pop("_cli_toy", None)
            dict.pop(EXPERIMENTS, "_cli_toy", None)
