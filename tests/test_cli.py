"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import EXPERIMENTS, build_parser, main, run_experiment


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses_options(self):
        args = build_parser().parse_args(["run", "fig15", "--points", "500"])
        assert args.command == "run"
        assert args.experiment == "fig15"
        assert args.points == 500

    def test_unknown_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_every_paper_artifact_has_an_entry(self):
        assert {"table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13", "fig14", "fig15", "fig16", "fig17", "ablation"} <= set(EXPERIMENTS)


class TestExecution:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_run_experiment_by_id(self):
        result = run_experiment("table2", points=300)
        assert result.experiment_id == "table2"

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_run_command_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        code = main(["run", "fig15", "--points", "4000", "--output", str(target)])
        assert code == 0
        assert target.exists()
        assert "dynamic" in target.read_text()

    def test_run_command_prints_to_stdout(self, capsys):
        assert main(["run", "table2", "--points", "300"]) == 0
        assert "Datasets" in capsys.readouterr().out
