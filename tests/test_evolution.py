"""Tests for the cluster-evolution tracker (Table 1)."""

import pytest

from repro.core.evolution import ClusterEvent, EvolutionTracker, EvolutionType


def partition(**clusters):
    """Build a partition dict from keyword arguments: a={1,2}, b={3}, ..."""
    return {name: frozenset(members) for name, members in clusters.items()}


class TestBasicObservations:
    def test_first_observation_emits_initial_emerge_events(self):
        tracker = EvolutionTracker()
        events = tracker.observe(0.0, {1: frozenset({10, 11}), 2: frozenset({20})})
        assert {e.event_type for e in events} == {EvolutionType.EMERGE}
        assert len(events) == 2

    def test_unchanged_partition_emits_nothing(self):
        tracker = EvolutionTracker()
        p = {1: frozenset({10, 11}), 2: frozenset({20, 21})}
        tracker.observe(0.0, p)
        events = tracker.observe(1.0, p)
        assert events == []

    def test_invalid_overlap_threshold_rejected(self):
        with pytest.raises(ValueError):
            EvolutionTracker(overlap_threshold=0.0)
        with pytest.raises(ValueError):
            EvolutionTracker(overlap_threshold=1.5)


class TestEvolutionTypes:
    def test_emerge(self):
        tracker = EvolutionTracker()
        tracker.observe(0.0, partition(a={1, 2}))
        events = tracker.observe(1.0, partition(a={1, 2}, b={30, 31}))
        types = {e.event_type for e in events}
        assert EvolutionType.EMERGE in types
        emerge = [e for e in events if e.event_type == EvolutionType.EMERGE][0]
        assert emerge.new_clusters == ("b",)

    def test_disappear(self):
        tracker = EvolutionTracker()
        tracker.observe(0.0, partition(a={1, 2}, b={3, 4}))
        events = tracker.observe(1.0, partition(a={1, 2}))
        disappear = [e for e in events if e.event_type == EvolutionType.DISAPPEAR]
        assert len(disappear) == 1
        assert disappear[0].old_clusters == ("b",)

    def test_merge(self):
        tracker = EvolutionTracker()
        tracker.observe(0.0, partition(a={1, 2, 3}, b={4, 5, 6}))
        events = tracker.observe(1.0, partition(c={1, 2, 3, 4, 5, 6}))
        merges = [e for e in events if e.event_type == EvolutionType.MERGE]
        assert len(merges) == 1
        assert set(merges[0].old_clusters) == {"a", "b"}
        assert merges[0].new_clusters == ("c",)

    def test_split(self):
        tracker = EvolutionTracker()
        tracker.observe(0.0, partition(a={1, 2, 3, 4, 5, 6}))
        events = tracker.observe(1.0, partition(b={1, 2, 3}, c={4, 5, 6}))
        splits = [e for e in events if e.event_type == EvolutionType.SPLIT]
        assert len(splits) == 1
        assert splits[0].old_clusters == ("a",)
        assert set(splits[0].new_clusters) == {"b", "c"}

    def test_adjust_on_cell_movement(self):
        tracker = EvolutionTracker()
        tracker.observe(0.0, partition(a={1, 2, 3, 4}, b={5, 6, 7, 8}))
        # cell 4 moves from cluster a to cluster b; both clusters survive.
        events = tracker.observe(1.0, partition(a={1, 2, 3}, b={4, 5, 6, 7, 8}))
        adjusts = [e for e in events if e.event_type == EvolutionType.ADJUST]
        assert adjusts
        assert any(4 in e.moved_cells for e in adjusts)

    def test_survivals_recorded_only_when_requested(self):
        tracker = EvolutionTracker(record_survivals=True)
        tracker.observe(0.0, partition(a={1, 2}))
        events = tracker.observe(1.0, partition(a={1, 2, 3}))
        assert any(e.event_type == EvolutionType.SURVIVE for e in events)


class TestReporting:
    def test_counts(self):
        tracker = EvolutionTracker()
        tracker.observe(0.0, partition(a={1, 2, 3}, b={4, 5, 6}))
        tracker.observe(1.0, partition(c={1, 2, 3, 4, 5, 6}))
        counts = tracker.counts()
        assert counts["merge"] == 1
        assert counts["emerge"] == 2  # the two initial clusters

    def test_events_of_type(self):
        tracker = EvolutionTracker()
        tracker.observe(0.0, partition(a={1}))
        tracker.observe(1.0, partition())
        assert len(tracker.events_of_type(EvolutionType.DISAPPEAR)) == 1

    def test_lifespans_track_first_and_last_seen(self):
        tracker = EvolutionTracker()
        tracker.observe(0.0, partition(a={1, 2}))
        tracker.observe(5.0, partition(a={1, 2}))
        assert tracker.lifespans["a"] == (0.0, 5.0)

    def test_timeline_is_flat_and_ordered(self):
        tracker = EvolutionTracker()
        tracker.observe(0.0, partition(a={1, 2}))
        tracker.observe(1.0, partition(a={1, 2}, b={9, 10}))
        timeline = tracker.timeline()
        assert all(len(entry) == 3 for entry in timeline)
        assert [t for t, _, _ in timeline] == sorted(t for t, _, _ in timeline)

    def test_event_string_rendering(self):
        event = ClusterEvent(
            event_type=EvolutionType.MERGE, time=3.0, old_clusters=(1, 2), new_clusters=(3,)
        )
        text = str(event)
        assert "merge" in text
        assert "1,2" in text
