"""Tests for the benchmark harness (results, reporting, runner)."""

import pytest

from repro import EDMStream
from repro.baselines import DenStream
from repro.harness import (
    ExperimentResult,
    RunMetrics,
    SeriesResult,
    StreamRunner,
    format_comparison,
    format_series,
    format_table,
)


class TestSeriesResult:
    def test_append_and_stats(self):
        series = SeriesResult(name="test")
        series.append(1, 10.0)
        series.append(2, 20.0)
        assert len(series) == 2
        assert series.mean() == 15.0
        assert series.last() == 20.0

    def test_empty_series(self):
        series = SeriesResult(name="empty")
        assert series.mean() == 0.0
        assert series.last() is None

    def test_as_rows(self):
        series = SeriesResult(name="s", x_label="t", y_label="v")
        series.append(1, 2.0)
        assert series.as_rows() == [{"t": 1.0, "v": 2.0}]


class TestRunMetrics:
    def test_series_extraction_and_means(self):
        metrics = RunMetrics(algorithm="A", stream_name="S")
        metrics.checkpoints = [100, 200]
        metrics.response_time_us = [10.0, 20.0]
        metrics.throughput = [1000.0, 2000.0]
        metrics.cmm = [0.9, 0.8]
        series = metrics.series("response_time_us", "us")
        assert series.x == [100.0, 200.0]
        assert metrics.mean_response_time_us == 15.0
        assert metrics.mean_throughput == 1500.0
        assert metrics.mean_cmm == pytest.approx(0.85)

    def test_means_of_empty_metrics_are_zero(self):
        metrics = RunMetrics(algorithm="A", stream_name="S")
        assert metrics.mean_response_time_us == 0.0
        assert metrics.mean_throughput == 0.0
        assert metrics.mean_cmm == 0.0


class TestReporting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.00001}])
        assert "a" in text and "b" in text
        assert "10" in text
        assert "1e-05" in text

    def test_format_empty_table(self):
        assert "empty" in format_table([])

    def test_format_series_subsamples(self):
        series = SeriesResult(name="s")
        for i in range(100):
            series.append(i, i * 2.0)
        text = format_series(series, max_points=10)
        assert text.count("\n") < 20

    def test_format_comparison(self):
        a = SeriesResult(name="A", x=[1, 2], y=[10, 20], x_label="t")
        b = SeriesResult(name="B", x=[1, 2], y=[30, 40], x_label="t")
        text = format_comparison({"A": a, "B": b})
        assert "A" in text and "B" in text

    def test_experiment_result_to_text(self):
        result = ExperimentResult(experiment_id="x", description="demo")
        result.add_table("t", [{"k": 1}])
        result.add_series("s", SeriesResult(name="s", x=[1], y=[2]))
        text = result.to_text()
        assert "demo" in text and "table: t" in text and "series: s" in text


class TestStreamRunner:
    def test_runs_edmstream_and_collects_metrics(self, two_blob_stream):
        runner = StreamRunner(checkpoint_every=50, quality_window=50)
        model = EDMStream(radius=0.5, init_size=30, beta=0.001)
        metrics = runner.run(model, two_blob_stream)
        assert metrics.n_points == len(two_blob_stream)
        assert len(metrics.checkpoints) == len(metrics.response_time_us)
        assert len(metrics.cmm) == len(metrics.checkpoints)
        assert all(0.0 <= v <= 1.0 for v in metrics.cmm)
        assert metrics.total_seconds > 0

    def test_runs_two_phase_baseline(self, two_blob_stream):
        runner = StreamRunner(checkpoint_every=100, evaluate_quality=False)
        metrics = runner.run(DenStream(eps=0.5, mu=5.0, beta=0.3), two_blob_stream)
        assert metrics.algorithm == "DenStream"
        assert metrics.cmm == []
        assert all(v > 0 for v in metrics.response_time_us)

    def test_final_partial_checkpoint_is_recorded(self, two_blob_stream):
        runner = StreamRunner(checkpoint_every=150, evaluate_quality=False)
        metrics = runner.run(EDMStream(radius=0.5, init_size=30), two_blob_stream)
        assert metrics.checkpoints[-1] == len(two_blob_stream)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StreamRunner(checkpoint_every=0)
        with pytest.raises(ValueError):
            StreamRunner(quality_window=0)
