"""Tests for the external quality metrics and CMM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation import (
    CMM,
    adjusted_rand_index,
    contingency_table,
    f_measure,
    normalized_mutual_information,
    purity,
    rand_index,
)


class TestPurityAndFMeasure:
    def test_perfect_clustering(self):
        truth = [0, 0, 1, 1]
        assert purity(truth, [5, 5, 9, 9]) == 1.0
        assert f_measure(truth, [5, 5, 9, 9]) == 1.0

    def test_single_cluster_purity(self):
        assert purity([0, 0, 1, 1], [0, 0, 0, 0]) == 0.5

    def test_purity_ignore_noise(self):
        truth = [0, 0, 1, 1]
        # One class-1 point clustered with the class-0 points, one unassigned.
        predicted = [7, 7, 7, -1]
        assert purity(truth, predicted, ignore_noise=True) == pytest.approx(2.0 / 3.0)
        # Without ignoring noise the outlier bucket counts as its own cluster.
        assert purity(truth, predicted) == pytest.approx(0.75)

    def test_f_measure_degenerate_cases(self):
        assert f_measure([0], [0]) == 0.0  # fewer than 2 points
        assert f_measure([0, 1], [0, 1]) == 0.0  # no same-cluster pairs predicted... or truth

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            purity([0, 1], [0])

    def test_contingency_table(self):
        table = contingency_table([0, 0, 1], ["a", "a", "b"])
        assert table["a"][0] == 2
        assert table["b"][1] == 1


class TestRandAndNMI:
    def test_perfect_agreement(self):
        truth = [0, 0, 1, 1, 2, 2]
        predicted = [4, 4, 5, 5, 6, 6]
        assert rand_index(truth, predicted) == 1.0
        assert adjusted_rand_index(truth, predicted) == pytest.approx(1.0)
        assert normalized_mutual_information(truth, predicted) == pytest.approx(1.0)

    def test_ari_is_near_zero_for_random_labels(self):
        rng = np.random.default_rng(0)
        truth = list(rng.integers(0, 3, size=300))
        predicted = list(rng.integers(0, 3, size=300))
        assert abs(adjusted_rand_index(truth, predicted)) < 0.1

    def test_rand_index_known_value(self):
        # Classic example: truth {a,a,b,b}, predicted {x,y,x,y} -> RI = 1/3.
        assert rand_index([0, 0, 1, 1], [0, 1, 0, 1]) == pytest.approx(1.0 / 3.0)

    def test_single_point_edge_cases(self):
        assert rand_index([0], [1]) == 1.0
        assert adjusted_rand_index([0], [1]) == 1.0

    def test_nmi_bounds(self):
        assert 0.0 <= normalized_mutual_information([0, 0, 1, 1], [0, 1, 0, 1]) <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=40))
    def test_metrics_are_permutation_invariant_in_cluster_ids(self, truth):
        predicted = [(label + 1) % 4 for label in truth]  # relabelled copy of truth
        assert adjusted_rand_index(truth, predicted) == pytest.approx(1.0)
        assert normalized_mutual_information(truth, predicted) == pytest.approx(1.0)
        assert purity(truth, predicted) == 1.0


class TestCMM:
    @pytest.fixture
    def separated_window(self):
        rng = np.random.default_rng(3)
        a = rng.normal((0.0, 0.0), 0.3, size=(40, 2))
        b = rng.normal((5.0, 5.0), 0.3, size=(40, 2))
        points = np.vstack([a, b])
        truth = [0] * 40 + [1] * 40
        return points, truth

    def test_perfect_clustering_scores_one(self, separated_window):
        points, truth = separated_window
        predicted = [10 if t == 0 else 20 for t in truth]
        result = CMM().evaluate(points, truth, predicted)
        assert result.value == 1.0
        assert result.n_faults == 0

    def test_all_points_missed_scores_zero(self, separated_window):
        points, truth = separated_window
        predicted = [-1] * len(truth)
        result = CMM().evaluate(points, truth, predicted)
        assert result.value == pytest.approx(0.0)
        assert result.n_missed == len(truth)

    def test_misplaced_points_reduce_the_score(self, separated_window):
        points, truth = separated_window
        predicted = [10 if t == 0 else 20 for t in truth]
        # Move ten class-0 points into the cluster mapped to class 1.
        for i in range(10):
            predicted[i] = 20
        result = CMM().evaluate(points, truth, predicted)
        assert result.n_misplaced == 10
        assert 0.0 < result.value < 1.0

    def test_noise_inclusion_penalised(self, separated_window):
        points, truth = separated_window
        points = np.vstack([points, [[2.5, 2.5]]])
        truth = truth + [-1]
        predicted = [10 if t == 0 else 20 for t in truth[:-1]] + [10]
        result = CMM().evaluate(points, truth, predicted)
        assert result.n_noise_inclusion == 1
        assert result.value < 1.0

    def test_correctly_ignored_noise_is_free(self, separated_window):
        points, truth = separated_window
        points = np.vstack([points, [[50.0, 50.0]]])
        truth = truth + [-1]
        predicted = [10 if t == 0 else 20 for t in truth[:-1]] + [-1]
        assert CMM().evaluate(points, truth, predicted).value == 1.0

    def test_faults_on_recent_objects_cost_more_than_on_stale_objects(self, separated_window):
        points, truth = separated_window
        n = len(truth)
        # Case A: the missed object is old (its freshness weight is tiny).
        predicted_old = [10 if t == 0 else 20 for t in truth]
        predicted_old[0] = -1
        fault_on_old = CMM(decay_lambda=1000.0).evaluate(
            points, truth, predicted_old, timestamps=[0.0] + [1.0] * (n - 1), now=1.0
        )
        # Case B: the missed object is the most recent one (full weight).
        predicted_recent = [10 if t == 0 else 20 for t in truth]
        predicted_recent[-1] = -1
        fault_on_recent = CMM(decay_lambda=1000.0).evaluate(
            points, truth, predicted_recent, timestamps=[0.0] * (n - 1) + [1.0], now=1.0
        )
        assert fault_on_recent.value <= fault_on_old.value
        assert fault_on_old.value > 0.9

    def test_empty_window_scores_one(self):
        assert CMM().evaluate([], [], []).value == 1.0

    def test_length_mismatch_rejected(self, separated_window):
        points, truth = separated_window
        with pytest.raises(ValueError):
            CMM().evaluate(points, truth, [0])

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            CMM(k=0)

    def test_call_shorthand_returns_float(self, separated_window):
        points, truth = separated_window
        predicted = [10 if t == 0 else 20 for t in truth]
        assert CMM()(points, truth, predicted) == 1.0

    def test_value_always_in_unit_interval(self, separated_window):
        points, truth = separated_window
        rng = np.random.default_rng(0)
        predicted = list(rng.choice([10, 20, -1], size=len(truth)))
        value = CMM().evaluate(points, truth, predicted).value
        assert 0.0 <= value <= 1.0
