"""Tests for the KD-tree nearest-seed index."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index import BruteForceIndex, KDTreeIndex, SeedIndex


def brute_nearest(points, query):
    """Reference nearest neighbour by exhaustive scan."""
    best_key, best_distance = None, math.inf
    for key, point in points.items():
        distance = math.dist(point, query)
        if distance < best_distance:
            best_key, best_distance = key, distance
    return best_key, best_distance


class TestBasics:
    def test_is_a_seed_index(self):
        assert isinstance(KDTreeIndex(), SeedIndex)

    def test_rebuild_factor_validation(self):
        with pytest.raises(ValueError):
            KDTreeIndex(rebuild_factor=0.0)

    def test_empty_queries(self):
        index = KDTreeIndex()
        assert index.nearest((0.0, 0.0)) is None
        assert index.within((0.0, 0.0), 1.0) == []
        assert len(index) == 0

    def test_insert_and_nearest(self):
        index = KDTreeIndex()
        index.insert("a", (0.0, 0.0))
        index.insert("b", (5.0, 0.0))
        key, distance = index.nearest((1.0, 0.0))
        assert key == "a"
        assert distance == pytest.approx(1.0)
        assert index.nearest_key((4.9, 0.0)) == "b"

    def test_duplicate_key_rejected(self):
        index = KDTreeIndex()
        index.insert("a", (0.0, 0.0))
        with pytest.raises(KeyError):
            index.insert("a", (1.0, 1.0))

    def test_dimension_mismatch_rejected(self):
        index = KDTreeIndex()
        index.insert("a", (0.0, 0.0))
        with pytest.raises(ValueError):
            index.insert("b", (0.0, 0.0, 0.0))

    def test_remove_unknown_key(self):
        index = KDTreeIndex()
        with pytest.raises(KeyError):
            index.remove("missing")

    def test_contains_len_keys_location(self):
        index = KDTreeIndex()
        index.insert("a", (1.0, 2.0))
        index.insert("b", (3.0, 4.0))
        assert "a" in index and "z" not in index
        assert len(index) == 2
        assert set(index.keys()) == {"a", "b"}
        assert index.location("a") == (1.0, 2.0)


class TestRemoval:
    def test_removed_seed_is_not_returned(self):
        index = KDTreeIndex()
        index.insert("a", (0.0, 0.0))
        index.insert("b", (1.0, 0.0))
        index.remove("a")
        assert index.nearest((0.0, 0.0))[0] == "b"
        assert [k for k, _ in index.within((0.0, 0.0), 10.0)] == ["b"]

    def test_removing_everything_empties_the_tree(self):
        index = KDTreeIndex()
        for i in range(10):
            index.insert(i, (float(i), 0.0))
        for i in range(10):
            index.remove(i)
        assert len(index) == 0
        assert index.nearest((0.0, 0.0)) is None

    def test_rebuild_triggered_by_heavy_deletion(self):
        index = KDTreeIndex(rebuild_factor=0.5)
        for i in range(40):
            index.insert(i, (float(i), float(i % 5)))
        for i in range(0, 40, 2):
            index.remove(i)
        assert index.n_rebuilds >= 1
        # Remaining seeds still answer correctly.
        key, _ = index.nearest((39.0, 4.0))
        assert key == 39

    def test_reinsert_after_remove(self):
        index = KDTreeIndex()
        index.insert("a", (0.0, 0.0))
        index.remove("a")
        index.insert("a", (2.0, 2.0))
        assert index.nearest((2.0, 2.0)) == ("a", pytest.approx(0.0))


class TestQueriesAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
            min_size=1,
            max_size=60,
            unique=True,
        ),
        st.tuples(st.floats(-60, 60), st.floats(-60, 60)),
    )
    def test_nearest_matches_brute_force(self, points, query):
        index = KDTreeIndex()
        reference = {}
        for i, point in enumerate(points):
            index.insert(i, point)
            reference[i] = point
        expected_key, expected_distance = brute_nearest(reference, query)
        key, distance = index.nearest(query)
        assert distance == pytest.approx(expected_distance)
        assert math.dist(reference[key], query) == pytest.approx(expected_distance)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-20, 20), st.floats(-20, 20)),
            min_size=1,
            max_size=60,
            unique=True,
        ),
        st.floats(0.5, 15.0),
    )
    def test_within_matches_brute_force(self, points, radius):
        query = (0.0, 0.0)
        index = KDTreeIndex()
        for i, point in enumerate(points):
            index.insert(i, point)
        expected = {
            i for i, point in enumerate(points) if math.dist(point, query) <= radius
        }
        got = {key for key, _ in index.within(query, radius)}
        assert got == expected

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10_000))
    def test_agreement_with_brute_force_index_under_churn(self, n, seed):
        rng = np.random.default_rng(seed)
        kdtree = KDTreeIndex(rebuild_factor=0.5)
        brute = BruteForceIndex()
        points = rng.uniform(-10, 10, size=(n, 3))
        for i, point in enumerate(points):
            kdtree.insert(i, tuple(point))
            brute.insert(i, tuple(point))
        # Remove a random half.
        for i in rng.choice(n, size=n // 2, replace=False):
            kdtree.remove(int(i))
            brute.remove(int(i))
        query = tuple(rng.uniform(-10, 10, size=3))
        expected = brute.nearest(query)
        got = kdtree.nearest(query)
        if expected is None:
            assert got is None
        else:
            assert got[1] == pytest.approx(expected[1])


class TestStructure:
    def test_height_is_logarithmic_after_rebuild(self):
        index = KDTreeIndex(rebuild_factor=0.1)
        # Insert in sorted order (worst case: a path), then force a rebuild.
        for i in range(127):
            index.insert(i, (float(i), 0.0))
        degenerate_height = index.height
        for i in range(100, 127):
            index.remove(i)
        assert index.n_rebuilds >= 1
        assert index.height < degenerate_height
        assert index.height <= 2 * math.ceil(math.log2(len(index) + 1))
