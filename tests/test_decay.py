"""Tests for the exponential decay model (Section 3.1, Equations 3-8)."""


import pytest
from hypothesis import given, strategies as st

from repro.core.decay import DecayModel, equivalent_lambda


class TestDecayModelConstruction:
    def test_default_parameters_match_paper(self):
        model = DecayModel()
        assert model.a == 0.998
        assert model.lam == 1.0

    def test_rate_is_a_to_the_lambda(self):
        model = DecayModel(a=0.5, lam=2.0)
        assert model.rate == pytest.approx(0.25)

    @pytest.mark.parametrize("a", [0.0, 1.0, 1.5, -0.1])
    def test_invalid_base_rejected(self, a):
        with pytest.raises(ValueError):
            DecayModel(a=a)

    @pytest.mark.parametrize("lam", [0.0, -1.0])
    def test_invalid_lambda_rejected(self, lam):
        with pytest.raises(ValueError):
            DecayModel(lam=lam)


class TestFreshness:
    def test_fresh_point_has_freshness_one(self):
        model = DecayModel()
        assert model.freshness(5.0, 5.0) == pytest.approx(1.0)

    def test_freshness_decreases_over_time(self):
        model = DecayModel()
        assert model.freshness(0.0, 10.0) < model.freshness(0.0, 1.0)

    def test_freshness_formula(self):
        model = DecayModel(a=0.9, lam=2.0)
        assert model.freshness(0.0, 3.0) == pytest.approx(0.9 ** 6)

    def test_freshness_rejects_time_before_arrival(self):
        model = DecayModel()
        with pytest.raises(ValueError):
            model.freshness(10.0, 5.0)

    @given(st.floats(min_value=0.0, max_value=500.0))
    def test_freshness_always_in_unit_interval(self, elapsed):
        model = DecayModel()
        value = model.freshness(0.0, elapsed)
        assert 0.0 < value <= 1.0


class TestDensityUpdates:
    def test_absorb_matches_equation_8(self):
        model = DecayModel(a=0.998, lam=1.0)
        # rho_{t+1} = a^(lambda*dt) * rho_t + 1
        assert model.absorb(10.0, 2.0) == pytest.approx(0.998 ** 2 * 10.0 + 1.0)

    def test_absorb_with_zero_elapsed_adds_one(self):
        model = DecayModel()
        assert model.absorb(3.0, 0.0) == pytest.approx(4.0)

    def test_decay_density_is_multiplicative(self):
        model = DecayModel(a=0.5, lam=1.0)
        assert model.decay_density(8.0, 3.0) == pytest.approx(1.0)

    def test_decay_rejects_negative_elapsed(self):
        model = DecayModel()
        with pytest.raises(ValueError):
            model.decay_density(1.0, -1.0)

    @given(
        st.floats(min_value=0.0, max_value=1e6),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_decay_composes(self, density, t1, t2):
        model = DecayModel()
        once = model.decay_density(density, t1 + t2)
        twice = model.decay_density(model.decay_density(density, t1), t2)
        assert once == pytest.approx(twice, rel=1e-9, abs=1e-9)


class TestThresholds:
    def test_total_weight_matches_geometric_series(self):
        model = DecayModel(a=0.998, lam=1.0)
        assert model.total_weight(1000.0) == pytest.approx(1000.0 / (1.0 - 0.998))

    def test_active_threshold_is_beta_times_total_weight(self):
        model = DecayModel(a=0.998, lam=1.0)
        threshold = model.active_threshold(0.0021, 1000.0)
        assert threshold == pytest.approx(0.0021 * model.total_weight(1000.0))

    def test_active_threshold_paper_value(self):
        # beta=0.0021, v=1000, a^lambda=0.998 -> threshold = 1050
        model = DecayModel(a=0.998, lam=1.0)
        assert model.active_threshold(0.0021, 1000.0) == pytest.approx(1050.0)

    def test_beta_lower_bound(self):
        model = DecayModel(a=0.998, lam=1.0)
        assert model.beta_lower_bound(1000.0) == pytest.approx((1.0 - 0.998) / 1000.0)

    def test_active_threshold_rejects_bad_beta(self):
        model = DecayModel()
        with pytest.raises(ValueError):
            model.active_threshold(1.5, 1000.0)

    def test_total_weight_rejects_bad_rate(self):
        model = DecayModel()
        with pytest.raises(ValueError):
            model.total_weight(0.0)

    def test_safe_deletion_interval_lets_threshold_decay_below_one(self):
        # After delta_T_del a cell at the active threshold has density < 1.
        model = DecayModel(a=0.998, lam=1.0)
        beta, rate = 0.0021, 1000.0
        interval = model.safe_deletion_interval(beta, rate)
        threshold = model.active_threshold(beta, rate)
        assert model.decay_density(threshold, interval) <= 1.0 + 1e-6

    def test_safe_deletion_interval_positive(self):
        model = DecayModel()
        assert model.safe_deletion_interval(0.0021, 1000.0) > 0

    def test_half_life(self):
        model = DecayModel(a=0.5, lam=1.0)
        assert model.half_life() == pytest.approx(1.0)


class TestEquivalentLambda:
    def test_denstream_alignment(self):
        # DenStream fixes a = 2; the paper uses lambda = 0.0028 to match 0.998.
        lam = equivalent_lambda(2.0, 0.998)
        assert 2.0 ** lam == pytest.approx(0.998)
        assert lam == pytest.approx(-0.00289, abs=1e-4)

    def test_mrstream_alignment(self):
        lam = equivalent_lambda(1.002, 0.998)
        assert 1.002 ** lam == pytest.approx(0.998)

    def test_rejects_invalid_targets(self):
        with pytest.raises(ValueError):
            equivalent_lambda(1.0, 0.998)
        with pytest.raises(ValueError):
            equivalent_lambda(2.0, 1.5)
