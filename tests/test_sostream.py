"""Tests for the SOStream baseline."""

import numpy as np
import pytest

from repro.baselines.sostream import SOStream


def feed(model, points, rate=1000.0):
    """Feed an array of points at a fixed arrival rate."""
    for i, point in enumerate(points):
        model.learn_one(tuple(point), timestamp=i / rate)


class TestParameterValidation:
    def test_alpha_range(self):
        with pytest.raises(ValueError):
            SOStream(alpha=0.0)
        with pytest.raises(ValueError):
            SOStream(alpha=1.5)

    def test_min_pts(self):
        with pytest.raises(ValueError):
            SOStream(min_pts=0)

    def test_merge_threshold_non_negative(self):
        with pytest.raises(ValueError):
            SOStream(merge_threshold=-1.0)

    def test_fade_gap_positive(self):
        with pytest.raises(ValueError):
            SOStream(fade_gap=0.0)

    def test_decay_factor_validation(self):
        with pytest.raises(ValueError):
            SOStream(decay_a=1.0, decay_lambda=0.0)


class TestOnlineBehaviour:
    def test_first_point_creates_micro_cluster(self):
        model = SOStream()
        model.learn_one((0.0, 0.0), timestamp=0.0)
        assert model.n_micro_clusters == 1

    def test_two_separated_blobs_form_two_clusters(self):
        rng = np.random.default_rng(1)
        a = rng.normal((0.0, 0.0), 0.05, size=(200, 2))
        b = rng.normal((5.0, 5.0), 0.05, size=(200, 2))
        points = np.vstack([a, b])
        order = rng.permutation(len(points))
        model = SOStream(alpha=0.3, min_pts=2, merge_threshold=0.3)
        feed(model, points[order])
        assert model.predict_one((0.0, 0.0)) != model.predict_one((5.0, 5.0))
        assert model.predict_one((0.0, 0.0)) != -1

    def test_merge_counter_increments_for_overlapping_clusters(self):
        rng = np.random.default_rng(2)
        points = rng.normal((0.0, 0.0), 0.2, size=(400, 2))
        model = SOStream(alpha=0.5, min_pts=2, merge_threshold=0.4)
        feed(model, points)
        assert model.n_merges > 0
        assert model.n_micro_clusters < 50

    def test_far_point_predicted_as_outlier(self):
        rng = np.random.default_rng(3)
        points = rng.normal((0.0, 0.0), 0.1, size=(100, 2))
        model = SOStream(merge_threshold=0.2)
        feed(model, points)
        assert model.predict_one((100.0, 100.0)) == -1

    def test_empty_model_predicts_outlier(self):
        model = SOStream()
        assert model.predict_one((0.0, 0.0)) == -1

    def test_fading_prunes_abandoned_clusters(self):
        model = SOStream(weight_threshold=0.5, fade_gap=1.0)
        # A short burst at the origin, then a long quiet period followed by
        # activity elsewhere: the stale micro-cluster should be pruned.
        for i in range(5):
            model.learn_one((0.0, 0.0), timestamp=i * 0.001)
        for i in range(50):
            model.learn_one((30.0, 30.0), timestamp=2000.0 + i * 0.001)
        centers = [tuple(model._clusters[mid].centroid) for mid in model._clusters]
        assert all(np.linalg.norm(np.asarray(c) - (0.0, 0.0)) > 1.0 for c in centers)

    def test_self_organising_step_moves_neighbours(self):
        model = SOStream(alpha=0.5, min_pts=1, merge_threshold=0.01)
        model.learn_one((0.0, 0.0), timestamp=0.0)
        model.learn_one((1.0, 0.0), timestamp=0.001)
        # Repeatedly hit near the first cluster; the second should be dragged
        # towards it because it lies inside the winner's neighbourhood radius.
        start = None
        for i in range(30):
            model.learn_one((0.05, 0.0), timestamp=0.002 + i * 0.001)
            if start is None:
                remaining = [c for c in model._clusters.values()]
                start = max(float(c.centroid[0]) for c in remaining)
        end = max(float(c.centroid[0]) for c in model._clusters.values())
        assert end <= start

    def test_timestamps_default_to_unit_steps(self):
        model = SOStream()
        model.learn_one((0.0, 0.0))
        model.learn_one((0.1, 0.0))
        assert model._now == pytest.approx(2.0)


class TestClusteringQueries:
    def test_request_clustering_assigns_compact_labels(self):
        rng = np.random.default_rng(11)
        blobs = [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]
        points = np.vstack(
            [rng.normal(center, 0.05, size=(60, 2)) for center in blobs]
        )
        order = rng.permutation(len(points))
        model = SOStream(merge_threshold=0.3, min_pts=3)
        feed(model, points[order])
        model.request_clustering()
        labels = {model.predict_one(center) for center in blobs}
        # Each blob maps to a distinct, compact label.
        assert len(labels) == 3
        assert all(0 <= label < model.n_micro_clusters for label in labels)

    def test_n_clusters_matches_micro_clusters(self):
        model = SOStream(merge_threshold=0.01)
        model.learn_one((0.0, 0.0), timestamp=0.0)
        model.learn_one((10.0, 0.0), timestamp=0.001)
        assert model.n_clusters == model.n_micro_clusters == 2
