"""Tests for the outlier reservoir (Sections 4.1, 4.3, 4.4, Theorem 3)."""

import pytest

from repro.core.cell import ClusterCell
from repro.core.decay import DecayModel
from repro.core.reservoir import OutlierReservoir


@pytest.fixture
def reservoir() -> OutlierReservoir:
    return OutlierReservoir(
        decay=DecayModel(a=0.998, lam=1.0), beta=0.0021, stream_rate=1000.0
    )


class TestThresholds:
    def test_active_threshold_matches_paper(self, reservoir):
        assert reservoir.active_threshold == pytest.approx(1050.0)

    def test_deletion_interval_positive(self, reservoir):
        assert reservoir.deletion_interval > 0

    def test_deletion_interval_override(self):
        reservoir = OutlierReservoir(
            decay=DecayModel(), beta=0.0021, stream_rate=1000.0, deletion_interval=5.0
        )
        assert reservoir.deletion_interval == 5.0

    def test_invalid_override_rejected(self):
        with pytest.raises(ValueError):
            OutlierReservoir(
                decay=DecayModel(), beta=0.0021, stream_rate=1000.0, deletion_interval=0.0
            )

    def test_size_upper_bound_formula(self, reservoir):
        expected = reservoir.deletion_interval * 1000.0 + 1.0 / 0.0021
        assert reservoir.size_upper_bound == pytest.approx(expected)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            OutlierReservoir(decay=DecayModel(), beta=1.5, stream_rate=1000.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            OutlierReservoir(decay=DecayModel(), beta=0.5, stream_rate=0.0)


class TestMembership:
    def test_add_and_get(self, reservoir):
        cell = ClusterCell(seed=(0.0,), density=3.0)
        reservoir.add(cell)
        assert cell.cell_id in reservoir
        assert len(reservoir) == 1
        assert reservoir.get(cell.cell_id) is cell

    def test_add_clears_dependency_information(self, reservoir):
        cell = ClusterCell(seed=(0.0,), density=3.0, dependency=42, delta=1.0)
        reservoir.add(cell)
        assert cell.dependency is None
        assert cell.delta == float("inf")

    def test_duplicate_add_rejected(self, reservoir):
        cell = ClusterCell(seed=(0.0,))
        reservoir.add(cell)
        with pytest.raises(KeyError):
            reservoir.add(cell)

    def test_pop_removes(self, reservoir):
        cell = ClusterCell(seed=(0.0,))
        reservoir.add(cell)
        popped = reservoir.pop(cell.cell_id)
        assert popped is cell
        assert len(reservoir) == 0

    def test_pop_unknown_raises(self, reservoir):
        with pytest.raises(KeyError):
            reservoir.pop(9999)

    def test_iteration(self, reservoir):
        cells = [ClusterCell(seed=(float(i),)) for i in range(3)]
        for cell in cells:
            reservoir.add(cell)
        assert set(c.cell_id for c in reservoir) == {c.cell_id for c in cells}


class TestActivationAndPruning:
    def test_is_active_threshold(self, reservoir):
        dense = ClusterCell(seed=(0.0,), density=2000.0, last_update=0.0)
        sparse = ClusterCell(seed=(1.0,), density=10.0, last_update=0.0)
        assert reservoir.is_active(dense, now=0.0)
        assert not reservoir.is_active(sparse, now=0.0)

    def test_promotable_lists_only_dense_cells(self, reservoir):
        dense = ClusterCell(seed=(0.0,), density=2000.0, last_update=0.0)
        sparse = ClusterCell(seed=(1.0,), density=10.0, last_update=0.0)
        reservoir.add(dense)
        reservoir.add(sparse)
        promotable = reservoir.promotable(now=0.0)
        assert [c.cell_id for c in promotable] == [dense.cell_id]

    def test_prune_outdated_removes_idle_cells(self):
        reservoir = OutlierReservoir(
            decay=DecayModel(), beta=0.0021, stream_rate=1000.0, deletion_interval=10.0
        )
        stale = ClusterCell(seed=(0.0,), last_absorb=0.0)
        fresh = ClusterCell(seed=(1.0,), last_absorb=95.0)
        reservoir.add(stale)
        reservoir.add(fresh)
        removed = reservoir.prune_outdated(now=100.0)
        assert [c.cell_id for c in removed] == [stale.cell_id]
        assert fresh.cell_id in reservoir
        assert reservoir.total_deleted == 1

    def test_prune_disabled(self):
        reservoir = OutlierReservoir(
            decay=DecayModel(),
            beta=0.0021,
            stream_rate=1000.0,
            delete_outdated=False,
            deletion_interval=1.0,
        )
        reservoir.add(ClusterCell(seed=(0.0,), last_absorb=0.0))
        assert reservoir.prune_outdated(now=100.0) == []
        assert len(reservoir) == 1
