"""Tests for the workload generators (SDS, HDS, surrogates, news)."""

import numpy as np
import pytest

from repro.distance import TokenSetPoint, jaccard_distance
from repro.streams import (
    HDSGenerator,
    NewsStreamGenerator,
    SDSGenerator,
    covertype_surrogate,
    kddcup99_surrogate,
    make_hds_stream,
    make_news_stream,
    make_sds_stream,
    pamap2_surrogate,
)
from repro.streams.real import dataset_catalog


class TestSDS:
    def test_size_rate_and_dimension(self):
        stream = SDSGenerator(n_points=2000, rate=1000.0, seed=1).generate()
        assert len(stream) == 2000
        assert stream.dimension == 2
        assert stream.duration == pytest.approx(1.999)

    def test_deterministic_given_seed(self):
        a = SDSGenerator(n_points=500, seed=9).generate()
        b = SDSGenerator(n_points=500, seed=9).generate()
        assert [p.values for p in a] == [p.values for p in b]

    def test_two_clusters_at_the_start(self):
        stream = SDSGenerator(n_points=4000, seed=1).generate()
        early = [p for p in stream if p.timestamp < 1.0 and p.label in (0, 1)]
        xs_left = [p.values[0] for p in early if p.label == 0]
        xs_right = [p.values[0] for p in early if p.label == 1]
        assert np.mean(xs_left) < np.mean(xs_right)

    def test_emergent_cluster_appears_only_after_12s(self):
        stream = SDSGenerator(n_points=20000, seed=1).generate()
        label2_times = [p.timestamp for p in stream if p.label == 2]
        assert min(label2_times) >= 12.0

    def test_merged_cluster_gone_after_14s(self):
        stream = SDSGenerator(n_points=20000, seed=1).generate()
        late_old = [p for p in stream if p.timestamp > 14.5 and p.label in (0, 1)]
        assert late_old == []

    def test_snapshot_times_match_figure6(self):
        assert SDSGenerator().snapshot_times() == [1.0, 4.0, 8.0, 12.0, 14.0, 20.0]

    def test_convenience_constructor(self):
        assert len(make_sds_stream(n_points=100)) == 100


class TestHDS:
    @pytest.mark.parametrize("dimension", [10, 30])
    def test_dimension_and_cluster_count(self, dimension):
        stream = HDSGenerator(dimension=dimension, n_points=1000, seed=2).generate()
        assert stream.dimension == dimension
        labels = {p.label for p in stream if p.label is not None and p.label >= 0}
        assert len(labels) <= 20
        assert len(labels) >= 10

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            HDSGenerator(dimension=0).generate()

    def test_paper_radius_table(self):
        assert HDSGenerator.paper_radius(10) == 60.0
        assert HDSGenerator.paper_radius(1000) == 70.0
        assert 60.0 <= HDSGenerator.paper_radius(50) <= 70.0

    def test_convenience_constructor(self):
        stream = make_hds_stream(dimension=10, n_points=200)
        assert len(stream) == 200


class TestRealSurrogates:
    def test_kddcup_shape_and_imbalance(self):
        stream = kddcup99_surrogate(n_points=3000, seed=1)
        assert stream.dimension == 34
        labels = [p.label for p in stream if p.label >= 0]
        counts = np.bincount(labels)
        # Heavy imbalance: the most common class dominates.
        assert counts.max() > 5 * max(1, counts[counts > 0].min())

    def test_kddcup_contains_noise(self):
        stream = kddcup99_surrogate(n_points=3000, seed=1)
        assert any(p.label == -1 for p in stream)

    def test_covertype_shape(self):
        stream = covertype_surrogate(n_points=2000, seed=2)
        assert stream.dimension == 54
        labels = {p.label for p in stream if p.label >= 0}
        assert labels <= set(range(7))

    def test_covertype_dominant_classes_overlap(self):
        stream = covertype_surrogate(n_points=4000, seed=2)
        matrix = stream.values_matrix()
        labels = np.asarray([p.label for p in stream])
        center0 = matrix[labels == 0].mean(axis=0)
        center1 = matrix[labels == 1].mean(axis=0)
        center2 = matrix[labels == 2].mean(axis=0)
        assert np.linalg.norm(center0 - center1) < np.linalg.norm(center0 - center2)

    def test_pamap2_sessions_are_contiguous(self):
        stream = pamap2_surrogate(n_points=5000, seed=3)
        labels = [p.label for p in stream]
        changes = sum(1 for a, b in zip(labels, labels[1:]) if a != b)
        assert changes < 20  # long sessions, few switches

    def test_pamap2_dimension(self):
        assert pamap2_surrogate(n_points=500).dimension == 51

    def test_dataset_catalog_lists_all_table2_rows(self):
        names = {row["name"] for row in dataset_catalog()}
        assert {"SDS", "NADS", "KDDCUP99", "CoverType", "PAMAP2"} <= names


class TestNewsStream:
    def test_points_are_token_sets(self):
        stream = make_news_stream(n_points=200, seed=4)
        assert isinstance(stream[0].values, TokenSetPoint)
        assert len(stream) == 200

    def test_topics_have_distinct_vocabulary(self):
        generator = NewsStreamGenerator(n_points=500, seed=4)
        stream = generator.generate()
        chromecast = [p for p in stream if p.label == 0]
        apple = [p for p in stream if p.label == 3]
        if chromecast and apple:
            distance = jaccard_distance(chromecast[0].values, apple[0].values)
            assert distance > 0.5

    def test_smartwatch_topic_only_after_day_12(self):
        generator = NewsStreamGenerator(n_points=3000, seed=4)
        stream = generator.generate()
        days = [generator.day_of(p) for p in stream if p.label == 2]
        assert min(days) >= 12.0

    def test_expected_events_table(self):
        events = NewsStreamGenerator().expected_events()
        assert {e["type"] for e in events} == {"merge", "split"}
        assert len(events) == 4

    def test_deterministic_given_seed(self):
        a = make_news_stream(n_points=300, seed=6)
        b = make_news_stream(n_points=300, seed=6)
        assert [p.values.tokens for p in a] == [p.values.tokens for p in b]
