"""Smoke tests for the experiment drivers (tiny workloads).

Each driver is exercised with a workload small enough to run in a few
seconds; the full-size runs live in ``benchmarks/``.  The assertions check
the *structure* of each result (the right tables and series exist) and the
headline *shape* properties that must hold even at small scale.
"""

import pytest

from repro.harness import experiments, scenarios


class TestFactories:
    def test_make_real_stream_names(self):
        for name in ("KDDCUP99", "CoverType", "PAMAP2"):
            stream = experiments.make_real_stream(name, n_points=300)
            assert len(stream) == 300
        with pytest.raises(KeyError):
            experiments.make_real_stream("MNIST", n_points=10)

    def test_choose_radius_is_positive_and_monotone_in_percentile(self):
        stream = experiments.make_real_stream("CoverType", n_points=500)
        small = experiments.choose_radius(stream, percentile=0.5)
        large = experiments.choose_radius(stream, percentile=2.0)
        assert 0 < small <= large

    def test_default_algorithms_builds_requested_set(self):
        stream = experiments.make_real_stream("PAMAP2", n_points=400)
        algorithms = experiments.default_algorithms(
            stream, include=("EDMStream", "DenStream", "CluStream", "Periodic-DP")
        )
        assert set(algorithms) == {"EDMStream", "DenStream", "CluStream", "Periodic-DP"}
        with pytest.raises(KeyError):
            experiments.default_algorithms(stream, include=("NoSuchAlgo",))


class TestEfficiencyExperiments:
    def test_table2_lists_paper_and_surrogates(self):
        result = experiments.experiment_table2(surrogate_points=300)
        assert {row["name"] for row in result.tables["paper"]} >= {"SDS", "KDDCUP99"}
        assert len(result.tables["surrogates"]) == 5

    def test_response_time_experiment_structure(self):
        result = experiments.experiment_response_time(
            datasets=("PAMAP2",),
            algorithms=("EDMStream", "DenStream"),
            n_points=1200,
            checkpoint_every=400,
        )
        assert result.experiment_id == "fig9"
        assert {row["algorithm"] for row in result.tables["summary"]} == {"EDMStream", "DenStream"}
        assert "PAMAP2/EDMStream" in result.series

    def test_throughput_experiment_structure(self):
        result = experiments.experiment_throughput(
            datasets=("PAMAP2",),
            algorithms=("EDMStream", "D-Stream"),
            n_points=1200,
            checkpoint_every=400,
        )
        assert result.experiment_id == "fig10"
        assert all(row["mean_throughput"] > 0 for row in result.tables["summary"])

    def test_filtering_experiment_shows_filters_cut_work(self):
        result = experiments.experiment_filtering(
            datasets=("PAMAP2",), n_points=1500, checkpoint_every=500
        )
        rows = {row["variant"]: row for row in result.tables["summary"]}
        assert set(rows) == {"wf", "df", "df+tif"}
        assert rows["df"]["distance_computations"] <= rows["wf"]["distance_computations"]
        assert rows["df+tif"]["distance_computations"] <= rows["df"]["distance_computations"]

    def test_dimensions_experiment_structure(self):
        result = experiments.experiment_dimensions(
            dimensions=(10, 30),
            algorithms=("EDMStream",),
            n_points=800,
            checkpoint_every=400,
        )
        series = result.series["EDMStream"]
        assert series.x == [10.0, 30.0]
        assert all(y > 0 for y in series.y)

    def test_quality_experiment_structure(self):
        result = experiments.experiment_quality(
            datasets=("PAMAP2",),
            algorithms=("EDMStream",),
            n_points=1500,
            checkpoint_every=500,
            quality_window=200,
        )
        row = result.tables["summary"][0]
        assert 0.0 <= row["mean_cmm"] <= 1.0

    def test_stream_rate_experiment_structure(self):
        result = experiments.experiment_stream_rate(
            rates=(1000.0, 5000.0), dataset="PAMAP2", n_points=1500,
            checkpoint_every=500, quality_window=200,
        )
        assert len(result.tables["summary"]) == 2

    def test_reservoir_experiment_respects_upper_bound(self):
        result = experiments.experiment_reservoir(
            rates=(1000.0,), datasets=("PAMAP2",), n_points=2000
        )
        row = result.tables["summary"][0]
        assert row["within_bound"]

    def test_radius_experiment_structure(self):
        result = experiments.experiment_radius(
            percentiles=(1.0, 2.0), dataset="PAMAP2", n_points=1500,
            checkpoint_every=500, quality_window=200,
        )
        assert len(result.tables["summary"]) == 2
        radii = [row["radius"] for row in result.tables["summary"]]
        assert radii[0] <= radii[1]

    def test_dptree_ablation_structure(self):
        result = experiments.experiment_dptree_ablation(
            dataset="PAMAP2", n_points=1500, checkpoint_every=500
        )
        names = {row["algorithm"] for row in result.tables["summary"]}
        assert names == {"EDMStream", "Periodic-DP"}


class TestScenarioExperiments:
    def test_sds_evolution_detects_merge(self):
        result = scenarios.experiment_evolution_sds(n_points=10000)
        counts = result.tables["event_counts"][0]
        assert counts["merge"] >= 1
        series = result.series["clusters_over_time"]
        assert max(series.y) >= 2

    def test_news_evolution_structure(self):
        result = scenarios.experiment_news_evolution(n_points=1500)
        assert "observed_events" in result.tables
        assert len(result.tables["expected_events"]) == 4

    def test_adaptive_tau_dynamic_tracks_more_clusters_than_static(self):
        result = scenarios.experiment_adaptive_tau(n_points=8000, static_tau=5.0,
                                                   seconds_reported=8)
        rows = result.tables["table4"]
        dynamic_total = sum(row["dynamic tau"] for row in rows)
        static_total = sum(row["static tau"] for row in rows)
        assert dynamic_total >= static_total
