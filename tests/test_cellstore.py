"""Tests for the vectorised cell store cache."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cell import ClusterCell
from repro.core.cellstore import CellStore
from repro.core.decay import DecayModel
from repro.distance import jaccard_distance


def make_cell(seed, density=1.0):
    return ClusterCell(seed=seed, density=density)


class TestMembership:
    def test_add_and_lookup(self):
        store = CellStore()
        cell = make_cell((1.0, 2.0))
        store.add(cell)
        assert len(store) == 1
        assert cell.cell_id in store
        assert store.get(cell.cell_id) is cell
        assert store.ids() == [cell.cell_id]

    def test_duplicate_add_rejected(self):
        store = CellStore()
        cell = make_cell((1.0, 2.0))
        store.add(cell)
        with pytest.raises(KeyError):
            store.add(cell)

    def test_dimension_mismatch_rejected(self):
        store = CellStore()
        store.add(make_cell((1.0, 2.0)))
        with pytest.raises(ValueError):
            store.add(make_cell((1.0, 2.0, 3.0)))

    def test_remove_swaps_last_into_place(self):
        store = CellStore()
        cells = [make_cell((float(i), 0.0)) for i in range(5)]
        for cell in cells:
            store.add(cell)
        store.remove(cells[1].cell_id)
        assert len(store) == 4
        assert cells[1].cell_id not in store
        store.validate()

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            CellStore().remove(77)

    def test_growth_beyond_initial_capacity(self):
        store = CellStore()
        cells = [make_cell((float(i),)) for i in range(200)]
        for cell in cells:
            store.add(cell)
        assert len(store) == 200
        store.validate()

    def test_non_numeric_store_requires_metric(self):
        with pytest.raises(ValueError):
            CellStore(numeric=False)


class TestQueries:
    def test_distances_to(self):
        store = CellStore()
        store.add(make_cell((0.0, 0.0)))
        store.add(make_cell((3.0, 4.0)))
        distances = store.distances_to((0.0, 0.0))
        assert distances == pytest.approx([0.0, 5.0])

    def test_nearest(self):
        store = CellStore()
        a = make_cell((0.0, 0.0))
        b = make_cell((3.0, 4.0))
        store.add(a)
        store.add(b)
        key, distance = store.nearest((2.9, 4.1))
        assert key == b.cell_id
        assert distance == pytest.approx(math.hypot(0.1, 0.1))

    def test_nearest_empty_store(self):
        assert CellStore().nearest((0.0,)) is None

    def test_distances_to_subset(self):
        store = CellStore()
        cells = [make_cell((float(i), 0.0)) for i in range(4)]
        for cell in cells:
            store.add(cell)
        subset = store.distances_to_subset((0.0, 0.0), np.asarray([1, 3]))
        assert subset == pytest.approx([1.0, 3.0])

    def test_densities_at_applies_lazy_decay(self):
        decay = DecayModel(a=0.5, lam=1.0)
        store = CellStore()
        cell = make_cell((0.0,), density=8.0)
        cell.last_update = 0.0
        store.add(cell)
        densities = store.densities_at(2.0, decay)
        assert densities == pytest.approx([2.0])

    def test_update_density_and_delta_keep_cache_coherent(self):
        decay = DecayModel()
        store = CellStore()
        cell = make_cell((0.0,))
        store.add(cell)
        cell.absorb(1.0, decay)
        store.update_density(cell.cell_id, cell.density, cell.last_update)
        cell.delta = 0.7
        store.update_delta(cell.cell_id, 0.7)
        store.validate()

    def test_sync_mirrors_all_fields(self):
        store = CellStore()
        cell = make_cell((0.0,))
        store.add(cell)
        cell.density = 9.0
        cell.last_update = 4.0
        cell.delta = 1.25
        store.sync(cell)
        store.validate()

    def test_jaccard_store_falls_back_to_metric_loop(self):
        store = CellStore(numeric=False, metric=jaccard_distance)
        a = make_cell(frozenset({"x", "y"}))
        b = make_cell(frozenset({"x", "z"}))
        store.add(a)
        store.add(b)
        distances = store.distances_to(frozenset({"x", "y"}))
        assert distances[0] == pytest.approx(0.0)
        assert distances[1] == pytest.approx(2.0 / 3.0)
        key, _ = store.nearest(frozenset({"x", "y"}))
        assert key == a.cell_id


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-50, max_value=50),
                st.floats(min_value=-50, max_value=50),
            ),
            min_size=1,
            max_size=30,
            unique=True,
        ),
        st.tuples(
            st.floats(min_value=-50, max_value=50),
            st.floats(min_value=-50, max_value=50),
        ),
    )
    def test_nearest_matches_brute_force(self, seeds, query):
        store = CellStore()
        cells = [make_cell(seed) for seed in seeds]
        for cell in cells:
            store.add(cell)
        key, distance = store.nearest(query)
        brute = min(cells, key=lambda c: math.dist(c.seed, query))
        assert distance == pytest.approx(math.dist(brute.seed, query))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60))
    def test_random_add_remove_keeps_cache_coherent(self, operations):
        store = CellStore()
        alive = []
        for op in operations:
            if op < 7 or not alive:
                cell = make_cell((float(op), float(len(alive))))
                store.add(cell)
                alive.append(cell)
            else:
                victim = alive.pop(op % len(alive))
                store.remove(victim.cell_id)
        assert len(store) == len(alive)
        store.validate()
