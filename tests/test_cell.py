"""Tests for the cluster-cell summary structure (Definition 4)."""

import pytest

from repro.core.cell import ClusterCell
from repro.core.decay import DecayModel


@pytest.fixture
def decay() -> DecayModel:
    return DecayModel(a=0.5, lam=1.0)  # fast decay makes the arithmetic obvious


class TestDensityMaintenance:
    def test_new_cell_has_unit_density(self):
        cell = ClusterCell(seed=(0.0, 0.0))
        assert cell.density == 1.0
        assert cell.points_absorbed == 1

    def test_density_at_decays_lazily(self, decay):
        cell = ClusterCell(seed=(0.0, 0.0), density=8.0, last_update=0.0)
        assert cell.density_at(3.0, decay) == pytest.approx(1.0)
        # The stored value is untouched until refresh/absorb.
        assert cell.density == 8.0

    def test_density_at_does_not_undecay_on_clock_skew(self, decay):
        cell = ClusterCell(seed=(0.0,), density=4.0, last_update=10.0)
        assert cell.density_at(5.0, decay) == 4.0

    def test_refresh_updates_stored_density(self, decay):
        cell = ClusterCell(seed=(0.0,), density=8.0, last_update=0.0)
        cell.refresh(1.0, decay)
        assert cell.density == pytest.approx(4.0)
        assert cell.last_update == 1.0

    def test_absorb_follows_equation_8(self, decay):
        cell = ClusterCell(seed=(0.0,), density=8.0, last_update=0.0)
        cell.absorb(1.0, decay)
        assert cell.density == pytest.approx(4.0 + 1.0)
        assert cell.last_absorb == 1.0
        assert cell.points_absorbed == 2

    def test_absorb_with_weight(self, decay):
        cell = ClusterCell(seed=(0.0,), density=2.0, last_update=0.0)
        cell.absorb(0.0, decay, weight=0.5)
        assert cell.density == pytest.approx(2.5)


class TestBookkeeping:
    def test_label_votes_and_majority(self, decay):
        cell = ClusterCell(seed=(0.0,))
        cell.absorb(1.0, decay, label=3)
        cell.absorb(2.0, decay, label=3)
        cell.absorb(3.0, decay, label=5)
        assert cell.majority_label() == 3

    def test_majority_label_none_without_votes(self):
        assert ClusterCell(seed=(0.0,)).majority_label() is None

    def test_idle_time(self):
        cell = ClusterCell(seed=(0.0,), last_absorb=10.0)
        assert cell.idle_time(14.0) == pytest.approx(4.0)
        assert cell.idle_time(5.0) == 0.0

    def test_cell_ids_are_unique(self):
        a = ClusterCell(seed=(0.0,))
        b = ClusterCell(seed=(1.0,))
        assert a.cell_id != b.cell_id

    def test_default_dependency_is_root_like(self):
        cell = ClusterCell(seed=(0.0,))
        assert cell.dependency is None
        assert cell.delta == float("inf")
