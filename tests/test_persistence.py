"""Tests for EDMStream model persistence (save / load round trips)."""

import json

import numpy as np
import pytest

from repro.core import EDMStream
from repro.core.persistence import (
    FORMAT_VERSION,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)


def trained_model(stream, **kwargs):
    """Feed a stream into a fresh EDMStream model."""
    params = dict(radius=0.5, beta=0.001, stream_rate=stream.rate, init_size=100)
    params.update(kwargs)
    model = EDMStream(**params)
    for point in stream:
        model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
    return model


class TestRoundTrip:
    def test_dict_round_trip_preserves_clustering(self, two_blob_stream):
        model = trained_model(two_blob_stream)
        restored = model_from_dict(model_to_dict(model))

        assert restored.n_points == model.n_points
        assert restored.n_active_cells == model.n_active_cells
        assert restored.n_inactive_cells == model.n_inactive_cells
        assert restored.tau == pytest.approx(model.tau)
        assert restored.alpha == pytest.approx(model.alpha)
        assert restored.n_clusters == model.n_clusters
        assert restored.clusters() == model.clusters()

    def test_round_trip_preserves_predictions(self, two_blob_stream):
        model = trained_model(two_blob_stream)
        restored = model_from_dict(model_to_dict(model))
        queries = [(0.0, 0.0), (6.0, 6.0), (3.0, 3.0), (100.0, 100.0)]
        for query in queries:
            assert restored.predict_one(query) == model.predict_one(query)

    def test_round_trip_is_json_serialisable(self, two_blob_stream):
        model = trained_model(two_blob_stream)
        payload = json.dumps(model_to_dict(model))
        restored = model_from_dict(json.loads(payload))
        assert restored.n_active_cells == model.n_active_cells

    def test_file_round_trip(self, two_blob_stream, tmp_path):
        model = trained_model(two_blob_stream)
        path = save_model(model, tmp_path / "snapshots" / "model.json")
        assert path.exists()
        restored = load_model(path)
        assert restored.clusters() == model.clusters()

    def test_restored_model_keeps_learning(self, two_blob_stream):
        model = trained_model(two_blob_stream)
        restored = model_from_dict(model_to_dict(model))
        rng = np.random.default_rng(0)
        t = restored.now
        for i in range(200):
            point = rng.normal((0.0, 0.0), 0.3, size=2)
            t += 1e-3
            restored.learn_one(tuple(point), timestamp=t)
        assert restored.n_points == model.n_points + 200
        assert restored.n_clusters >= 1

    def test_new_cells_do_not_collide_with_restored_ids(self, two_blob_stream):
        model = trained_model(two_blob_stream)
        snapshot = model_to_dict(model)
        restored = model_from_dict(snapshot)
        existing_ids = {c["cell_id"] for c in snapshot["active_cells"]}
        existing_ids |= {c["cell_id"] for c in snapshot["inactive_cells"]}
        # Force a brand-new cell far away from everything else.
        new_cell_id = restored.learn_one((500.0, 500.0), timestamp=restored.now + 0.001)
        assert new_cell_id not in existing_ids

    def test_dependency_structure_preserved(self, two_blob_stream):
        model = trained_model(two_blob_stream)
        restored = model_from_dict(model_to_dict(model))
        for cell in model.tree.cells():
            restored_cell = restored.tree.get(cell.cell_id)
            assert restored_cell.dependency == cell.dependency
            assert restored_cell.delta == pytest.approx(cell.delta)


class TestUninitialisedAndEdgeCases:
    def test_empty_model_round_trip(self):
        model = EDMStream(radius=1.0)
        restored = model_from_dict(model_to_dict(model))
        assert restored.n_points == 0
        assert restored.n_active_cells == 0
        assert not restored.initialized

    def test_uninitialised_model_round_trip(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=10_000)  # never initialises
        for point in two_blob_stream.prefix(50):
            model.learn_one(point.values, timestamp=point.timestamp)
        restored = model_from_dict(model_to_dict(model))
        assert not restored.initialized
        assert restored.n_inactive_cells == model.n_inactive_cells

    def test_unsupported_version_rejected(self, two_blob_stream):
        model = trained_model(two_blob_stream)
        payload = model_to_dict(model)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            model_from_dict(payload)

    def test_config_round_trip(self, two_blob_stream):
        model = trained_model(
            two_blob_stream, enable_triangle_filter=False, maintenance_interval=2.5
        )
        restored = model_from_dict(model_to_dict(model))
        assert restored.config.enable_triangle_filter is False
        assert restored.config.maintenance_interval == 2.5

    def test_label_votes_round_trip(self, two_blob_stream):
        model = trained_model(two_blob_stream)
        restored = model_from_dict(model_to_dict(model))
        for cell in model.tree.cells():
            assert restored.tree.get(cell.cell_id).label_votes == cell.label_votes
