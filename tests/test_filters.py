"""Tests for the dependency-update filters (Theorems 1 and 2)."""

import pytest

from repro.core.filters import DependencyFilter, FilterStatistics


@pytest.fixture
def dependency_filter() -> DependencyFilter:
    f = DependencyFilter()
    # The absorbing cell c' had density 5 before and 6 after absorbing a point
    # that lies at distance 2 from its seed.
    f.begin_event(rho_absorber_before=5.0, rho_absorber_after=6.0, point_to_absorber_distance=2.0)
    return f


class TestDensityFilter:
    def test_candidate_already_below_absorber_is_skipped(self, dependency_filter):
        # Theorem 1, first case: rho_c < rho_c' before the absorption.
        assert dependency_filter.skip_by_density(rho_candidate=4.0)

    def test_candidate_still_above_absorber_is_skipped(self, dependency_filter):
        # Theorem 1, second case: rho_c >= rho_c' after the absorption.
        assert dependency_filter.skip_by_density(rho_candidate=7.0)

    def test_candidate_newly_dominated_is_not_skipped(self, dependency_filter):
        # rho_before <= rho_c < rho_after: the absorber newly entered F_c.
        assert not dependency_filter.skip_by_density(rho_candidate=5.5)

    def test_disabled_filter_never_skips(self):
        f = DependencyFilter(enable_density_filter=False)
        f.begin_event(5.0, 6.0, 2.0)
        assert not f.skip_by_density(4.0)


class TestTriangleFilter:
    def test_far_candidate_is_skipped(self, dependency_filter):
        # | |p,s_c| - |p,s_c'| | = |10 - 2| = 8 > delta_c = 3  =>  skip.
        assert dependency_filter.skip_by_triangle(point_to_candidate=10.0, candidate_delta=3.0)

    def test_near_candidate_is_not_skipped(self, dependency_filter):
        # |3 - 2| = 1 <= delta_c = 3  =>  must examine.
        assert not dependency_filter.skip_by_triangle(point_to_candidate=3.0, candidate_delta=3.0)

    def test_root_candidate_never_skipped(self, dependency_filter):
        assert not dependency_filter.skip_by_triangle(10.0, float("inf"))

    def test_disabled_filter_never_skips(self):
        f = DependencyFilter(enable_triangle_filter=False)
        f.begin_event(5.0, 6.0, 2.0)
        assert not f.skip_by_triangle(100.0, 0.1)

    def test_triangle_filter_is_safe(self, dependency_filter):
        """If the filter skips, the seed distance provably exceeds delta."""
        # By the triangle inequality |s_c, s_c'| >= | |p,s_c| - |p,s_c'| |,
        # so a skipped candidate's current dependency cannot be displaced.
        point_to_candidate, delta = 10.0, 3.0
        assert dependency_filter.skip_by_triangle(point_to_candidate, delta)
        seed_distance_lower_bound = abs(point_to_candidate - 2.0)
        assert seed_distance_lower_bound > delta


class TestCombinedCheckAndStatistics:
    def test_should_update_counts_each_outcome(self, dependency_filter):
        assert dependency_filter.should_update(5.5, 2.5, 3.0) is True
        assert dependency_filter.should_update(4.0, 2.5, 3.0) is False  # density filtered
        assert dependency_filter.should_update(5.5, 50.0, 3.0) is False  # triangle filtered
        stats = dependency_filter.stats
        assert stats.candidates == 3
        assert stats.density_filtered == 1
        assert stats.triangle_filtered == 1
        assert stats.filtered == 2

    def test_filter_rate(self):
        stats = FilterStatistics(candidates=10, density_filtered=6, triangle_filtered=2)
        assert stats.filter_rate == pytest.approx(0.8)

    def test_filter_rate_with_no_candidates(self):
        assert FilterStatistics().filter_rate == 0.0

    def test_reset(self):
        stats = FilterStatistics(candidates=5, density_filtered=3)
        stats.reset()
        assert stats.candidates == 0
        assert stats.density_filtered == 0

    def test_as_dict_round_trip(self):
        stats = FilterStatistics(candidates=4, density_filtered=1, triangle_filtered=1,
                                 distance_computations=2, dependency_changes=1)
        payload = stats.as_dict()
        assert payload["candidates"] == 4
        assert payload["filter_rate"] == pytest.approx(0.5)
