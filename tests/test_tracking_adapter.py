"""Tests for the snapshot recorder and event-log comparison helpers."""

import pytest

from repro.core.decay import DecayModel
from repro.core.evolution import ClusterEvent, EvolutionType
from repro.tracking.adapter import (
    SnapshotRecorder,
    compare_event_logs,
    events_from_external_transitions,
)
from repro.tracking.monic import MonicTracker
from repro.tracking.transitions import ExternalTransition, TransitionType
from repro.streams.point import StreamPoint


class _RegionClusterer:
    """Toy clusterer: label = 0 for x < threshold, 1 otherwise, -1 for far points."""

    def __init__(self, threshold=5.0, outlier_beyond=100.0):
        self.threshold = threshold
        self.outlier_beyond = outlier_beyond

    def predict_one(self, values):
        x = float(values[0])
        if abs(x) > self.outlier_beyond:
            return -1
        return 0 if x < self.threshold else 1


class TestSnapshotRecorder:
    def test_window_size_must_be_positive(self):
        with pytest.raises(ValueError):
            SnapshotRecorder(_RegionClusterer(), window_size=0)

    def test_window_is_bounded(self):
        recorder = SnapshotRecorder(_RegionClusterer(), window_size=3)
        for i in range(10):
            recorder.add_point((float(i),), timestamp=float(i))
        assert len(recorder) == 3
        ids = [pid for pid, _, _ in recorder.window_points()]
        assert ids == [7, 8, 9]

    def test_snapshot_groups_points_by_predicted_cluster(self):
        recorder = SnapshotRecorder(_RegionClusterer(threshold=5.0), window_size=10)
        for i in range(10):
            recorder.add_point((float(i),), timestamp=float(i), point_id=i)
        snapshot = recorder.snapshot(time=10.0)
        assert snapshot.cluster(0).members == frozenset(range(5))
        assert snapshot.cluster(1).members == frozenset(range(5, 10))

    def test_snapshot_excludes_outliers(self):
        recorder = SnapshotRecorder(_RegionClusterer(outlier_beyond=50.0), window_size=10)
        recorder.add_point((1.0,), timestamp=0.0, point_id=1)
        recorder.add_point((1000.0,), timestamp=0.1, point_id=2)
        snapshot = recorder.snapshot(time=1.0)
        assert 2 not in snapshot.all_members()

    def test_freshness_weights_applied(self):
        decay = DecayModel(a=0.998, lam=1.0)
        recorder = SnapshotRecorder(_RegionClusterer(), window_size=10, decay=decay)
        recorder.add_point((0.0,), timestamp=0.0, point_id=0)
        recorder.add_point((0.0,), timestamp=100.0, point_id=1)
        snapshot = recorder.snapshot(time=100.0)
        cluster = snapshot.cluster(0)
        assert cluster.weight_of(1) == pytest.approx(1.0)
        assert cluster.weight_of(0) == pytest.approx(decay.freshness(0.0, 100.0))
        assert cluster.weight_of(0) < cluster.weight_of(1)

    def test_add_stream_point(self):
        recorder = SnapshotRecorder(_RegionClusterer(), window_size=5)
        recorder.add_stream_point(StreamPoint(values=(1.0,), timestamp=0.5, point_id=42))
        assert recorder.window_points()[0][0] == 42

    def test_snapshots_are_accumulated(self):
        recorder = SnapshotRecorder(_RegionClusterer(), window_size=5)
        recorder.add_point((1.0,), timestamp=0.0)
        recorder.snapshot(time=1.0)
        recorder.snapshot(time=2.0)
        assert len(recorder.snapshots) == 2

    def test_monic_over_recorded_snapshots_sees_drift(self):
        """Moving the decision boundary makes MONIC report a change."""
        recorder = SnapshotRecorder(_RegionClusterer(threshold=5.0), window_size=20)
        for i in range(20):
            recorder.add_point((float(i % 10),), timestamp=float(i), point_id=i)
        monic = MonicTracker()
        monic.observe(recorder.snapshot(time=20.0))
        # Shift the boundary so cluster memberships change drastically.
        recorder.clusterer.threshold = 2.0
        monic.observe(recorder.snapshot(time=40.0))
        assert len(monic.external_transitions) > 1


class TestLogConversion:
    def test_events_from_external_transitions_maps_types(self):
        transitions = [
            ExternalTransition(transition_type=TransitionType.SPLIT, time=1.0,
                               old_clusters=("a",), new_clusters=("x", "y")),
            ExternalTransition(transition_type=TransitionType.ABSORB, time=2.0,
                               old_clusters=("x", "y"), new_clusters=("z",)),
            ExternalTransition(transition_type=TransitionType.GROW, time=2.0),
        ]
        events = events_from_external_transitions(transitions)
        assert [e.event_type for e in events] == [EvolutionType.SPLIT, EvolutionType.MERGE]
        assert events[0].new_clusters == ("x", "y")

    def test_compare_event_logs_perfect_match(self):
        events = [
            ClusterEvent(event_type=EvolutionType.SPLIT, time=5.0),
            ClusterEvent(event_type=EvolutionType.MERGE, time=9.0),
        ]
        report = compare_event_logs(events, list(events))
        assert report["split"]["recall"] == 1.0
        assert report["split"]["precision"] == 1.0
        assert report["merge"]["hits"] == 1.0

    def test_compare_event_logs_missed_event(self):
        reference = [
            ClusterEvent(event_type=EvolutionType.SPLIT, time=5.0),
            ClusterEvent(event_type=EvolutionType.SPLIT, time=50.0),
        ]
        candidate = [ClusterEvent(event_type=EvolutionType.SPLIT, time=5.2)]
        report = compare_event_logs(reference, candidate, time_tolerance=1.0)
        assert report["split"]["recall"] == pytest.approx(0.5)
        assert report["split"]["precision"] == pytest.approx(1.0)

    def test_compare_event_logs_spurious_event(self):
        reference = [ClusterEvent(event_type=EvolutionType.MERGE, time=5.0)]
        candidate = [
            ClusterEvent(event_type=EvolutionType.MERGE, time=5.0),
            ClusterEvent(event_type=EvolutionType.MERGE, time=90.0),
        ]
        report = compare_event_logs(reference, candidate, time_tolerance=1.0)
        assert report["merge"]["precision"] == pytest.approx(0.5)
        assert report["merge"]["recall"] == pytest.approx(1.0)

    def test_compare_event_logs_empty_logs(self):
        report = compare_event_logs([], [])
        assert report["split"]["recall"] == 1.0
        assert report["split"]["precision"] == 1.0

    def test_each_reference_event_matched_once(self):
        reference = [ClusterEvent(event_type=EvolutionType.SPLIT, time=5.0)]
        candidate = [
            ClusterEvent(event_type=EvolutionType.SPLIT, time=5.0),
            ClusterEvent(event_type=EvolutionType.SPLIT, time=5.1),
        ]
        report = compare_event_logs(reference, candidate, time_tolerance=1.0)
        assert report["split"]["hits"] == 1.0
        assert report["split"]["precision"] == pytest.approx(0.5)
