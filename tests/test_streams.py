"""Tests for the stream abstractions (StreamPoint, DataStream)."""

import pytest

from repro.streams import StreamPoint, stream_from_arrays
from repro.streams.stream import DataStream, interleave_streams, map_stream


class TestStreamPoint:
    def test_from_sequence_copies_to_tuple(self):
        point = StreamPoint.from_sequence([1, 2, 3], timestamp=0.5, label=2)
        assert point.values == (1.0, 2.0, 3.0)
        assert point.timestamp == 0.5
        assert point.label == 2
        assert point.dimension == 3

    def test_as_tuple(self):
        point = StreamPoint(values=(1.5, 2.5), timestamp=0.0)
        assert point.as_tuple() == (1.5, 2.5)

    def test_dimension_of_non_numeric_payload(self):
        point = StreamPoint(values=object(), timestamp=0.0)
        assert point.dimension == 0

    def test_points_are_frozen(self):
        point = StreamPoint(values=(1.0,), timestamp=0.0)
        with pytest.raises(AttributeError):
            point.timestamp = 5.0


class TestStreamFromArrays:
    def test_timestamps_follow_the_rate(self):
        stream = stream_from_arrays([[0.0], [1.0], [2.0]], rate=10.0)
        assert [p.timestamp for p in stream] == pytest.approx([0.0, 0.1, 0.2])
        assert stream.rate == 10.0

    def test_labels_attached(self):
        stream = stream_from_arrays([[0.0], [1.0]], labels=[5, 6])
        assert stream.labels() == [5, 6]

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stream_from_arrays([[0.0]], labels=[1, 2])

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            DataStream(points=[], rate=0.0)


class TestDataStream:
    @pytest.fixture
    def stream(self):
        return stream_from_arrays(
            [[float(i), 0.0] for i in range(10)], labels=list(range(10)), rate=2.0
        )

    def test_len_iter_getitem(self, stream):
        assert len(stream) == 10
        assert stream[0].values == (0.0, 0.0)
        assert [p.label for p in stream][:3] == [0, 1, 2]

    def test_slice_returns_stream(self, stream):
        prefix = stream[:4]
        assert isinstance(prefix, DataStream)
        assert len(prefix) == 4

    def test_prefix(self, stream):
        assert len(stream.prefix(3)) == 3

    def test_dimension_and_duration(self, stream):
        assert stream.dimension == 2
        assert stream.duration == pytest.approx(4.5)

    def test_values_matrix(self, stream):
        matrix = stream.values_matrix()
        assert matrix.shape == (10, 2)
        assert matrix[3, 0] == 3.0

    def test_with_rate_rescales_timestamps(self, stream):
        fast = stream.with_rate(10.0)
        assert fast.rate == 10.0
        assert fast[1].timestamp - fast[0].timestamp == pytest.approx(0.1)
        assert [p.values for p in fast] == [p.values for p in stream]
        with pytest.raises(ValueError):
            stream.with_rate(0.0)

    def test_shuffled_preserves_content(self, stream):
        shuffled = stream.shuffled(seed=1)
        assert sorted(p.values for p in shuffled) == sorted(p.values for p in stream)
        assert shuffled[1].timestamp > shuffled[0].timestamp

    def test_empty_stream_properties(self):
        empty = DataStream(points=[], rate=1.0)
        assert empty.dimension == 0
        assert empty.duration == 0.0


class TestHelpers:
    def test_interleave_streams_sorts_by_timestamp(self):
        a = stream_from_arrays([[0.0], [1.0]], rate=1.0, start_time=0.0)
        b = stream_from_arrays([[2.0], [3.0]], rate=1.0, start_time=0.5)
        merged = interleave_streams([a, b])
        timestamps = [p.timestamp for p in merged]
        assert timestamps == sorted(timestamps)
        assert len(merged) == 4

    def test_map_stream(self):
        stream = stream_from_arrays([[1.0], [2.0]], rate=1.0)
        doubled = map_stream(
            stream,
            lambda p: StreamPoint(values=tuple(v * 2 for v in p.values), timestamp=p.timestamp),
        )
        assert doubled[1].values == (4.0,)
