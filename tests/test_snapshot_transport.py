"""Snapshot serialization: pickle round-trips and raw-buffer hydration.

The serving tier (ISSUE 7) moves snapshots between processes two ways —
whole-snapshot pickle for grid/object-keyed serving state, and raw array
buffers (the zero-copy shared-memory path) for numeric snapshots.  These
tests pin the contracts:

* every snapshot mode round-trips through pickle with ``predict_many``
  equivalence (seed-matrix, float32 seed-matrix, grid, Jaccard/token-set);
* numeric snapshots round-trip through ``snapshot_to_buffers`` /
  ``snapshot_from_buffers`` with identical labels and dtypes;
* ``copy=False`` hydration is genuinely zero-copy: the snapshot's arrays
  are read-only views over the caller's buffers;
* non-numeric snapshots are routed to pickle transport
  (``supports_buffer_transport`` is the dispatcher).
"""

import pickle

import numpy as np
import pytest

from repro.api import (
    ClusterSnapshot,
    snapshot_from_buffers,
    snapshot_to_buffers,
    supports_buffer_transport,
)
from repro.baselines import DStream
from repro.core import EDMStream
from repro.streams import SDSGenerator


def numeric_snapshot(dtype="float64"):
    model = EDMStream(radius=0.3, beta=0.0021, stream_rate=1000.0, dtype=dtype)
    model.learn_many(SDSGenerator(n_points=2000, rate=1000.0, seed=7).generate())
    snapshot = model.request_clustering()
    assert snapshot.n_cells > 0 and snapshot.seeds is not None
    return snapshot


def grid_snapshot():
    model = DStream(grid_size=1.0)
    model.learn_many(SDSGenerator(n_points=2000, rate=1000.0, seed=7).generate())
    snapshot = model.request_clustering()
    assert snapshot.grid is not None and len(snapshot.grid.labels) > 0
    return snapshot


def jaccard_snapshot():
    from repro.distance import TokenSetPoint

    model = EDMStream(radius=0.6, metric="jaccard", stream_rate=1000.0)
    docs = [
        frozenset({"goal", "match", "football"}),
        frozenset({"goal", "match", "league"}),
        frozenset({"phone", "android", "release"}),
        frozenset({"phone", "android", "update"}),
    ] * 400
    model.learn_many([TokenSetPoint(tokens) for tokens in docs])
    snapshot = model.request_clustering()
    assert snapshot.seed_objects is not None and snapshot.metric is not None
    return snapshot


QUERIES = np.asarray(
    [p.values for p in SDSGenerator(n_points=64, rate=1000.0, seed=9).generate()]
)


class TestPickleRoundTrip:
    def test_numeric_snapshot_round_trips(self):
        snapshot = numeric_snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.version == snapshot.version
        assert clone.tau == snapshot.tau
        np.testing.assert_array_equal(clone.seeds, snapshot.seeds)
        assert clone.predict_many(QUERIES).tolist() == snapshot.predict_many(
            QUERIES
        ).tolist()
        assert dict(clone.stable_ids) == dict(snapshot.stable_ids)

    def test_float32_snapshot_round_trips_preserving_dtype(self):
        snapshot = numeric_snapshot(dtype="float32")
        assert snapshot.seeds.dtype == np.float32
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.seeds.dtype == snapshot.seeds.dtype
        assert clone.predict_many(QUERIES).tolist() == snapshot.predict_many(
            QUERIES
        ).tolist()

    def test_grid_snapshot_round_trips(self):
        snapshot = grid_snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.grid is not None
        assert dict(clone.grid.labels) == dict(snapshot.grid.labels)
        assert clone.predict_many(QUERIES).tolist() == snapshot.predict_many(
            QUERIES
        ).tolist()

    def test_jaccard_snapshot_round_trips(self):
        from repro.distance import TokenSetPoint

        snapshot = jaccard_snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        queries = [
            TokenSetPoint(frozenset({"goal", "match"})),
            TokenSetPoint(frozenset({"phone", "android"})),
        ]
        assert clone.predict_many(queries).tolist() == snapshot.predict_many(
            queries
        ).tolist()

    def test_round_trip_stays_immutable(self):
        clone = pickle.loads(pickle.dumps(numeric_snapshot()))
        with pytest.raises((ValueError, RuntimeError)):
            clone.seeds[0, 0] = 99.0
        with pytest.raises(TypeError):
            clone.stable_ids[1] = 2


class TestBufferTransport:
    def test_dispatcher_classifies_modes(self):
        assert supports_buffer_transport(numeric_snapshot())
        assert not supports_buffer_transport(grid_snapshot())
        assert not supports_buffer_transport(jaccard_snapshot())

    def test_buffer_transport_rejects_grid_snapshots(self):
        with pytest.raises(ValueError, match="pickle transport"):
            snapshot_to_buffers(grid_snapshot())

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_buffer_round_trip_matches(self, dtype):
        snapshot = numeric_snapshot(dtype=dtype)
        header, arrays = snapshot_to_buffers(snapshot)
        # Simulate crossing a process boundary: header via pickle, arrays
        # as raw bytes (what lands in a shared-memory segment).
        header = pickle.loads(pickle.dumps(header))
        buffers = {name: array.tobytes() for name, array in arrays.items()}
        clone = snapshot_from_buffers(header, buffers)
        assert clone.seeds.dtype == snapshot.seeds.dtype
        np.testing.assert_array_equal(clone.seeds, snapshot.seeds)
        np.testing.assert_array_equal(clone.labels, snapshot.labels)
        assert clone.tau == snapshot.tau
        assert clone.predict_many(QUERIES.astype(dtype)).tolist() == (
            snapshot.predict_many(QUERIES.astype(dtype)).tolist()
        )

    def test_hydration_is_zero_copy(self):
        snapshot = numeric_snapshot()
        header, arrays = snapshot_to_buffers(snapshot)
        backing = {name: bytearray(array.tobytes()) for name, array in arrays.items()}
        clone = snapshot_from_buffers(header, backing)
        for name in header["arrays"]:
            array = getattr(clone, name) if name != "coverage" else clone.coverage
            view = np.frombuffer(backing[name], dtype=array.dtype)
            assert not array.flags.writeable
            assert np.shares_memory(array, view), name

    def test_copy_true_detaches_from_buffers(self):
        snapshot = numeric_snapshot()
        header, arrays = snapshot_to_buffers(snapshot)
        backing = {name: bytearray(array.tobytes()) for name, array in arrays.items()}
        clone = snapshot_from_buffers(header, backing, copy=True)
        seeds_before = clone.seeds.copy()
        backing["seeds"][:8] = b"\xff" * 8  # scribble over the buffer
        np.testing.assert_array_equal(clone.seeds, seeds_before)

    def test_assemble_refuses_writable_arrays(self):
        snapshot = numeric_snapshot()
        with pytest.raises(ValueError, match="read-only"):
            ClusterSnapshot._assemble(
                version=1,
                time=0.0,
                n_points=0,
                algorithm="x",
                outlier_label=-1,
                tau=0.0,
                coverage=1.0,
                stable_ids={},
                metadata={},
                seeds=np.zeros((2, 2)),  # writable: must be rejected
                cell_ids=snapshot.cell_ids,
                labels=snapshot.labels,
                densities=snapshot.densities,
            )
