"""Tests for the structure-of-arrays cell arena (free-list edge cases).

Covers the contract documented in ``docs/ARCHITECTURE.md``: slot recycling
after outlier deletion, capacity-growth boundaries, and the float32 seed
mode's tolerance envelope against the exact float64 arena.
"""

import numpy as np
import pytest

from repro.core.cell import ClusterCell
from repro.core.cellstore import CellStore
from repro.core.edmstream import EDMStream
from repro.core.soa import DETACHED, FREE, MEMBER, CellArrays
from repro.distance.metrics import pairwise_euclidean


def seeded_arena(count, capacity=8):
    """An arena with ``count`` live 2-d cells with ids 0..count-1."""
    arena = CellArrays(numeric=True, capacity=capacity)
    for i in range(count):
        arena.allocate(i, (float(i), float(-i)), density=1.0 + i)
    return arena


class TestFreeListReuse:
    def test_release_parks_slot_on_free_list(self):
        arena = seeded_arena(3)
        slot = arena.slot_of(1)
        arena.release(1)
        assert arena.n_free == 1
        assert arena.status[slot] == FREE
        assert arena.cell_ids[slot] == -1
        assert 1 not in arena

    def test_released_slot_is_reused_lifo(self):
        arena = seeded_arena(3)
        freed = [arena.slot_of(1), arena.slot_of(2)]
        arena.release(1)
        arena.release(2)
        # LIFO: the most recently freed slot is claimed first.
        assert arena.allocate(10, (10.0, 10.0)) == freed[1]
        assert arena.allocate(11, (11.0, 11.0)) == freed[0]
        assert arena.n_free == 0
        assert arena.high_water == 3  # no new slots were touched

    def test_reused_slot_carries_no_stale_state(self):
        arena = seeded_arena(1)
        arena.delta[arena.slot_of(0)] = 0.25
        arena.dep[arena.slot_of(0)] = 7
        arena.label_votes_of(arena.slot_of(0))[3] = 5
        arena.release(0)
        slot = arena.allocate(42, (9.0, 9.0))
        assert arena.dep[slot] == -1
        assert np.isinf(arena.delta[slot])
        assert arena.label_votes_of(slot) == {}
        np.testing.assert_allclose(arena.seeds[slot], [9.0, 9.0])

    def test_release_invalidates_live_views(self):
        arena = seeded_arena(2)
        view = arena.view(0)
        assert view.density == 1.0
        arena.release(0)
        assert view._arrays is None  # the thin view is detached, not dangling

    def test_outlier_deletion_recycles_slots_in_model(self):
        """End-to-end: reservoir pruning returns slots to the free-list."""
        model = EDMStream(radius=0.5, beta=0.0021, stream_rate=100.0, init_size=100)
        # Shrink the safe-deletion horizon so the short test stream is long
        # enough for idle outlier cells to be pruned.
        model.reservoir._deletion_interval = 0.5
        rng = np.random.default_rng(3)
        # A dense clump keeps some cells active; scattered one-off points
        # become outlier cells that decay and get pruned.
        for i in range(400):
            if i % 4:
                point = rng.normal(0.0, 0.1, size=2)
            else:
                point = rng.uniform(50.0, 200.0, size=2) * rng.choice([-1.0, 1.0], 2)
            model.learn_one(tuple(point))
        arena = model._cells
        assert arena.n_free > 0, "expected pruned outliers to free slots"
        # Every live population member must sit on a non-FREE slot.
        for store in (model._active, model._inactive):
            assert np.all(arena.status[store.slots()] == MEMBER)
        arena.validate()


class TestGrowthBoundaries:
    def test_growth_preserves_all_columns(self):
        arena = CellArrays(numeric=True, capacity=4)
        for i in range(4):
            arena.allocate(i, (float(i), 0.0), density=2.0 * i, delta=0.5 * i)
        assert arena.capacity == 4
        arena.allocate(4, (4.0, 0.0))  # crosses the boundary
        assert arena.capacity == 8
        for i in range(4):
            slot = arena.slot_of(i)
            assert arena.density[slot] == 2.0 * i
            assert arena.delta[slot] == 0.5 * i
            np.testing.assert_allclose(arena.seeds[slot], [float(i), 0.0])
            np.testing.assert_allclose(arena.seed_norm2[slot], float(i) ** 2)
        # Slots beyond the high-water mark are pristine.
        assert np.all(arena.status[5:] == FREE)
        assert np.all(arena.dep[5:] == -1)

    def test_exact_boundary_allocation_does_not_grow(self):
        arena = CellArrays(numeric=True, capacity=4)
        for i in range(4):
            arena.allocate(i, (float(i), 0.0))
        assert arena.capacity == 4 and arena.high_water == 4

    def test_free_list_absorbs_churn_without_growth(self):
        arena = CellArrays(numeric=True, capacity=4)
        for i in range(4):
            arena.allocate(i, (float(i), 0.0))
        for round_id in range(25):
            victim = round_id % 4
            arena.release(victim)
            arena.allocate(100 + round_id, (1.0, 1.0))
            arena.release(100 + round_id)
            arena.allocate(victim, (2.0, 2.0))
        assert arena.capacity == 4, "steady-state churn must not grow the arena"
        arena.validate()

    def test_store_growth_keeps_positions_coherent(self):
        store = CellStore()
        cells = [ClusterCell(seed=(float(i), float(i))) for i in range(130)]
        for cell in cells:
            store.add(cell)
        for cell in cells[::3]:
            store.remove(cell.cell_id)
        store.validate()
        remaining = [c.cell_id for c in cells if c.cell_id not in
                     {x.cell_id for x in cells[::3]}]
        assert sorted(store.ids()) == sorted(remaining)


class TestFloat32Mode:
    def test_config_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            EDMStream(radius=0.3, dtype="float16")

    def test_float32_arena_stores_single_precision(self):
        model = EDMStream(radius=0.3, dtype="float32", init_size=10)
        rng = np.random.default_rng(2)
        for _ in range(40):
            model.learn_one(tuple(rng.normal(0.0, 0.1, size=2)))
        assert model._cells.seeds.dtype == np.float32
        snapshot = model.request_clustering()
        assert snapshot.seeds is not None and snapshot.seeds.dtype == np.float32

    def test_float32_kernel_stays_single_precision(self):
        rng = np.random.default_rng(11)
        queries = rng.normal(size=(8, 5)).astype(np.float32)
        seeds = rng.normal(size=(16, 5)).astype(np.float32)
        out = pairwise_euclidean(queries, seeds)
        assert out.dtype == np.float32
        exact = pairwise_euclidean(
            queries.astype(np.float64), seeds.astype(np.float64)
        )
        np.testing.assert_allclose(out, exact, rtol=1e-5, atol=1e-6)

    def test_float32_clustering_matches_float64_on_separated_data(self):
        """Reduced precision may move distances ~1e-7 relative, which cannot
        flip decisions when clusters are well separated."""
        rng = np.random.default_rng(5)
        centers = np.asarray([[0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]])
        points = [
            tuple(centers[i % 3] + rng.normal(0.0, 0.2, size=2)) for i in range(600)
        ]
        exact = EDMStream(radius=0.5, beta=0.0021, stream_rate=1000.0)
        single = EDMStream(radius=0.5, beta=0.0021, stream_rate=1000.0, dtype="float32")
        for point in points:
            exact.learn_one(point)
            single.learn_one(point)
        assert single.n_clusters == exact.n_clusters
        assert single.n_active_cells == exact.n_active_cells
        # Cell ids are drawn from a global counter, so match cells by seed.
        def by_seed(model):
            return {
                tuple(np.round(np.asarray(cell.seed, dtype=np.float64), 4)): cell
                for cell in model.tree.cells()
            }

        exact_cells = by_seed(exact)
        single_cells = by_seed(single)
        assert set(exact_cells) == set(single_cells)
        for key, e in exact_cells.items():
            s = single_cells[key]
            assert s.density == pytest.approx(e.density, rel=1e-4)
            if np.isfinite(e.delta):
                assert s.delta == pytest.approx(e.delta, rel=1e-4, abs=1e-5)

    def test_float32_batch_matches_float32_sequential(self):
        """Batch≡sequential equivalence holds inside the float32 mode too."""
        rng = np.random.default_rng(9)
        points = [tuple(rng.normal(0.0, 1.0, size=3)) for _ in range(300)]
        sequential = EDMStream(radius=0.8, stream_rate=500.0, dtype="float32")
        batched = EDMStream(radius=0.8, stream_rate=500.0, dtype="float32")
        for point in points:
            sequential.learn_one(point)
        batched.learn_many(points, batch_size=64)
        assert batched.n_clusters == sequential.n_clusters
        assert sorted(batched.tree.cell_ids()) == sorted(sequential.tree.cell_ids())
