"""Tests for the nearest-seed indexes."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.distance import jaccard_distance
from repro.index import BruteForceIndex, GridIndex


class TestBruteForceIndex:
    def test_insert_nearest_within(self):
        index = BruteForceIndex()
        index.insert("a", (0.0, 0.0))
        index.insert("b", (5.0, 0.0))
        assert index.nearest((1.0, 0.0)) == ("a", pytest.approx(1.0))
        assert [k for k, _ in index.within((0.0, 0.0), 1.5)] == ["a"]
        assert index.nearest_key((4.4, 0.0)) == "b"

    def test_duplicate_key_rejected(self):
        index = BruteForceIndex()
        index.insert("a", (0.0,))
        with pytest.raises(KeyError):
            index.insert("a", (1.0,))

    def test_remove(self):
        index = BruteForceIndex()
        index.insert("a", (0.0,))
        index.remove("a")
        assert len(index) == 0
        assert index.nearest((0.0,)) is None
        with pytest.raises(KeyError):
            index.remove("a")

    def test_contains_len_keys(self):
        index = BruteForceIndex()
        index.insert("a", (0.0,))
        index.insert("b", (1.0,))
        assert "a" in index and "c" not in index
        assert len(index) == 2
        assert set(index.keys()) == {"a", "b"}

    def test_custom_metric_jaccard(self):
        index = BruteForceIndex(metric=jaccard_distance)
        index.insert("tech", frozenset({"google", "android"}))
        index.insert("sport", frozenset({"football", "goal"}))
        key, distance = index.nearest(frozenset({"google", "pixel"}))
        assert key == "tech"
        assert distance < 1.0

    def test_location(self):
        index = BruteForceIndex()
        index.insert("a", (2.0, 3.0))
        assert index.location("a") == (2.0, 3.0)


class TestGridIndex:
    def test_invalid_cell_width(self):
        with pytest.raises(ValueError):
            GridIndex(cell_width=0.0)

    def test_nearest_simple(self):
        index = GridIndex(cell_width=1.0)
        index.insert("a", (0.0, 0.0))
        index.insert("b", (10.0, 10.0))
        key, distance = index.nearest((0.4, 0.4))
        assert key == "a"
        assert distance == pytest.approx(math.hypot(0.4, 0.4))

    def test_within_radius(self):
        index = GridIndex(cell_width=1.0)
        index.insert("a", (0.0, 0.0))
        index.insert("b", (0.9, 0.0))
        index.insert("c", (5.0, 0.0))
        hits = [k for k, _ in index.within((0.0, 0.0), 1.0)]
        assert hits == ["a", "b"]

    def test_remove_and_reinsert(self):
        index = GridIndex(cell_width=1.0)
        index.insert("a", (0.0, 0.0))
        index.remove("a")
        assert index.nearest((0.0, 0.0)) is None
        index.insert("a", (0.0, 0.0))
        assert index.nearest((0.0, 0.0))[0] == "a"

    def test_dimension_mismatch_rejected(self):
        index = GridIndex(cell_width=1.0)
        index.insert("a", (0.0, 0.0))
        with pytest.raises(ValueError):
            index.insert("b", (0.0, 0.0, 0.0))

    def test_high_dimensional_fallback(self):
        index = GridIndex(cell_width=1.0, max_grid_dim=3)
        index.insert("a", tuple([0.0] * 10))
        index.insert("b", tuple([5.0] * 10))
        key, _ = index.nearest(tuple([0.1] * 10))
        assert key == "a"

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-20, max_value=20),
                st.floats(min_value=-20, max_value=20),
            ),
            min_size=1,
            max_size=25,
            unique=True,
        ),
        st.tuples(
            st.floats(min_value=-20, max_value=20),
            st.floats(min_value=-20, max_value=20),
        ),
        st.floats(min_value=0.3, max_value=5.0),
    )
    def test_grid_agrees_with_brute_force(self, seeds, query, cell_width):
        grid = GridIndex(cell_width=cell_width)
        brute = BruteForceIndex()
        for i, seed in enumerate(seeds):
            grid.insert(i, seed)
            brute.insert(i, seed)
        grid_result = grid.nearest(query)
        brute_result = brute.nearest(query)
        assert grid_result[1] == pytest.approx(brute_result[1], abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-20, max_value=20),
                st.floats(min_value=-20, max_value=20),
            ),
            min_size=1,
            max_size=25,
            unique=True,
        ),
        st.floats(min_value=0.5, max_value=6.0),
    )
    def test_grid_within_agrees_with_brute_force(self, seeds, radius):
        grid = GridIndex(cell_width=1.0)
        brute = BruteForceIndex()
        for i, seed in enumerate(seeds):
            grid.insert(i, seed)
            brute.insert(i, seed)
        query = seeds[0]
        assert {k for k, _ in grid.within(query, radius)} == {
            k for k, _ in brute.within(query, radius)
        }
