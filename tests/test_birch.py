"""Tests for the BIRCH baseline and its CF-Tree substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.birch import Birch, CFTree, ClusteringFeature


class TestClusteringFeature:
    def test_from_point(self):
        cf = ClusteringFeature.from_point((1.0, 2.0))
        assert cf.n == 1
        assert tuple(cf.linear_sum) == (1.0, 2.0)
        assert cf.square_sum == pytest.approx(5.0)
        assert cf.radius == pytest.approx(0.0)

    def test_additivity(self):
        a = ClusteringFeature.from_point((0.0, 0.0))
        b = ClusteringFeature.from_point((2.0, 0.0))
        merged = a.merged(b)
        assert merged.n == 2
        assert tuple(merged.centroid) == (1.0, 0.0)
        assert merged.radius == pytest.approx(1.0)
        # The original features are untouched.
        assert a.n == 1 and b.n == 1

    def test_diameter_of_two_points(self):
        a = ClusteringFeature.from_point((0.0,))
        b = ClusteringFeature.from_point((3.0,))
        assert a.merged(b).diameter == pytest.approx(3.0)

    def test_empty_feature_is_identity(self):
        empty = ClusteringFeature.empty(2)
        point = ClusteringFeature.from_point((4.0, 5.0))
        merged = empty.merged(point)
        assert merged.n == 1
        assert tuple(merged.centroid) == (4.0, 5.0)

    def test_centroid_distance(self):
        a = ClusteringFeature.from_point((0.0, 0.0))
        b = ClusteringFeature.from_point((3.0, 4.0))
        assert a.centroid_distance(b) == pytest.approx(5.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_merged_cf_matches_direct_statistics(self, points):
        cf = ClusteringFeature.empty(2)
        for point in points:
            cf.add(ClusteringFeature.from_point(point))
        matrix = np.asarray(points, dtype=float)
        assert cf.n == len(points)
        assert cf.centroid == pytest.approx(matrix.mean(axis=0), abs=1e-6)
        expected_radius = math.sqrt(
            max(0.0, float((matrix ** 2).sum(axis=1).mean() - matrix.mean(axis=0) @ matrix.mean(axis=0)))
        )
        # The incremental SS - N·c² form loses precision for tight clusters at
        # large coordinates (catastrophic cancellation before the sqrt), so
        # compare with an absolute tolerance appropriate for that error.
        assert cf.radius == pytest.approx(expected_radius, abs=1e-3)


class TestCFTree:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CFTree(threshold=0.0)
        with pytest.raises(ValueError):
            CFTree(threshold=1.0, branching_factor=1)

    def test_close_points_absorbed_into_one_entry(self):
        tree = CFTree(threshold=1.0)
        for i in range(20):
            tree.insert((0.01 * i, 0.0))
        assert tree.n_leaf_entries == 1
        assert tree.n_points == 20

    def test_far_points_create_separate_entries(self):
        tree = CFTree(threshold=0.5)
        tree.insert((0.0, 0.0))
        tree.insert((10.0, 0.0))
        tree.insert((20.0, 0.0))
        assert tree.n_leaf_entries == 3

    def test_leaf_split_and_height_growth(self):
        tree = CFTree(threshold=0.1, branching_factor=3, max_leaf_entries=3)
        for i in range(20):
            tree.insert((float(i * 5), 0.0))
        assert tree.height > 1
        assert tree.n_splits > 0
        assert tree.n_leaf_entries == 20

    def test_total_count_is_preserved_in_leaves(self):
        rng = np.random.default_rng(0)
        tree = CFTree(threshold=0.5, branching_factor=4, max_leaf_entries=4)
        points = rng.normal(0.0, 3.0, size=(300, 2))
        for point in points:
            tree.insert(point)
        total = sum(cf.n for _, cf in tree.leaf_entries())
        assert total == pytest.approx(300)

    def test_dimension_mismatch_rejected(self):
        tree = CFTree(threshold=1.0)
        tree.insert((0.0, 0.0))
        with pytest.raises(ValueError):
            tree.insert((0.0, 0.0, 0.0))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=6))
    def test_node_capacities_respected(self, branching, leaf_capacity):
        rng = np.random.default_rng(branching * 13 + leaf_capacity)
        tree = CFTree(
            threshold=0.2, branching_factor=branching, max_leaf_entries=leaf_capacity
        )
        for point in rng.uniform(-10, 10, size=(120, 2)):
            tree.insert(point)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert len(node) <= leaf_capacity
            else:
                assert len(node) <= branching
                assert len(node.children) == len(node.features)
                stack.extend(node.children)


class TestBirchClusterer:
    def _two_blob_points(self, n=150, seed=3):
        rng = np.random.default_rng(seed)
        a = rng.normal((0.0, 0.0), 0.3, size=(n, 2))
        b = rng.normal((8.0, 8.0), 0.3, size=(n, 2))
        return a, b

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Birch(n_macro_clusters=0)
        with pytest.raises(ValueError):
            Birch(macro_merge_factor=0.0)

    def test_two_blobs_agglomerative(self):
        a, b = self._two_blob_points()
        model = Birch(threshold=0.8)
        for point in np.vstack([a, b]):
            model.learn_one(point)
        model.request_clustering()
        assert model.n_clusters == 2
        assert model.predict_one((0.0, 0.0)) != model.predict_one((8.0, 8.0))

    def test_two_blobs_kmeans_offline(self):
        a, b = self._two_blob_points()
        model = Birch(threshold=0.8, n_macro_clusters=2)
        for point in np.vstack([a, b]):
            model.learn_one(point)
        assert model.n_clusters == 2
        assert model.predict_one((0.1, -0.1)) != model.predict_one((7.9, 8.1))

    def test_points_in_same_blob_share_label(self):
        a, b = self._two_blob_points()
        model = Birch(threshold=0.8)
        for point in np.vstack([a, b]):
            model.learn_one(point)
        labels = {model.predict_one(tuple(p)) for p in a[:20]}
        assert len(labels) == 1

    def test_empty_model_predicts_outlier(self):
        model = Birch()
        assert model.predict_one((0.0, 0.0)) == -1
        assert model.n_clusters == 0

    def test_structural_statistics(self):
        a, b = self._two_blob_points(n=100)
        model = Birch(threshold=0.5, branching_factor=4, max_leaf_entries=4)
        for point in np.vstack([a, b]):
            model.learn_one(point)
        assert model.n_leaf_entries >= 2
        assert model.tree_height >= 1

    def test_learn_one_returns_point_count(self):
        model = Birch()
        assert model.learn_one((0.0, 0.0)) == 1
        assert model.learn_one((0.1, 0.1)) == 2
