"""Tests for the shared transition types (repro.tracking.transitions)."""

import pytest
from hypothesis import given, strategies as st

from repro.tracking.transitions import (
    ClusterSnapshot,
    ExternalTransition,
    TransitionType,
    WeightedCluster,
    transition_counts,
)


class TestWeightedCluster:
    def test_default_weight_is_one(self):
        cluster = WeightedCluster(cluster_id="a", members=frozenset({1, 2, 3}))
        assert cluster.weight_of(1) == 1.0
        assert cluster.total_weight == pytest.approx(3.0)

    def test_explicit_weights(self):
        cluster = WeightedCluster(
            cluster_id="a", members=frozenset({1, 2}), weights={1: 0.5, 2: 0.25}
        )
        assert cluster.total_weight == pytest.approx(0.75)

    def test_overlap_weight_uses_own_weights(self):
        a = WeightedCluster(
            cluster_id="a", members=frozenset({1, 2, 3}), weights={1: 0.5, 2: 0.5, 3: 0.5}
        )
        b = WeightedCluster(cluster_id="b", members=frozenset({2, 3, 4}))
        assert a.overlap_weight(b) == pytest.approx(1.0)
        assert b.overlap_weight(a) == pytest.approx(2.0)

    def test_len(self):
        cluster = WeightedCluster(cluster_id=0, members=frozenset(range(5)))
        assert len(cluster) == 5

    def test_overlap_with_disjoint_cluster_is_zero(self):
        a = WeightedCluster(cluster_id="a", members=frozenset({1, 2}))
        b = WeightedCluster(cluster_id="b", members=frozenset({3, 4}))
        assert a.overlap_weight(b) == 0.0


class TestClusterSnapshot:
    def test_duplicate_cluster_ids_rejected(self):
        with pytest.raises(ValueError):
            ClusterSnapshot(
                time=0.0,
                clusters=[
                    WeightedCluster(cluster_id="a", members=frozenset({1})),
                    WeightedCluster(cluster_id="a", members=frozenset({2})),
                ],
            )

    def test_cluster_lookup(self):
        snapshot = ClusterSnapshot(
            time=1.0,
            clusters=[WeightedCluster(cluster_id="a", members=frozenset({1, 2}))],
        )
        assert snapshot.cluster("a").members == frozenset({1, 2})
        with pytest.raises(KeyError):
            snapshot.cluster("missing")

    def test_all_members_union(self):
        snapshot = ClusterSnapshot(
            time=0.0,
            clusters=[
                WeightedCluster(cluster_id="a", members=frozenset({1, 2})),
                WeightedCluster(cluster_id="b", members=frozenset({2, 3})),
            ],
        )
        assert snapshot.all_members() == frozenset({1, 2, 3})

    def test_from_assignment_excludes_noise(self):
        snapshot = ClusterSnapshot.from_assignment(
            time=0.0,
            assignment={1: "a", 2: "a", 3: -1, 4: "b"},
        )
        assert set(snapshot.cluster_ids()) == {"a", "b"}
        assert snapshot.cluster("a").members == frozenset({1, 2})
        assert 3 not in snapshot.all_members()

    def test_from_assignment_computes_centroid_and_dispersion(self):
        snapshot = ClusterSnapshot.from_assignment(
            time=0.0,
            assignment={1: "a", 2: "a"},
            locations={1: (0.0, 0.0), 2: (2.0, 0.0)},
        )
        cluster = snapshot.cluster("a")
        assert cluster.centroid == pytest.approx((1.0, 0.0))
        assert cluster.dispersion == pytest.approx(1.0)

    def test_from_assignment_weights_are_kept(self):
        snapshot = ClusterSnapshot.from_assignment(
            time=0.0,
            assignment={1: "a", 2: "a"},
            weights={1: 0.25, 2: 0.75},
        )
        assert snapshot.cluster("a").total_weight == pytest.approx(1.0)

    def test_empty_assignment_gives_empty_snapshot(self):
        snapshot = ClusterSnapshot.from_assignment(time=0.0, assignment={})
        assert len(snapshot) == 0
        assert snapshot.all_members() == frozenset()

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=-1, max_value=4),
            max_size=50,
        )
    )
    def test_from_assignment_partitions_non_noise_objects(self, assignment):
        snapshot = ClusterSnapshot.from_assignment(time=0.0, assignment=assignment)
        non_noise = {obj for obj, cid in assignment.items() if cid != -1}
        assert snapshot.all_members() == frozenset(non_noise)
        # Each object appears in exactly one cluster.
        seen = []
        for cluster in snapshot:
            seen.extend(cluster.members)
        assert len(seen) == len(set(seen))


class TestTransitionCounts:
    def test_counts_zero_filled(self):
        counts = transition_counts([])
        assert counts["survive"] == 0
        assert counts["split"] == 0

    def test_counts_accumulate(self):
        transitions = [
            ExternalTransition(transition_type=TransitionType.SPLIT, time=1.0),
            ExternalTransition(transition_type=TransitionType.SPLIT, time=2.0),
            ExternalTransition(transition_type=TransitionType.EMERGE, time=2.0),
        ]
        counts = transition_counts(transitions)
        assert counts["split"] == 2
        assert counts["emerge"] == 1

    def test_str_rendering(self):
        transition = ExternalTransition(
            transition_type=TransitionType.SURVIVE,
            time=3.0,
            old_clusters=("a",),
            new_clusters=("b",),
            overlap=0.8,
        )
        text = str(transition)
        assert "survive" in text
        assert "a" in text and "b" in text
