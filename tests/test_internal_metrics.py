"""Tests for the internal cluster quality metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.internal import (
    cluster_centroids,
    davies_bouldin_index,
    dunn_index,
    silhouette_score,
    sum_of_squared_errors,
    within_between_ratio,
)


def two_blobs(separation=10.0, spread=0.2, n=50, seed=0):
    """Two Gaussian blobs along the x axis with ground-truth labels."""
    rng = np.random.default_rng(seed)
    a = rng.normal((0.0, 0.0), spread, size=(n, 2))
    b = rng.normal((separation, 0.0), spread, size=(n, 2))
    points = np.vstack([a, b])
    labels = np.asarray([0] * n + [1] * n)
    return points, labels


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score([[0.0, 0.0]], [0, 1])

    def test_non_2d_points_rejected(self):
        with pytest.raises(ValueError):
            sum_of_squared_errors([0.0, 1.0], [0, 1])

    def test_noise_points_excluded(self):
        points = [[0.0, 0.0], [0.1, 0.0], [100.0, 100.0]]
        labels = [0, 0, -1]
        assert sum_of_squared_errors(points, labels) < 0.1


class TestCentroidsAndSSQ:
    def test_centroids(self):
        points = [[0.0, 0.0], [2.0, 0.0], [10.0, 10.0]]
        labels = [0, 0, 1]
        centroids = cluster_centroids(points, labels)
        assert centroids[0] == pytest.approx([1.0, 0.0])
        assert centroids[1] == pytest.approx([10.0, 10.0])

    def test_ssq_of_perfect_clustering_is_small(self):
        points, labels = two_blobs()
        good = sum_of_squared_errors(points, labels)
        bad = sum_of_squared_errors(points, np.zeros_like(labels))
        assert good < bad

    def test_ssq_empty(self):
        assert sum_of_squared_errors(np.empty((0, 2)), []) == 0.0

    def test_ssq_single_cluster_matches_variance(self):
        points = np.asarray([[0.0], [2.0], [4.0]])
        ssq = sum_of_squared_errors(points, [0, 0, 0])
        assert ssq == pytest.approx(8.0)


class TestSilhouette:
    def test_well_separated_blobs_score_high(self):
        points, labels = two_blobs()
        assert silhouette_score(points, labels) > 0.9

    def test_random_labels_score_low(self):
        points, labels = two_blobs()
        rng = np.random.default_rng(1)
        shuffled = rng.permutation(labels)
        assert silhouette_score(points, shuffled) < silhouette_score(points, labels)

    def test_single_cluster_returns_zero(self):
        points, _ = two_blobs()
        assert silhouette_score(points, np.zeros(len(points), dtype=int)) == 0.0

    def test_range_is_bounded(self):
        points, labels = two_blobs(separation=1.0, spread=1.0)
        value = silhouette_score(points, labels)
        assert -1.0 <= value <= 1.0

    def test_singleton_clusters_do_not_crash(self):
        points = [[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]]
        value = silhouette_score(points, [0, 1, 2])
        assert -1.0 <= value <= 1.0


class TestDaviesBouldin:
    def test_lower_for_better_clustering(self):
        points, labels = two_blobs()
        rng = np.random.default_rng(2)
        assert davies_bouldin_index(points, labels) < davies_bouldin_index(
            points, rng.permutation(labels)
        )

    def test_single_cluster_returns_zero(self):
        points, _ = two_blobs()
        assert davies_bouldin_index(points, np.zeros(len(points), dtype=int)) == 0.0

    def test_tighter_clusters_score_better(self):
        tight, labels = two_blobs(spread=0.1)
        loose, _ = two_blobs(spread=2.0)
        assert davies_bouldin_index(tight, labels) < davies_bouldin_index(loose, labels)


class TestDunn:
    def test_higher_for_better_separation(self):
        near, labels = two_blobs(separation=2.0)
        far, _ = two_blobs(separation=50.0)
        assert dunn_index(far, labels) > dunn_index(near, labels)

    def test_single_cluster_returns_zero(self):
        points, _ = two_blobs()
        assert dunn_index(points, np.zeros(len(points), dtype=int)) == 0.0

    def test_singleton_separated_clusters_are_infinite(self):
        points = [[0.0, 0.0], [10.0, 0.0]]
        assert dunn_index(points, [0, 1]) == math.inf


class TestWithinBetweenRatio:
    def test_good_clustering_has_small_ratio(self):
        points, labels = two_blobs()
        rng = np.random.default_rng(3)
        good = within_between_ratio(points, labels)
        bad = within_between_ratio(points, rng.permutation(labels))
        assert good < bad
        assert good < 0.2

    def test_single_cluster_returns_zero(self):
        points, _ = two_blobs()
        assert within_between_ratio(points, np.zeros(len(points), dtype=int)) == 0.0


class TestMetricConsistency:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.floats(2.0, 40.0))
    def test_all_metrics_prefer_true_labels_over_random(self, seed, separation):
        points, labels = two_blobs(separation=separation, spread=0.3, n=30, seed=seed)
        rng = np.random.default_rng(seed + 1)
        random_labels = rng.integers(0, 2, size=len(labels))
        if len(set(random_labels.tolist())) < 2:
            random_labels[0] = 1 - random_labels[0]
        assert silhouette_score(points, labels) >= silhouette_score(points, random_labels)
        assert davies_bouldin_index(points, labels) <= davies_bouldin_index(
            points, random_labels
        )

    def test_metrics_invariant_to_label_renaming(self):
        points, labels = two_blobs()
        renamed = np.where(labels == 0, 7, 3)
        assert silhouette_score(points, labels) == pytest.approx(
            silhouette_score(points, renamed)
        )
        assert dunn_index(points, labels) == pytest.approx(dunn_index(points, renamed))
        assert within_between_ratio(points, labels) == pytest.approx(
            within_between_ratio(points, renamed)
        )
