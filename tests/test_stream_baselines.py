"""Tests for the stream-clustering baselines (DenStream, D-Stream, DBSTREAM,
MR-Stream, CluStream, Periodic-DP)."""

import numpy as np
import pytest

from repro.baselines import (
    CluStream,
    DBStream,
    DenStream,
    DStream,
    MRStream,
    PeriodicDPStream,
    StreamClusterer,
)


def feed(algorithm, stream):
    for point in stream:
        algorithm.learn_one(point.values, timestamp=point.timestamp, label=point.label)
    algorithm.request_clustering()
    return algorithm


# Parameters are tuned for the small (200-point, 0.2-second) test streams:
# the grid-based algorithms derive their dense-grid thresholds from the
# steady-state total weight, which a short stream never reaches, so the tests
# use a faster decay and lower C_m than the full-scale benchmark defaults.
ALL_BASELINES = [
    lambda: DenStream(eps=0.5, mu=5.0, beta=0.3),
    lambda: DStream(grid_size=0.8, c_m=1.5, c_l=0.5, decay_a=0.5, decay_lambda=1.0),
    lambda: DBStream(radius=0.5, w_min=1.5, alpha_intersection=0.1),
    lambda: MRStream(bounds=(-2.0, 8.0), max_height=4, c_m=1.5, c_l=0.5,
                     decay_a=2.0, decay_lambda=-1.0),
    lambda: CluStream(n_micro_clusters=50, n_macro_clusters=2, horizon=10.0),
    lambda: PeriodicDPStream(radius=0.5, tau=2.0, beta=0.01, stream_rate=1000.0),
]


class TestCommonBehaviour:
    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_separates_two_blobs(self, factory, two_blob_stream):
        algorithm = feed(factory(), two_blob_stream)
        label_a = algorithm.predict_one((0.0, 0.0))
        label_b = algorithm.predict_one((6.0, 6.0))
        assert label_a != -1
        assert label_b != -1
        assert label_a != label_b

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_n_clusters_at_least_two_on_two_blobs(self, factory, two_blob_stream):
        algorithm = feed(factory(), two_blob_stream)
        assert algorithm.n_clusters >= 2

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_implements_stream_clusterer_interface(self, factory):
        algorithm = factory()
        assert isinstance(algorithm, StreamClusterer)
        assert isinstance(algorithm.name, str)

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_learn_many(self, factory, two_blob_stream):
        algorithm = factory()
        algorithm.learn_many(two_blob_stream.prefix(50))
        algorithm.request_clustering()
        assert algorithm.n_clusters >= 0  # no crash, clustering defined


class TestDenStream:
    def test_micro_cluster_promotion(self, two_blob_stream):
        algorithm = feed(DenStream(eps=0.5, mu=5.0, beta=0.3), two_blob_stream)
        assert algorithm.n_micro_clusters > 0

    def test_prune_removes_stale_outlier_micro_clusters(self):
        algorithm = DenStream(eps=0.3, mu=10.0, beta=0.5, decay_a=2.0, decay_lambda=1.0,
                              prune_interval=1.0)
        algorithm.learn_one((0.0, 0.0), timestamp=0.0)
        for i in range(200):
            algorithm.learn_one((50.0, 50.0), timestamp=5.0 + i * 0.01)
        assert algorithm.n_outlier_micro_clusters <= 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DenStream(eps=0.0)
        with pytest.raises(ValueError):
            DenStream(mu=0.0)
        with pytest.raises(ValueError):
            DenStream(beta=2.0)

    def test_radius_if_inserted_grows(self):
        from repro.baselines.denstream import MicroCluster

        mc = MicroCluster(dimension=2, creation_time=0.0)
        mc.insert(np.asarray([0.0, 0.0]), 0.0, 0.998)
        before = mc.radius
        after = mc.radius_if_inserted(np.asarray([1.0, 0.0]))
        assert after > before


class TestDStream:
    def test_grid_assignment(self):
        algorithm = DStream(grid_size=1.0)
        key = algorithm.learn_one((2.3, 4.7), timestamp=0.0)
        assert key == (2, 4)

    def test_sporadic_grid_removal(self):
        algorithm = DStream(grid_size=1.0, gap=1.0)
        algorithm.learn_one((0.0, 0.0), timestamp=0.0)
        for i in range(2000):
            algorithm.learn_one((10.0, 10.0), timestamp=1.0 + i * 0.01)
        assert algorithm.n_grids < 2000

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DStream(grid_size=0.0)
        with pytest.raises(ValueError):
            DStream(c_m=0.5)
        with pytest.raises(ValueError):
            DStream(c_l=1.5)


class TestDBStream:
    def test_micro_clusters_created(self, two_blob_stream):
        algorithm = feed(DBStream(radius=0.5), two_blob_stream)
        assert algorithm.n_micro_clusters > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DBStream(radius=0.0)
        with pytest.raises(ValueError):
            DBStream(alpha_intersection=1.5)
        with pytest.raises(ValueError):
            DBStream(learning_rate=0.0)


class TestMRStream:
    def test_cells_created_at_every_resolution(self, two_blob_stream):
        algorithm = MRStream(bounds=(-2.0, 8.0), max_height=3)
        algorithm.learn_one((0.0, 0.0), timestamp=0.0)
        assert algorithm.n_cells == 3

    def test_out_of_bounds_points_are_clamped(self):
        algorithm = MRStream(bounds=(0.0, 1.0), max_height=3)
        key = algorithm.learn_one((5.0, -5.0), timestamp=0.0)
        assert all(0 <= k < 2 ** 3 for k in key)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MRStream(bounds=(1.0, 0.0))
        with pytest.raises(ValueError):
            MRStream(max_height=0)
        with pytest.raises(ValueError):
            MRStream(max_height=3, clustering_height=5)


class TestCluStream:
    def test_micro_cluster_budget_is_respected(self, two_blob_stream):
        algorithm = feed(CluStream(n_micro_clusters=10, n_macro_clusters=2), two_blob_stream)
        assert algorithm.n_micro <= 10

    def test_merge_path_when_no_outdated_cluster(self):
        algorithm = CluStream(n_micro_clusters=3, n_macro_clusters=2, horizon=1e9)
        for i in range(20):
            algorithm.learn_one((float(i * 10), 0.0), timestamp=float(i))
        assert algorithm.n_micro <= 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CluStream(n_micro_clusters=1)
        with pytest.raises(ValueError):
            CluStream(n_macro_clusters=0)
        with pytest.raises(ValueError):
            CluStream(horizon=0.0)


class TestPeriodicDP:
    def test_same_summarisation_as_edmstream(self, two_blob_stream):
        algorithm = feed(
            PeriodicDPStream(radius=0.5, tau=2.0, beta=0.01, stream_rate=1000.0),
            two_blob_stream,
        )
        assert algorithm.n_cells > 0
        assert algorithm.n_clusters == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PeriodicDPStream(radius=0.0)
        with pytest.raises(ValueError):
            PeriodicDPStream(tau=0.0)
