"""Tests for batch Density Peaks clustering (Section 2.1) and the decision graph."""

import numpy as np
import pytest

from repro.dp import DecisionGraph, DensityPeaks, decision_graph_from_result


@pytest.fixture
def blobs():
    rng = np.random.default_rng(11)
    a = rng.normal((0.0, 0.0), 0.3, size=(80, 2))
    b = rng.normal((5.0, 5.0), 0.3, size=(80, 2))
    data = np.vstack([a, b])
    labels = np.asarray([0] * 80 + [1] * 80)
    return data, labels


class TestDensityPeaks:
    def test_two_blobs_two_clusters(self, blobs):
        data, labels = blobs
        result = DensityPeaks(n_clusters=2, dc=0.5).fit(data)
        assert result.n_clusters == 2
        # Points in the same blob share a label; the two blobs differ.
        assert result.labels[0] == result.labels[5]
        assert result.labels[0] != result.labels[100]

    def test_tau_based_peak_selection(self, blobs):
        data, _ = blobs
        result = DensityPeaks(tau=2.0, dc=0.5).fit(data)
        assert result.n_clusters == 2

    def test_labels_follow_the_dependency_chain(self, blobs):
        data, _ = blobs
        result = DensityPeaks(n_clusters=2, dc=0.5).fit(data)
        for i in range(len(data)):
            parent = result.dependency[i]
            if parent == -1 or result.labels[i] == -1 or i in result.peaks:
                # Peaks start their own cluster even though their dependency
                # points into another density mountain (that is what makes
                # them peaks).
                continue
            assert result.labels[i] == result.labels[parent]

    def test_global_peak_has_max_delta(self, blobs):
        data, _ = blobs
        result = DensityPeaks(n_clusters=2, dc=0.5).fit(data)
        top = int(np.argmax(result.rho))
        assert result.dependency[top] == -1
        assert result.delta[top] == pytest.approx(result.delta.max())

    def test_dependency_points_to_denser_point(self, blobs):
        data, _ = blobs
        result = DensityPeaks(n_clusters=2, dc=0.5).fit(data)
        for i, parent in enumerate(result.dependency):
            if parent >= 0:
                assert result.rho[parent] >= result.rho[i]

    def test_outliers_marked_with_xi(self):
        rng = np.random.default_rng(0)
        dense = rng.normal((0, 0), 0.2, size=(100, 2))
        isolated = np.asarray([[50.0, 50.0]])
        data = np.vstack([dense, isolated])
        result = DensityPeaks(n_clusters=1, xi=0.5, dc=1.0).fit(data)
        assert result.labels[-1] == -1

    def test_gaussian_kernel(self, blobs):
        data, _ = blobs
        result = DensityPeaks(n_clusters=2, kernel="gaussian", dc=0.5).fit(data)
        assert result.n_clusters == 2
        assert np.all(result.rho >= 0)

    def test_members_helper(self, blobs):
        data, _ = blobs
        result = DensityPeaks(n_clusters=2, dc=0.5).fit(data)
        total = sum(len(result.members(peak)) for peak in result.peaks)
        assert total == np.sum(result.labels != -1)

    def test_empty_input(self):
        result = DensityPeaks(n_clusters=2).fit(np.empty((0, 2)))
        assert result.n_clusters == 0
        assert result.labels.size == 0

    def test_fit_predict_matches_fit(self, blobs):
        data, _ = blobs
        clusterer = DensityPeaks(n_clusters=2, dc=0.5)
        assert np.array_equal(clusterer.fit_predict(data), clusterer.fit(data).labels)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DensityPeaks(dc=-1.0)
        with pytest.raises(ValueError):
            DensityPeaks(kernel="box")
        with pytest.raises(ValueError):
            DensityPeaks(n_clusters=0)
        with pytest.raises(ValueError):
            DensityPeaks(dc_percentile=0.0)


class TestDecisionGraph:
    def test_peaks_selection(self):
        graph = DecisionGraph(rho=[10.0, 8.0, 1.0], delta=[5.0, 4.0, 0.1])
        assert graph.peaks(xi=0.5, tau=1.0) == [0, 1]
        assert graph.n_peaks(xi=0.5, tau=4.5) == 1

    def test_gamma_ranking(self):
        graph = DecisionGraph(rho=[10.0, 2.0, 8.0], delta=[5.0, 0.1, 4.0])
        assert graph.gamma_ranking()[0] == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DecisionGraph(rho=[1.0], delta=[1.0, 2.0])

    def test_render_produces_ascii(self):
        graph = DecisionGraph(rho=[10.0, 8.0, 1.0], delta=[5.0, 4.0, 0.1])
        art = graph.render(width=30, height=10, tau=2.0)
        assert "*" in art and "-" in art and "rho" in art

    def test_render_empty(self):
        assert "empty" in DecisionGraph(rho=[], delta=[]).render()

    def test_from_density_peaks_result(self):
        rng = np.random.default_rng(1)
        data = np.vstack(
            [rng.normal((0, 0), 0.3, size=(50, 2)), rng.normal((4, 4), 0.3, size=(50, 2))]
        )
        result = DensityPeaks(n_clusters=2, dc=0.5).fit(data)
        graph = decision_graph_from_result(result)
        assert len(graph) == 100
        suggested = graph.suggest_tau()
        assert suggested > 0


class TestAgreementWithEDMStream:
    def test_static_data_gives_same_macro_structure(self, two_blob_points):
        """On a static, well-separated dataset the streaming DP-Tree clustering
        and the batch DP clustering must find the same two groups."""
        from repro import EDMStream

        values, labels = two_blob_points
        batch = DensityPeaks(n_clusters=2, dc=0.5).fit(values)

        model = EDMStream(radius=0.5, init_size=50, beta=0.001, stream_rate=1000.0)
        for i, row in enumerate(values):
            model.learn_one(tuple(row), timestamp=i / 1000.0)
        assert model.n_clusters == 2

        # Both assign the two blob centres to different clusters.
        stream_a = model.predict_one((0.0, 0.0))
        stream_b = model.predict_one((6.0, 6.0))
        batch_a = batch.labels[np.argmin(np.linalg.norm(values - np.asarray([0.0, 0.0]), axis=1))]
        batch_b = batch.labels[np.argmin(np.linalg.norm(values - np.asarray([6.0, 6.0]), axis=1))]
        assert (stream_a != stream_b) and (batch_a != batch_b)
