"""Tests for the MEC bipartite-graph transition tracker."""

import pytest

from repro.tracking.mec import MECTracker
from repro.tracking.transitions import ClusterSnapshot, TransitionType, WeightedCluster


def snapshot(time, **clusters):
    return ClusterSnapshot(
        time=time,
        clusters=[
            WeightedCluster(cluster_id=name, members=frozenset(members))
            for name, members in clusters.items()
        ],
    )


class TestConstruction:
    def test_invalid_edge_threshold(self):
        with pytest.raises(ValueError):
            MECTracker(edge_threshold=0.0)
        with pytest.raises(ValueError):
            MECTracker(edge_threshold=1.2)

    def test_survival_threshold_must_dominate_edge_threshold(self):
        with pytest.raises(ValueError):
            MECTracker(edge_threshold=0.5, survival_threshold=0.3)

    def test_first_snapshot_emits_births(self):
        tracker = MECTracker()
        transitions = tracker.observe(snapshot(0.0, a={1}, b={2}))
        assert {t.transition_type for t in transitions} == {TransitionType.EMERGE}
        assert len(transitions) == 2


class TestTransitionGraph:
    def test_graph_edges_carry_conditional_probabilities(self):
        tracker = MECTracker(edge_threshold=0.1)
        old = snapshot(0.0, a={1, 2, 3, 4})
        new = snapshot(1.0, x={1, 2, 3}, y={4, 5})
        edges = tracker.build_graph(old, new)
        by_target = {e.new_cluster: e for e in edges}
        assert by_target["x"].forward == pytest.approx(0.75)
        assert by_target["x"].backward == pytest.approx(1.0)
        assert by_target["y"].forward == pytest.approx(0.25)
        assert by_target["y"].shared == 1

    def test_edges_below_threshold_are_dropped(self):
        tracker = MECTracker(edge_threshold=0.5)
        old = snapshot(0.0, a={1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
        new = snapshot(1.0, x={1, 2, 3, 4, 5, 6, 7, 8, 9}, y={10, 11, 12, 13})
        edges = tracker.build_graph(old, new)
        # a -> y is only 0.1 forward and 0.25 backward: below threshold.
        assert {(e.old_cluster, e.new_cluster) for e in edges} == {("a", "x")}

    def test_graphs_are_recorded_per_observation(self):
        tracker = MECTracker()
        tracker.observe(snapshot(0.0, a={1, 2}))
        tracker.observe(snapshot(1.0, b={1, 2}))
        assert len(tracker.graphs) == 2
        assert tracker.graphs[1][1]  # second observation has edges


class TestTransitions:
    def test_survival(self):
        tracker = MECTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3, 4}))
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 3, 5}))
        survive = [t for t in transitions if t.transition_type == TransitionType.SURVIVE]
        assert len(survive) == 1
        assert survive[0].overlap == pytest.approx(0.75)

    def test_split(self):
        tracker = MECTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3, 4, 5, 6}))
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 3}, y={4, 5, 6}))
        splits = [t for t in transitions if t.transition_type == TransitionType.SPLIT]
        assert len(splits) == 1
        assert set(splits[0].new_clusters) == {"x", "y"}

    def test_merge(self):
        tracker = MECTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3}, b={4, 5, 6}))
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 3, 4, 5, 6}))
        merges = [t for t in transitions if t.transition_type == TransitionType.ABSORB]
        assert len(merges) == 1
        assert set(merges[0].old_clusters) == {"a", "b"}

    def test_death(self):
        tracker = MECTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3}, b={10, 11}))
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 3}))
        deaths = [t for t in transitions if t.transition_type == TransitionType.DISAPPEAR]
        assert len(deaths) == 1
        assert deaths[0].old_clusters == ("b",)

    def test_birth(self):
        tracker = MECTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3}))
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 3}, fresh={50, 51}))
        births = [t for t in transitions if t.transition_type == TransitionType.EMERGE]
        assert len(births) == 1
        assert births[0].new_clusters == ("fresh",)

    def test_counts(self):
        tracker = MECTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3}, b={4, 5, 6}))
        tracker.observe(snapshot(1.0, x={1, 2, 3, 4, 5, 6}))
        counts = tracker.counts()
        assert counts["absorb"] == 1
        assert sum(counts.values()) == len(tracker.transitions)

    def test_transitions_of_type(self):
        tracker = MECTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3}))
        tracker.observe(snapshot(1.0, x={1, 2, 3}))
        assert tracker.transitions_of_type(TransitionType.SURVIVE)
        assert tracker.transitions_of_type(TransitionType.SPLIT) == []

    def test_agreement_with_monic_on_clean_sequence(self):
        """MEC and MONIC should agree on an unambiguous merge-then-split story."""
        from repro.tracking.monic import MonicTracker

        snapshots = [
            snapshot(0.0, a={1, 2, 3}, b={4, 5, 6}),
            snapshot(1.0, m={1, 2, 3, 4, 5, 6}),
            snapshot(2.0, p={1, 2, 3}, q={4, 5, 6}),
        ]
        mec = MECTracker()
        monic = MonicTracker()
        for snap in snapshots:
            mec.observe(snap)
            monic.observe(snap)
        assert mec.counts()["absorb"] == monic.counts()["absorb"] == 1
        assert mec.counts()["split"] == monic.counts()["split"] == 1
