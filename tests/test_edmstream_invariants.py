"""Property-based invariant tests for EDMStream.

These use hypothesis to generate small random streams and assert structural
invariants that must hold after any sequence of arrivals:

* the DP-Tree is a consistent, acyclic forest;
* every dependency points to a cell with (weakly) higher timely density;
* the vectorised cell-store caches stay coherent with the cell objects;
* the MSDSubTree extraction partitions the active cells;
* every cell lives in exactly one of {DP-Tree, outlier reservoir}.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import EDMStream


point_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=10.0),
    ),
    min_size=5,
    max_size=120,
)


def build_model(points, **kwargs):
    params = dict(radius=0.8, init_size=5, beta=0.01, stream_rate=100.0)
    params.update(kwargs)
    model = EDMStream(**params)
    for i, values in enumerate(points):
        model.learn_one(values, timestamp=i / 100.0)
    return model


@settings(max_examples=25, deadline=None)
@given(point_lists)
def test_tree_structure_is_consistent(points):
    model = build_model(points)
    model.tree.validate()


@settings(max_examples=25, deadline=None)
@given(point_lists)
def test_dependencies_point_to_denser_cells(points):
    model = build_model(points)
    now = model.now
    for cell in model.tree.cells():
        if cell.dependency is None or cell.dependency not in model.tree:
            continue
        parent = model.tree.get(cell.dependency)
        rho_child = cell.density_at(now, model.decay)
        rho_parent = parent.density_at(now, model.decay)
        assert (rho_parent > rho_child) or (
            rho_parent == pytest.approx(rho_child) and parent.cell_id < cell.cell_id
        ), "dependency must have (weakly) higher density"


@settings(max_examples=25, deadline=None)
@given(point_lists)
def test_cell_store_caches_stay_coherent(points):
    model = build_model(points)
    model._active.validate(model.decay)
    model._inactive.validate(model.decay)


@settings(max_examples=25, deadline=None)
@given(point_lists)
def test_clusters_partition_active_cells(points):
    model = build_model(points)
    clusters = model.clusters()
    members = [cid for cluster in clusters.values() for cid in cluster]
    assert sorted(members) == sorted(model.tree.cell_ids())
    assert len(members) == len(set(members)), "no cell may appear in two clusters"


@settings(max_examples=25, deadline=None)
@given(point_lists)
def test_every_cell_is_active_xor_inactive(points):
    model = build_model(points)
    active_ids = set(model.tree.cell_ids())
    inactive_ids = {cell.cell_id for cell in model.reservoir.cells()}
    assert not (active_ids & inactive_ids)
    assert len(model._active) == len(active_ids)
    assert len(model._inactive) == len(inactive_ids)


@settings(max_examples=25, deadline=None)
@given(point_lists)
def test_deltas_match_distance_to_dependency(points):
    model = build_model(points)
    for cell in model.tree.cells():
        if cell.dependency is None or cell.dependency not in model.tree:
            assert cell.delta == math.inf
            continue
        parent = model.tree.get(cell.dependency)
        distance = math.dist(cell.seed, parent.seed)
        assert cell.delta == pytest.approx(distance, rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(point_lists)
def test_dependent_distance_is_minimal_over_denser_cells(points):
    """δ must be the distance to the *nearest* higher-density cell (Eq. 7)."""
    model = build_model(points)
    now = model.now
    cells = list(model.tree.cells())
    for cell in cells:
        rho = cell.density_at(now, model.decay)
        best = math.inf
        for other in cells:
            if other.cell_id == cell.cell_id:
                continue
            rho_other = other.density_at(now, model.decay)
            higher = rho_other > rho or (rho_other == rho and other.cell_id < cell.cell_id)
            if higher:
                best = min(best, math.dist(cell.seed, other.seed))
        if best == math.inf:
            assert cell.dependency is None or cell.dependency not in model.tree
        else:
            assert cell.delta == pytest.approx(best, rel=1e-6)


@settings(max_examples=15, deadline=None)
@given(point_lists, st.floats(min_value=0.2, max_value=3.0))
def test_number_of_clusters_monotone_in_tau(points, tau):
    """A larger τ can only merge clusters, never create more of them."""
    model = build_model(points, adaptive_tau=False, tau=1.0)
    small = model.tree.num_clusters(tau)
    large = model.tree.num_clusters(tau * 2.0)
    assert large <= small
