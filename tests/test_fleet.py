"""Tests for the fleet run-matrix executor (:mod:`repro.harness.fleet`).

Covers the declarative planning layer (registry/tag/config expansion, run
ids, fingerprints), the durable execution layer (result directories,
metadata, resume semantics, gates, artifact consolidation), the crash
story (a worker SIGKILLed mid-matrix leaves an invalid directory that a
``--resume`` pass re-executes, with byte-identical consolidated
artifacts), and the field-compatibility of the consolidated
``BENCH_*.json`` payloads with the pre-fleet per-script outputs.
"""

import json
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.harness import fleet, registry
from repro.harness.fleet import FleetRunner, PlannedRun, RunMatrix
from repro.harness.registry import BenchContract
from repro.harness.results import ExperimentResult

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"


def _toy_result(experiment_id: str, value: int) -> ExperimentResult:
    result = ExperimentResult(experiment_id=experiment_id, description="toy")
    result.add_table("summary", [{"value": value}])
    result.metadata["value"] = value
    return result


def _toy_factory(experiment_id: str):
    def run(points, seed=None, scale=1, **kw):
        return _toy_result(experiment_id, scale * ((points or 3) * 10 + (seed or 0)))

    return run


@pytest.fixture
def toy_specs():
    """Register small in-process specs; the registry is restored afterwards."""
    registry.all_experiments()  # materialise the defaults first
    registry.register("_toy_plain", "toy", _toy_factory("_toy_plain"), tags=("toy",))
    registry.register(
        "_toy_art",
        "toy with an artifact contract",
        _toy_factory("_toy_art"),
        tags=("toy",),
        bench=BenchContract(
            params=lambda: {"points": 5},
            artifact="BENCH_toy.json",
            payload=lambda result: {
                "experiment": result.experiment_id,
                "value": result.metadata["value"],
                "rows": result.tables["summary"],
            },
            gate=lambda result: None,
        ),
    )
    registry.register(
        "_toy_grid",
        "toy with a default grid",
        _toy_factory("_toy_grid"),
        tags=("toy",),
        grid={"scale": (1, 100)},
    )
    yield
    for experiment_id in ("_toy_plain", "_toy_art", "_toy_grid"):
        registry._REGISTRY.pop(experiment_id, None)


# --------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------- #
class TestPlanning:
    def test_bench_tag_is_the_ci_matrix(self):
        assert sorted(registry.experiments_with_tag("bench")) == [
            "fig10_batch",
            "memory",
            "obs",
            "query",
            "serve",
        ]

    def test_from_registry_expands_tags_and_grids(self, toy_specs):
        matrix = RunMatrix.from_registry(name="toys", tags=("toy",))
        by_id = {}
        for run in matrix.runs:
            by_id.setdefault(run.experiment_id, []).append(run)
        assert sorted(by_id) == ["_toy_art", "_toy_grid", "_toy_plain"]
        # grid specs expand to one non-canonical run per combination
        grid_runs = by_id["_toy_grid"]
        assert [run.params["scale"] for run in grid_runs] == [1, 100]
        assert all(not run.canonical for run in grid_runs)
        assert grid_runs[0].run_id == "_toy_grid--scale=1"
        # contract params are resolved at planning time ("points" lifted out)
        (art,) = by_id["_toy_art"]
        assert art.canonical and art.points == 5 and art.artifact == "BENCH_toy.json"

    def test_run_id_slugs_points_and_seed(self):
        run_id = fleet._run_id("x", {"n_queries": 100}, points=500, seed=7)
        assert run_id == "x--n_queries=100--points=500--seed=7"

    def test_fingerprint_tracks_inputs(self):
        run = PlannedRun(run_id="r", experiment_id="x", points=10, seed=1)
        same = PlannedRun(run_id="other", experiment_id="x", points=10, seed=1)
        other = PlannedRun(run_id="r", experiment_id="x", points=10, seed=2)
        assert run.fingerprint() == same.fingerprint()
        assert run.fingerprint() != other.fingerprint()

    def test_from_mapping_defaults_grid_and_dedupe(self, toy_specs):
        matrix = RunMatrix.from_mapping(
            {
                "name": "nightly",
                "defaults": {"points": 7, "seed": 3},
                "runs": [
                    {"id": "_toy_plain", "grid": {"scale": [2, 4]}},
                    {"tag": "toy", "points": 9},
                ],
            }
        )
        assert matrix.name == "nightly"
        by_id = {run.run_id: run for run in matrix.runs}
        assert by_id["_toy_plain--scale=2--points=7--seed=3"].params["scale"] == 2
        # the tag entry contributes each toy spec once at points=9
        assert by_id["_toy_plain--points=9--seed=3"].points == 9
        assert by_id["_toy_art--points=9--seed=3"].seed == 3

    def test_from_file_json_and_filter(self, toy_specs, tmp_path):
        config = tmp_path / "matrix.json"
        config.write_text(
            json.dumps({"runs": [{"id": "_toy_plain"}, {"id": "_toy_art"}]})
        )
        matrix = RunMatrix.from_file(config)
        assert matrix.name == "matrix"  # falls back to the file stem
        assert len(matrix) == 2
        kept = matrix.filter(ids=("_toy_art",))
        assert [run.experiment_id for run in kept.runs] == ["_toy_art"]

    def test_from_file_toml(self, toy_specs, tmp_path):
        pytest.importorskip("tomllib")
        config = tmp_path / "matrix.toml"
        config.write_text(
            textwrap.dedent(
                """
                name = "tomltest"
                [[runs]]
                id = "_toy_plain"
                points = 4
                """
            )
        )
        matrix = RunMatrix.from_file(config)
        assert matrix.name == "tomltest"
        assert matrix.runs[0].points == 4


# --------------------------------------------------------------------- #
# Execution (inline pool, jobs=0)
# --------------------------------------------------------------------- #
class TestExecution:
    def _runner(self, tmp_path, ids, **kw):
        matrix = RunMatrix.from_registry(name="t", ids=ids, seed=kw.pop("seed", None))
        return FleetRunner(
            matrix,
            results_root=tmp_path / "results",
            jobs=0,
            artifacts_dir=tmp_path / "artifacts",
            **kw,
        )

    def test_durable_dirs_seed_metadata_and_artifact(self, toy_specs, tmp_path):
        runner = self._runner(tmp_path, ["_toy_art"], seed=13)
        report = runner.execute(echo=lambda *_: None)
        assert report.ok
        (outcome,) = report.outcomes
        assert outcome.status == "ok" and outcome.gate_passed is True
        directory = outcome.directory
        assert (directory / "report.txt").is_file()
        metadata = json.loads((directory / "metadata.json").read_text())
        assert metadata["seed"] == 13
        assert metadata["experiment_id"] == "_toy_art"
        assert metadata["fingerprint"] == outcome.run.fingerprint()
        assert metadata["status"] == "ok"
        # result.json round-trips to the same payload the driver produced
        stored = ExperimentResult.from_payload(
            json.loads((directory / "result.json").read_text())
        )
        assert stored.metadata["value"] == 5 * 10 + 13
        artifact = json.loads((tmp_path / "artifacts" / "BENCH_toy.json").read_text())
        assert artifact == {
            "experiment": "_toy_art",
            "value": 63,
            "rows": [{"value": 63}],
        }

    def test_resume_skips_valid_and_redoes_partial(self, toy_specs, tmp_path):
        runner = self._runner(tmp_path, ["_toy_art", "_toy_plain"])
        report = runner.execute(echo=lambda *_: None)
        assert report.ok
        art_dir = report.outcomes[0].directory
        plain_dir = report.outcomes[1].directory
        mtime = (art_dir / "metadata.json").stat().st_mtime_ns
        # simulate a crash on _toy_plain: metadata.json never landed
        (plain_dir / "metadata.json").unlink()

        resumed = self._runner(tmp_path, ["_toy_art", "_toy_plain"], resume=True)
        report = resumed.execute(echo=lambda *_: None)
        assert report.ok
        statuses = {o.run.experiment_id: o.status for o in report.outcomes}
        assert statuses == {"_toy_art": "resumed", "_toy_plain": "ok"}
        # the completed directory was not touched, the partial one was redone
        assert (art_dir / "metadata.json").stat().st_mtime_ns == mtime
        assert (plain_dir / "metadata.json").is_file()
        # the artifact is rebuilt from the stored result even for resumed runs
        assert (tmp_path / "artifacts" / "BENCH_toy.json").is_file()

    def test_resume_invalidates_stale_fingerprint(self, toy_specs, tmp_path):
        runner = self._runner(tmp_path, ["_toy_plain"])
        report = runner.execute(echo=lambda *_: None)
        directory = report.outcomes[0].directory
        metadata = json.loads((directory / "metadata.json").read_text())
        metadata["fingerprint"] = "0" * 16
        (directory / "metadata.json").write_text(json.dumps(metadata))

        resumed = self._runner(tmp_path, ["_toy_plain"], resume=True)
        report = resumed.execute(echo=lambda *_: None)
        assert report.outcomes[0].status == "ok"  # re-ran, not "resumed"

    def test_without_resume_existing_dirs_are_wiped(self, toy_specs, tmp_path):
        runner = self._runner(tmp_path, ["_toy_plain"])
        report = runner.execute(echo=lambda *_: None)
        directory = report.outcomes[0].directory
        (directory / "stale.marker").write_text("old")
        report = self._runner(tmp_path, ["_toy_plain"]).execute(echo=lambda *_: None)
        assert report.outcomes[0].status == "ok"
        assert not (directory / "stale.marker").exists()

    def test_failed_run_and_gate_failure_fail_the_report(self, tmp_path):
        registry.all_experiments()
        registry.register(
            "_toy_err",
            "always raises",
            lambda points, **kw: (_ for _ in ()).throw(ValueError("boom")),
        )
        registry.register(
            "_toy_badgate",
            "gate always fails",
            _toy_factory("_toy_badgate"),
            bench=BenchContract(
                gate=lambda result: (_ for _ in ()).throw(
                    AssertionError("below threshold")
                )
            ),
        )
        try:
            report = self._runner(tmp_path, ["_toy_err"]).execute(echo=lambda *_: None)
            assert not report.ok
            assert report.outcomes[0].status == "failed"
            assert "ValueError" in report.outcomes[0].error

            report = self._runner(tmp_path, ["_toy_badgate"]).execute(
                echo=lambda *_: None
            )
            assert not report.ok
            outcome = report.outcomes[0]
            assert outcome.status == "ok" and outcome.gate_passed is False
            assert "below threshold" in outcome.gate_error
        finally:
            registry._REGISTRY.pop("_toy_err", None)
            registry._REGISTRY.pop("_toy_badgate", None)

    def test_worker_pool_executes_and_resumes(self, toy_specs, tmp_path):
        """The ProcessPoolExecutor path (fork-inherited registry) works too."""
        runner = self._runner(tmp_path, ["_toy_art", "_toy_plain"])
        runner.jobs = 2
        report = runner.execute(echo=lambda *_: None)
        assert report.ok
        assert {o.status for o in report.outcomes} == {"ok"}


# --------------------------------------------------------------------- #
# Crash / resume end-to-end through the CLI
# --------------------------------------------------------------------- #
CRASH_MODULE = '''
"""Registry extras for the fleet crash-resume test (REPRO_REGISTRY_EXTRA)."""
import os
import signal

from repro.harness import registry
from repro.harness.registry import BenchContract
from repro.harness.results import ExperimentResult


def _result(experiment_id, value):
    result = ExperimentResult(experiment_id=experiment_id, description="crash toy")
    result.add_table("summary", [{"value": value}])
    result.metadata["value"] = value
    return result


def _factory(experiment_id, crash=False):
    def run(points, seed=None, **kw):
        if crash:
            marker = os.environ.get("FLEET_CRASH_MARKER")
            if marker and os.path.exists(marker):
                os.remove(marker)
                os.kill(os.getpid(), signal.SIGKILL)
        return _result(experiment_id, (points or 3) * 10 + (seed or 0))

    return run


registry.register(
    "crash_a", "completes before the crash", _factory("crash_a"), tags=("crash",)
)
registry.register(
    "crash_boom",
    "SIGKILLs its own worker while the marker file exists",
    _factory("crash_boom", crash=True),
    tags=("crash",),
    bench=BenchContract(
        params=lambda: {"points": 5},
        artifact="BENCH_crash.json",
        payload=lambda result: {
            "experiment": result.experiment_id,
            "value": result.metadata["value"],
            "rows": result.tables["summary"],
        },
    ),
)
registry.register(
    "crash_z", "queued behind the crash", _factory("crash_z"), tags=("crash",)
)
'''


class TestCrashResume:
    def _fleet(self, tmp_path, name, *extra_args, marker=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(SRC_DIR), str(tmp_path)])
        env["REPRO_REGISTRY_EXTRA"] = "fleet_crash_exp"
        if marker is not None:
            env["FLEET_CRASH_MARKER"] = str(marker)
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "fleet",
                "run",
                "--tag",
                "crash",
                "--name",
                name,
                "--jobs",
                "1",
                "--seed",
                "4",
                "--results-dir",
                str(tmp_path / "results"),
                "--artifacts-dir",
                str(tmp_path / f"artifacts-{name}"),
                *extra_args,
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
            cwd=str(REPO_ROOT),
        )

    def test_sigkill_mid_matrix_then_resume_matches_uninterrupted(self, tmp_path):
        (tmp_path / "fleet_crash_exp.py").write_text(CRASH_MODULE)
        marker = tmp_path / "crash.marker"
        marker.write_text("arm")

        # 1) the armed run: crash_a completes, crash_boom SIGKILLs the only
        #    worker, crash_z never runs -> nonzero exit, partial directory
        first = self._fleet(tmp_path, "crashed", marker=marker)
        assert first.returncode == 1, first.stdout + first.stderr
        assert "worker pool broke" in first.stdout
        assert not marker.exists()  # the crash consumed its arming marker
        matrix_dir = tmp_path / "results" / "crashed"
        a_meta = matrix_dir / "crash_a--seed=4" / "metadata.json"
        assert a_meta.is_file()
        boom_dir = matrix_dir / "crash_boom--seed=4"
        assert boom_dir.exists() and not (boom_dir / "metadata.json").exists()
        assert not (tmp_path / "artifacts-crashed" / "BENCH_crash.json").exists()
        a_mtime = a_meta.stat().st_mtime_ns

        # 2) --resume: the completed run is skipped, the partial and missing
        #    runs execute, the matrix goes green
        second = self._fleet(tmp_path, "crashed", "--resume", marker=None)
        assert second.returncode == 0, second.stdout + second.stderr
        assert "resume: skipping completed crash_a--seed=4" in second.stdout
        assert "partial/stale, re-running" in second.stdout
        assert a_meta.stat().st_mtime_ns == a_mtime
        assert (boom_dir / "metadata.json").is_file()
        resumed_artifact = (
            tmp_path / "artifacts-crashed" / "BENCH_crash.json"
        ).read_text()

        # 3) an uninterrupted run of the same matrix produces byte-identical
        #    consolidated artifacts
        clean = self._fleet(tmp_path, "clean", marker=None)
        assert clean.returncode == 0, clean.stdout + clean.stderr
        clean_artifact = (tmp_path / "artifacts-clean" / "BENCH_crash.json").read_text()
        assert resumed_artifact == clean_artifact

        # the seed is recorded in every run's metadata
        metadata = json.loads(a_meta.read_text())
        assert metadata["seed"] == 4


# --------------------------------------------------------------------- #
# Artifact schema compatibility with the pre-fleet bench scripts
# --------------------------------------------------------------------- #
class TestArtifactSchemas:
    """The consolidated payloads keep the exact fields CI gated on before."""

    def test_throughput_payload_fields(self):
        from repro.harness import gates

        result = ExperimentResult("fig10_batch", "x")
        result.metadata.update(n_points=16000, batch_sizes=[64, 256])
        result.add_table("summary", [])
        assert sorted(gates.payload_fig10_batch(result)) == [
            "batch_sizes",
            "experiment",
            "min_speedup_required_on_synthetic",
            "n_points",
            "rows",
        ]
        assert gates.payload_fig10_batch(result)["experiment"] == "fig10_batch_ingestion"

    def test_query_payload_fields(self):
        from repro.harness import gates

        result = ExperimentResult("query", "x")
        result.metadata.update(n_points=1, n_queries=2, snapshot={"cells": 3})
        result.add_table("summary", [])
        assert sorted(gates.payload_query(result)) == [
            "experiment",
            "min_speedup_required_at_largest_batch",
            "n_points",
            "n_queries",
            "rows",
            "snapshot",
        ]
        assert gates.payload_query(result)["experiment"] == "query_throughput"

    def test_serving_payload_fields(self):
        from repro.harness import gates

        result = ExperimentResult("serve", "x")
        result.metadata.update(n_points=1, query_batch=2, measure_s=0.5)
        result.add_table("summary", [])
        assert sorted(gates.payload_serve(result)) == [
            "experiment",
            "measure_s",
            "min_qps_required",
            "min_scaling_required_at_4_workers",
            "n_points",
            "query_batch",
            "rows",
        ]
        assert gates.payload_serve(result)["experiment"] == "serving"

    def test_memory_payload_fields(self):
        from repro.harness import gates

        result = ExperimentResult("memory", "x")
        result.metadata.update(n_points=1, cap_fraction=0.5)
        result.add_table("summary", [])
        assert sorted(gates.payload_memory(result)) == [
            "cap_fraction",
            "experiment",
            "max_quality_drop",
            "n_points",
            "rows",
        ]
        assert gates.payload_memory(result)["experiment"] == "memory"

    def test_run_bench_and_fleet_consolidation_agree(
        self, tmp_path, monkeypatch
    ):
        """One real bench through both paths: identical artifact fields."""
        monkeypatch.setenv("BENCH_QUERY_POINTS", "1200")
        monkeypatch.setenv("BENCH_QUERY_QUERIES", "300")
        monkeypatch.setenv("BENCH_QUERY_NOT_SLOWER_FLOOR", "0.0")
        monkeypatch.setenv("BENCH_QUERY_MIN_SPEEDUP", "0.0")

        fleet.run_bench(
            "query", reports_dir=tmp_path / "wrap", artifacts_dir=tmp_path / "wrap"
        )
        wrapped = json.loads((tmp_path / "wrap" / "BENCH_query.json").read_text())

        matrix = RunMatrix.from_registry(name="q", ids=("query",))
        runner = FleetRunner(
            matrix,
            results_root=tmp_path / "results",
            jobs=0,
            artifacts_dir=tmp_path / "fleet",
        )
        report = runner.execute(echo=lambda *_: None)
        assert report.ok
        consolidated = json.loads((tmp_path / "fleet" / "BENCH_query.json").read_text())

        assert sorted(wrapped) == sorted(consolidated)
        assert wrapped["n_points"] == consolidated["n_points"] == 1200
        assert {row["batch_size"] for row in wrapped["rows"]} == {
            row["batch_size"] for row in consolidated["rows"]
        }
