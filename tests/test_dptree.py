"""Tests for the DP-Tree (Section 2.2, Definition 2)."""

import math

import pytest

from repro.core.cell import ClusterCell
from repro.core.dptree import DPTree


def make_cell(seed, density):
    return ClusterCell(seed=seed, density=density)


@pytest.fixture
def chain_tree():
    """A small tree:  root(10) <- a(5) <- b(3);  root <- c(4) with a weak link."""
    tree = DPTree()
    root = make_cell((0.0, 0.0), 10.0)
    a = make_cell((1.0, 0.0), 5.0)
    b = make_cell((1.5, 0.0), 3.0)
    c = make_cell((9.0, 0.0), 4.0)
    for cell in (root, a, b, c):
        tree.insert(cell)
    tree.set_dependency(a.cell_id, root.cell_id, 1.0)
    tree.set_dependency(b.cell_id, a.cell_id, 0.5)
    tree.set_dependency(c.cell_id, root.cell_id, 9.0)
    return tree, root, a, b, c


class TestStructure:
    def test_insert_and_contains(self):
        tree = DPTree()
        cell = make_cell((0.0,), 1.0)
        tree.insert(cell)
        assert cell.cell_id in tree
        assert len(tree) == 1
        assert tree.get(cell.cell_id) is cell

    def test_duplicate_insert_rejected(self):
        tree = DPTree()
        cell = make_cell((0.0,), 1.0)
        tree.insert(cell)
        with pytest.raises(KeyError):
            tree.insert(cell)

    def test_insert_with_dangling_dependency_becomes_root(self):
        tree = DPTree()
        cell = make_cell((0.0,), 1.0)
        cell.dependency = 424242  # does not exist
        cell.delta = 1.0
        tree.insert(cell)
        assert cell.dependency is None
        assert cell.delta == math.inf

    def test_set_dependency_links_parent_and_child(self, chain_tree):
        tree, root, a, b, c = chain_tree
        assert a.cell_id in tree.children_of(root.cell_id)
        assert b.cell_id in tree.children_of(a.cell_id)

    def test_set_dependency_moves_child_between_parents(self, chain_tree):
        tree, root, a, b, c = chain_tree
        tree.set_dependency(b.cell_id, root.cell_id, 1.5)
        assert b.cell_id in tree.children_of(root.cell_id)
        assert b.cell_id not in tree.children_of(a.cell_id)

    def test_self_dependency_rejected(self, chain_tree):
        tree, root, *_ = chain_tree
        with pytest.raises(ValueError):
            tree.set_dependency(root.cell_id, root.cell_id, 0.0)

    def test_dependency_on_unknown_cell_rejected(self, chain_tree):
        tree, root, *_ = chain_tree
        with pytest.raises(KeyError):
            tree.set_dependency(root.cell_id, 999999, 1.0)

    def test_remove_detaches_and_orphans_children(self, chain_tree):
        tree, root, a, b, c = chain_tree
        removed = tree.remove(a.cell_id)
        assert removed is a
        assert a.cell_id not in tree
        # b was a child of a; it becomes a root until recomputed.
        assert b.dependency is None
        assert b.delta == math.inf
        assert a.cell_id not in tree.children_of(root.cell_id)

    def test_remove_unknown_cell_raises(self):
        tree = DPTree()
        with pytest.raises(KeyError):
            tree.remove(12345)

    def test_subtree_ids(self, chain_tree):
        tree, root, a, b, c = chain_tree
        assert set(tree.subtree_ids(a.cell_id)) == {a.cell_id, b.cell_id}
        assert set(tree.subtree_ids(root.cell_id)) == {
            root.cell_id,
            a.cell_id,
            b.cell_id,
            c.cell_id,
        }

    def test_depth(self, chain_tree):
        tree, *_ = chain_tree
        assert tree.depth() == 3

    def test_validate_passes_on_consistent_tree(self, chain_tree):
        tree, *_ = chain_tree
        tree.validate()


class TestClusterExtraction:
    def test_single_cluster_when_all_links_strong(self, chain_tree):
        tree, root, a, b, c = chain_tree
        clusters = tree.clusters(tau=100.0)
        assert len(clusters) == 1
        assert set(clusters[root.cell_id]) == {root.cell_id, a.cell_id, b.cell_id, c.cell_id}

    def test_weak_link_splits_cluster(self, chain_tree):
        tree, root, a, b, c = chain_tree
        clusters = tree.clusters(tau=5.0)  # c's delta (9.0) is weak
        assert len(clusters) == 2
        assert set(clusters[root.cell_id]) == {root.cell_id, a.cell_id, b.cell_id}
        assert set(clusters[c.cell_id]) == {c.cell_id}

    def test_every_cell_assigned_exactly_once(self, chain_tree):
        tree, *_ = chain_tree
        clusters = tree.clusters(tau=1.0)
        members = [cid for cluster in clusters.values() for cid in cluster]
        assert sorted(members) == sorted(tree.cell_ids())

    def test_num_clusters_matches_weak_link_count_plus_roots(self, chain_tree):
        tree, root, a, b, c = chain_tree
        # tau below every delta: every cell is its own cluster.
        assert tree.num_clusters(0.1) == 4
        assert tree.num_clusters(0.75) == 3
        assert tree.num_clusters(2.0) == 2
        assert tree.num_clusters(10.0) == 1

    def test_cluster_assignment_consistent_with_clusters(self, chain_tree):
        tree, *_ = chain_tree
        clusters = tree.clusters(tau=5.0)
        assignment = tree.cluster_assignment(tau=5.0)
        for root_id, members in clusters.items():
            for member in members:
                assert assignment[member] == root_id

    def test_empty_tree(self):
        tree = DPTree()
        assert tree.clusters(1.0) == {}
        assert tree.num_clusters(1.0) == 0
        assert tree.depth() == 0
        assert tree.deltas() == []

    def test_deltas_excludes_roots(self, chain_tree):
        tree, *_ = chain_tree
        assert sorted(tree.deltas()) == [0.5, 1.0, 9.0]

    def test_cluster_root_is_the_msdsubtree_root(self, chain_tree):
        tree, root, a, b, c = chain_tree
        clusters = tree.clusters(tau=5.0)
        # Definition 2: the root of an MSDSubTree is that cluster's centre.
        assert root.cell_id in clusters
        assert c.cell_id in clusters
