"""Tests for the batch clustering substrates: DBSCAN and k-means."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import DBSCAN, KMeans


@pytest.fixture
def blobs():
    rng = np.random.default_rng(5)
    a = rng.normal((0.0, 0.0), 0.3, size=(60, 2))
    b = rng.normal((5.0, 5.0), 0.3, size=(60, 2))
    return np.vstack([a, b])


class TestDBSCAN:
    def test_two_blobs(self, blobs):
        labels = DBSCAN(eps=0.5, min_pts=5).fit_predict(blobs)
        assert len(set(labels) - {-1}) == 2

    def test_noise_detection(self, blobs):
        data = np.vstack([blobs, [[50.0, 50.0]]])
        labels = DBSCAN(eps=0.5, min_pts=5).fit_predict(data)
        assert labels[-1] == -1

    def test_single_cluster_when_eps_large(self, blobs):
        labels = DBSCAN(eps=50.0, min_pts=5).fit_predict(blobs)
        assert len(set(labels)) == 1

    def test_all_noise_when_min_pts_huge(self, blobs):
        labels = DBSCAN(eps=0.5, min_pts=10000).fit_predict(blobs)
        assert set(labels) == {-1}

    def test_weighted_points_reach_core_threshold(self):
        # Two heavy points within eps of each other form a cluster even though
        # there are only two of them.
        data = np.asarray([[0.0, 0.0], [0.1, 0.0], [10.0, 10.0]])
        weights = [10.0, 10.0, 1.0]
        labels = DBSCAN(eps=0.5, min_pts=15).fit_predict(data, weights=weights)
        assert labels[0] == labels[1] != -1
        assert labels[2] == -1

    def test_empty_input(self):
        assert DBSCAN(eps=1.0).fit_predict(np.empty((0, 2))).size == 0

    def test_core_points(self, blobs):
        cores = DBSCAN(eps=0.5, min_pts=5).core_points(blobs)
        assert 0 < len(cores) <= len(blobs)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.0)
        with pytest.raises(ValueError):
            DBSCAN(eps=1.0, min_pts=0)

    def test_mismatched_weights_rejected(self, blobs):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.5).fit_predict(blobs, weights=[1.0])

    def test_labels_are_dense_from_zero(self, blobs):
        labels = DBSCAN(eps=0.5, min_pts=5).fit_predict(blobs)
        found = sorted(set(labels) - {-1})
        assert found == list(range(len(found)))


class TestKMeans:
    def test_two_blobs(self, blobs):
        labels = KMeans(n_clusters=2, seed=3).fit_predict(blobs)
        assert len(set(labels)) == 2
        # The two halves of the data belong to different clusters.
        assert labels[0] == labels[10]
        assert labels[0] != labels[70]

    def test_centers_near_blob_means(self, blobs):
        model = KMeans(n_clusters=2, seed=3).fit(blobs)
        centers = sorted(model.centers_.tolist())
        assert np.allclose(centers[0], [0.0, 0.0], atol=0.3)
        assert np.allclose(centers[1], [5.0, 5.0], atol=0.3)

    def test_weighted_fit_pulls_centers(self):
        data = np.asarray([[0.0, 0.0], [10.0, 0.0]])
        weights = [100.0, 1.0]
        model = KMeans(n_clusters=1, seed=0).fit(data, weights=weights)
        assert model.centers_[0][0] < 1.0

    def test_inertia_decreases_with_more_clusters(self, blobs):
        inertia_1 = KMeans(n_clusters=1, seed=0).fit(blobs).inertia_
        inertia_2 = KMeans(n_clusters=2, seed=0).fit(blobs).inertia_
        assert inertia_2 < inertia_1

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(n_clusters=2).predict([[0.0, 0.0]])

    def test_predict_single_point(self, blobs):
        model = KMeans(n_clusters=2, seed=3).fit(blobs)
        assert model.predict([0.1, 0.1]).shape == (1,)

    def test_more_clusters_than_points(self):
        data = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        labels = KMeans(n_clusters=5, seed=0).fit_predict(data)
        assert len(labels) == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, max_iter=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=1).fit(np.empty((0, 2)))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10000))
    def test_deterministic_given_seed(self, seed):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(40, 3))
        first = KMeans(n_clusters=3, seed=seed).fit_predict(data)
        second = KMeans(n_clusters=3, seed=seed).fit_predict(data)
        assert np.array_equal(first, second)
