"""Tests for the MONIC offline transition tracker."""

import pytest

from repro.tracking.monic import MonicConfig, MonicTracker
from repro.tracking.transitions import ClusterSnapshot, TransitionType, WeightedCluster


def snapshot(time, **clusters):
    """Build a snapshot from keyword member sets: a={1,2}, b={3}, ..."""
    return ClusterSnapshot(
        time=time,
        clusters=[
            WeightedCluster(cluster_id=name, members=frozenset(members))
            for name, members in clusters.items()
        ],
    )


class TestMonicConfig:
    def test_defaults_are_valid(self):
        config = MonicConfig()
        assert 0 < config.split_threshold <= config.match_threshold <= 1

    def test_invalid_match_threshold(self):
        with pytest.raises(ValueError):
            MonicConfig(match_threshold=0.0)
        with pytest.raises(ValueError):
            MonicConfig(match_threshold=1.5)

    def test_split_threshold_must_not_exceed_match_threshold(self):
        with pytest.raises(ValueError):
            MonicConfig(match_threshold=0.3, split_threshold=0.5)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            MonicConfig(size_epsilon=-0.1)

    def test_overrides_on_top_of_config(self):
        tracker = MonicTracker(MonicConfig(match_threshold=0.6), split_threshold=0.2)
        assert tracker.config.match_threshold == 0.6
        assert tracker.config.split_threshold == 0.2


class TestExternalTransitions:
    def test_first_snapshot_emits_emerge(self):
        tracker = MonicTracker()
        transitions = tracker.observe(snapshot(0.0, a={1, 2}, b={3, 4}))
        assert {t.transition_type for t in transitions} == {TransitionType.EMERGE}
        assert len(transitions) == 2

    def test_survival(self):
        tracker = MonicTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3, 4}))
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 3, 5}))
        survive = [t for t in transitions if t.transition_type == TransitionType.SURVIVE]
        assert len(survive) == 1
        assert survive[0].old_clusters == ("a",)
        assert survive[0].new_clusters == ("x",)
        assert survive[0].overlap == pytest.approx(0.75)

    def test_split(self):
        tracker = MonicTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3, 4, 5, 6}))
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 3}, y={4, 5, 6}))
        splits = [t for t in transitions if t.transition_type == TransitionType.SPLIT]
        assert len(splits) == 1
        assert splits[0].old_clusters == ("a",)
        assert set(splits[0].new_clusters) == {"x", "y"}

    def test_absorption(self):
        tracker = MonicTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3}, b={4, 5, 6}))
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 3, 4, 5, 6}))
        absorbs = [t for t in transitions if t.transition_type == TransitionType.ABSORB]
        assert len(absorbs) == 1
        assert set(absorbs[0].old_clusters) == {"a", "b"}
        assert absorbs[0].new_clusters == ("x",)

    def test_disappearance(self):
        tracker = MonicTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3}, b={10, 11, 12}))
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 3}))
        disappear = [t for t in transitions if t.transition_type == TransitionType.DISAPPEAR]
        assert len(disappear) == 1
        assert disappear[0].old_clusters == ("b",)

    def test_emergence(self):
        tracker = MonicTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3}))
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 3}, fresh={20, 21}))
        emerge = [t for t in transitions if t.transition_type == TransitionType.EMERGE]
        assert len(emerge) == 1
        assert emerge[0].new_clusters == ("fresh",)

    def test_low_overlap_counts_as_disappearance(self):
        tracker = MonicTracker(match_threshold=0.5, split_threshold=0.4)
        tracker.observe(snapshot(0.0, a={1, 2, 3, 4, 5, 6, 7, 8, 9, 10}))
        # Only 2 of 10 members survive anywhere.
        transitions = tracker.observe(snapshot(1.0, x={1, 2, 100, 101, 102}))
        types = {t.transition_type for t in transitions}
        assert TransitionType.DISAPPEAR in types
        assert TransitionType.SURVIVE not in types

    def test_weighted_overlap_prefers_fresh_members(self):
        # Old cluster has 4 members; the 2 that survive carry nearly all the
        # weight, so MONIC still reports a survival.
        old = ClusterSnapshot(
            time=0.0,
            clusters=[
                WeightedCluster(
                    cluster_id="a",
                    members=frozenset({1, 2, 3, 4}),
                    weights={1: 1.0, 2: 1.0, 3: 0.01, 4: 0.01},
                )
            ],
        )
        new = snapshot(1.0, x={1, 2})
        tracker = MonicTracker()
        tracker.observe(old)
        transitions = tracker.observe(new)
        survive = [t for t in transitions if t.transition_type == TransitionType.SURVIVE]
        assert len(survive) == 1
        assert survive[0].overlap > 0.9

    def test_stateless_compare_does_not_touch_log(self):
        tracker = MonicTracker()
        transitions = tracker.compare(snapshot(0.0, a={1, 2}), snapshot(1.0, b={1, 2}))
        assert transitions
        assert tracker.external_transitions == []

    def test_counts_report(self):
        tracker = MonicTracker()
        tracker.observe(snapshot(0.0, a={1, 2, 3}))
        tracker.observe(snapshot(1.0, x={1, 2}, y={3, 50, 51}))
        counts = tracker.counts()
        assert sum(counts.values()) == len(tracker.external_transitions)


class TestInternalTransitions:
    def _survived_pair(self, old_members, new_members, old_locs, new_locs):
        old = ClusterSnapshot.from_assignment(
            time=0.0, assignment={m: "a" for m in old_members}, locations=old_locs
        )
        new = ClusterSnapshot.from_assignment(
            time=1.0, assignment={m: "a" for m in new_members}, locations=new_locs
        )
        return old, new

    def test_growth_detected(self):
        tracker = MonicTracker(size_epsilon=0.1)
        old, new = self._survived_pair(
            {1, 2, 3},
            {1, 2, 3, 4, 5},
            {1: (0.0,), 2: (0.1,), 3: (0.2,)},
            {1: (0.0,), 2: (0.1,), 3: (0.2,), 4: (0.15,), 5: (0.05,)},
        )
        tracker.observe(old)
        tracker.observe(new)
        types = {t.transition_type for t in tracker.internal_transitions}
        assert TransitionType.GROW in types

    def test_shrink_detected(self):
        tracker = MonicTracker(size_epsilon=0.1)
        old, new = self._survived_pair(
            {1, 2, 3, 4, 5},
            {1, 2, 3},
            {i: (float(i),) for i in range(1, 6)},
            {i: (float(i),) for i in range(1, 4)},
        )
        tracker.observe(old)
        tracker.observe(new)
        types = {t.transition_type for t in tracker.internal_transitions}
        assert TransitionType.SHRINK in types

    def test_shift_detected(self):
        tracker = MonicTracker(shift_epsilon=0.5, size_epsilon=10.0)
        old, new = self._survived_pair(
            {1, 2, 3},
            {1, 2, 3},
            {1: (0.0, 0.0), 2: (0.1, 0.0), 3: (0.2, 0.0)},
            {1: (5.0, 0.0), 2: (5.1, 0.0), 3: (5.2, 0.0)},
        )
        tracker.observe(old)
        tracker.observe(new)
        types = {t.transition_type for t in tracker.internal_transitions}
        assert TransitionType.SHIFT in types

    def test_compactness_transition(self):
        tracker = MonicTracker(compactness_epsilon=0.1, size_epsilon=10.0)
        old, new = self._survived_pair(
            {1, 2, 3},
            {1, 2, 3},
            {1: (0.0,), 2: (1.0,), 3: (2.0,)},
            {1: (0.9,), 2: (1.0,), 3: (1.1,)},
        )
        tracker.observe(old)
        tracker.observe(new)
        types = {t.transition_type for t in tracker.internal_transitions}
        assert TransitionType.MORE_COMPACT in types

    def test_no_internal_transition_when_stable(self):
        tracker = MonicTracker()
        old, new = self._survived_pair(
            {1, 2, 3},
            {1, 2, 3},
            {1: (0.0,), 2: (1.0,), 3: (2.0,)},
            {1: (0.0,), 2: (1.0,), 3: (2.0,)},
        )
        tracker.observe(old)
        tracker.observe(new)
        assert tracker.internal_transitions == []
