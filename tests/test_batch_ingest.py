"""Equivalence and unit tests for the micro-batch ingestion path.

The contract under test: ``EDMStream.learn_many(stream, batch_size=N)``
produces the same cell populations and cluster partitions as the sequential
per-point path, for every batch size, on numeric and non-numeric streams —
up to the canonical tie-breaking documented in :mod:`repro.core.batch`
(which both paths share, so in practice the results are identical).

Cell ids are process-global, so two models ingesting the same stream never
see the same ids; all cross-model comparisons are canonicalised through the
cell seeds (seeds are unique within a model: a duplicate point is always
absorbed, never promoted to a second seed).
"""

import numpy as np
import pytest

from repro import EDMStream
from repro.core.batch import BatchIngestor
from repro.core.cellstore import CellStore
from repro.core.decay import DecayModel
from repro.distance.metrics import pairwise_euclidean
from repro.index import BruteForceIndex, GridIndex, KDTreeIndex
from repro.streams import NewsStreamGenerator, RBFDriftGenerator, SDSGenerator
from repro.streams.point import StreamPoint

BATCH_SIZES = (1, 7, 256)

#: ``summary()`` keys excluded from equivalence checks: wall-clock timings
#: and filter counters legitimately differ between the two execution paths.
NON_STRUCTURAL_SUMMARY_KEYS = ("filter_stats", "dependency_update_seconds")


def canonical_seed(value):
    try:
        return tuple(value)
    except TypeError:
        return value


def canonical_partition(model):
    """Partition snapshot keyed by seeds instead of process-global cell ids."""
    seed_of = {cid: canonical_seed(model.tree.get(cid).seed) for cid in model.tree.cell_ids()}
    return {
        seed_of[root]: frozenset(seed_of[m] for m in members)
        for root, members in model.partition_snapshot().items()
    }


def canonical_cells(model):
    """Every cell (active and inactive) keyed by seed."""
    cells = {}
    for cell in list(model.tree.cells()) + list(model.reservoir.cells()):
        cells[canonical_seed(cell.seed)] = (
            cell.density,
            cell.last_update,
            cell.cell_id in model.tree,
            cell.points_absorbed,
            dict(cell.label_votes),
        )
    return cells


def structural_summary(model):
    summary = model.summary()
    for key in NON_STRUCTURAL_SUMMARY_KEYS:
        summary.pop(key)
    return summary


def canonical_assignment(cell_ids):
    """Rewrite an assignment sequence as first-occurrence indices."""
    first = {}
    out = []
    for cell_id in cell_ids:
        if cell_id not in first:
            first[cell_id] = len(first)
        out.append(first[cell_id])
    return out


def assert_same_cells(sequential, batched):
    """Cell populations match; densities to 1e-9 relative.

    The batch path applies one closed-form decayed increment per (cell,
    batch) where the sequential path applies Equation 8 per point — the same
    quantity evaluated in a different float association, so densities agree
    to rounding rather than bit-for-bit.  Everything discrete (membership,
    absorption counts, label votes, update times) must match exactly.
    """
    seq_cells = canonical_cells(sequential)
    bat_cells = canonical_cells(batched)
    assert set(bat_cells) == set(seq_cells)
    for seed, (density, last_update, active, absorbed, votes) in seq_cells.items():
        b_density, b_last_update, b_active, b_absorbed, b_votes = bat_cells[seed]
        assert b_density == pytest.approx(density, rel=1e-9)
        assert (b_last_update, b_active, b_absorbed, b_votes) == (
            last_update,
            active,
            absorbed,
            votes,
        )


def assert_equivalent(sequential, batched, sequential_ids=None, batched_ids=None):
    assert canonical_partition(batched) == canonical_partition(sequential)
    assert_same_cells(sequential, batched)
    assert structural_summary(batched) == structural_summary(sequential)
    assert batched.evolution.counts() == sequential.evolution.counts()
    if sequential_ids is not None:
        assert canonical_assignment(batched_ids) == canonical_assignment(sequential_ids)


# --------------------------------------------------------------------- #
# equivalence: batch path == sequential path
# --------------------------------------------------------------------- #
class TestLearnManyEquivalence:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_synthetic_blobs(self, two_blob_stream, batch_size):
        def make():
            return EDMStream(radius=0.5, init_size=50, beta=0.001)

        sequential = make()
        sequential_ids = sequential.learn_many(two_blob_stream, batch_size=None)
        batched = make()
        batched_ids = batched.learn_many(two_blob_stream, batch_size=batch_size)
        assert_equivalent(sequential, batched, sequential_ids, batched_ids)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_sds_synthetic(self, batch_size):
        stream = SDSGenerator(n_points=3000, rate=1000.0, seed=11).generate()

        def make():
            return EDMStream(radius=0.3, beta=0.0021, stream_rate=1000.0)

        sequential = make()
        sequential.learn_many(stream, batch_size=None)
        batched = make()
        batched.learn_many(stream, batch_size=batch_size)
        assert_equivalent(sequential, batched)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_drift_stream(self, batch_size):
        stream = RBFDriftGenerator(n_points=2500, n_kernels=4, drift_speed=1.0, seed=3).generate()

        def make():
            return EDMStream(radius=0.45, init_size=300, beta=0.001)

        sequential = make()
        sequential_ids = sequential.learn_many(stream, batch_size=None)
        batched = make()
        batched_ids = batched.learn_many(stream, batch_size=batch_size)
        assert_equivalent(sequential, batched, sequential_ids, batched_ids)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_jaccard_news_stream(self, batch_size):
        """Non-numeric path; exact distance ties are routine under Jaccard."""
        stream = NewsStreamGenerator(n_points=900, rate=100.0).generate()

        def make():
            return EDMStream(
                radius=0.4, metric="jaccard", init_size=100, beta=0.01, stream_rate=100.0
            )

        sequential = make()
        sequential_ids = sequential.learn_many(stream, batch_size=None)
        batched = make()
        batched_ids = batched.learn_many(stream, batch_size=batch_size)
        assert_equivalent(sequential, batched, sequential_ids, batched_ids)

    def test_incremental_batches_match_one_shot(self, two_blob_stream):
        """Feeding several learn_many calls equals feeding the stream once."""
        one_shot = EDMStream(radius=0.5, init_size=50, beta=0.001)
        one_shot.learn_many(two_blob_stream, batch_size=64)
        incremental = EDMStream(radius=0.5, init_size=50, beta=0.001)
        points = list(two_blob_stream)
        for start in range(0, len(points), 37):
            incremental.learn_many(points[start : start + 37], batch_size=64)
        assert_equivalent(one_shot, incremental)

    def test_pruned_nearest_path_preserves_equivalence(self, monkeypatch):
        """Full ingest equivalence with the norm-window pruning engaged.

        The default prune threshold (512 cells) is rarely reached by
        test-sized streams, so lower it to force every assignment query in
        the batch path through ``CellStore._nearest_many_pruned`` —
        including stores churned by activation/deactivation swap-deletes
        and capacity growth.
        """
        from repro.core.cellstore import CellStore

        stream = RBFDriftGenerator(n_points=2500, n_kernels=4, drift_speed=1.0, seed=3).generate()

        def make():
            return EDMStream(radius=0.45, init_size=300, beta=0.001)

        sequential = make()
        sequential.learn_many(stream, batch_size=None)
        monkeypatch.setattr(CellStore, "prune_threshold", 8)
        batched = make()
        batched.learn_many(stream, batch_size=256)
        assert_equivalent(sequential, batched)

    def test_auto_timestamps_match_sequential(self):
        rng = np.random.default_rng(5)
        values = rng.normal((0.0, 0.0), 0.5, size=(400, 2))
        sequential = EDMStream(radius=0.5, init_size=50, stream_rate=100.0)
        for row in values:
            sequential.learn_one(tuple(row))
        batched = EDMStream(radius=0.5, init_size=50, stream_rate=100.0)
        batched.learn_many(
            [StreamPoint(values=tuple(row), timestamp=None) for row in values],
            batch_size=64,
        )
        assert batched.now == sequential.now
        assert_equivalent(sequential, batched)


# --------------------------------------------------------------------- #
# BatchIngestor unit behaviour
# --------------------------------------------------------------------- #
class TestBatchIngestor:
    def test_rejects_non_positive_batch_size(self):
        with pytest.raises(ValueError):
            BatchIngestor(EDMStream(), batch_size=0)

    def test_empty_stream(self):
        model = EDMStream()
        assert model.learn_many([], batch_size=16) == []
        assert model.n_points == 0

    def test_returns_one_cell_id_per_point(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        assigned = model.learn_many(two_blob_stream, batch_size=32)
        assert len(assigned) == len(two_blob_stream)
        assert model.n_points == len(two_blob_stream)
        assert all(isinstance(cell_id, int) for cell_id in assigned)

    def test_initialization_fires_inside_a_batch(self, two_blob_stream):
        model = EDMStream(radius=0.5, init_size=50)
        model.learn_many(list(two_blob_stream)[:60], batch_size=256)
        assert model.initialized
        assert model.tau is not None

    def test_close_points_share_a_cell_within_one_batch(self):
        model = EDMStream(radius=0.5)
        points = [
            StreamPoint(values=(0.0, 0.0), timestamp=0.0),
            StreamPoint(values=(0.1, 0.1), timestamp=0.001),
            StreamPoint(values=(5.0, 5.0), timestamp=0.002),
        ]
        first, second, third = model.learn_many(points, batch_size=3)
        assert first == second
        assert third != first


# --------------------------------------------------------------------- #
# batched decay primitives
# --------------------------------------------------------------------- #
class TestBatchedDecay:
    decay = DecayModel(a=0.998, lam=1.0)

    def test_batch_absorb_matches_sequential_absorb(self):
        times = np.asarray([1.0, 1.4, 1.9, 2.05])
        density = 3.0
        expected = density
        last = 0.5
        for t in times:
            expected = self.decay.absorb(expected, t - last)
            last = t
        assert self.decay.batch_absorb(3.0, 0.5, times) == pytest.approx(expected, rel=1e-12)

    def test_batch_absorb_uniform_uses_geometric_sum(self):
        times = 10.0 + 0.001 * np.arange(500)
        increment = self.decay.batch_absorb(0.0, times[0], times)
        assert increment == pytest.approx(self.decay.geometric_decay_sum(500, 0.001), rel=1e-12)

    def test_geometric_decay_sum_equals_explicit_series(self):
        q = self.decay.decay_factor(0.25)
        explicit = sum(q ** m for m in range(40))
        assert self.decay.geometric_decay_sum(40, 0.25) == pytest.approx(explicit)
        assert self.decay.geometric_decay_sum(0, 0.25) == 0.0
        assert self.decay.geometric_decay_sum(1, 123.0) == 1.0

    def test_absorb_trajectory_matches_stepwise_absorb(self):
        times = np.asarray([2.0, 2.3, 2.31, 3.0])
        trajectory = self.decay.absorb_trajectory(5.0, 1.5, times)
        density = 5.0
        last = 1.5
        for step, t in enumerate(times):
            density = self.decay.absorb(density, t - last)
            last = t
            assert trajectory[step] == pytest.approx(density, rel=1e-12)

    def test_absorb_trajectory_survives_huge_time_spans(self):
        """Spans beyond the a**(-λt) overflow range use the stepwise path."""
        times = np.asarray([0.0, 500000.0])
        trajectory = self.decay.absorb_trajectory(1.0, 0.0, times)
        assert np.all(np.isfinite(trajectory))
        assert trajectory[1] == self.decay.absorb(self.decay.absorb(1.0, 0.0), 500000.0)

    def test_decayed_weights(self):
        weights = self.decay.decayed_weights(np.asarray([0.0, 1.0, 2.0]), 2.0)
        assert weights[2] == 1.0
        assert weights[0] == pytest.approx(self.decay.freshness(0.0, 2.0))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            self.decay.geometric_decay_sum(-1, 0.1)
        with pytest.raises(ValueError):
            self.decay.geometric_decay_sum(3, -0.1)


# --------------------------------------------------------------------- #
# CellStore bulk queries
# --------------------------------------------------------------------- #
class TestCellStoreBulkQueries:
    def make_store(self, n=300, dim=5, seed=0):
        from repro.core.cell import ClusterCell

        rng = np.random.default_rng(seed)
        store = CellStore(numeric=True)
        points = rng.normal(size=(n, dim))
        for row in points:
            store.add(ClusterCell(seed=tuple(row)))
        return store, points, rng

    def test_distances_to_many_rows_match_distances_to(self):
        store, _, rng = self.make_store()
        queries = rng.normal(size=(40, 5))
        matrix = store.distances_to_many(queries)
        for row, query in enumerate(queries):
            assert np.array_equal(matrix[row], store.distances_to(tuple(query)))

    def test_nearest_many_matches_row_minima(self):
        store, _, rng = self.make_store()
        queries = rng.normal(size=(64, 5))
        best, best_id = store.nearest_many(queries)
        matrix = store.distances_to_many(queries)
        ids = np.asarray(store.ids())
        assert np.array_equal(best, matrix.min(axis=1))
        assert np.array_equal(best_id, ids[np.argmin(matrix, axis=1)])

    def test_nearest_many_pruned_is_exact_within_radius(self):
        store, _, rng = self.make_store(n=600)
        # Churn the store so the pruned path sees swap-deleted norm slots.
        for cell_id in list(store.ids())[::7]:
            store.remove(cell_id)
        points = np.asarray([store.get(cid).seed for cid in store.ids()])
        # Queries near existing seeds so the nearest is within the radius.
        queries = points[rng.choice(len(points), size=80, replace=False)] + rng.normal(
            scale=0.01, size=(80, 5)
        )
        radius = 0.2
        best, best_id = store.nearest_many(queries, within=radius)
        exact, exact_id = store.nearest_many(queries)
        within = exact <= radius
        assert within.any()
        assert np.array_equal(best[within], exact[within])
        assert np.array_equal(best_id[within], exact_id[within])
        # Beyond the radius the pruned query only promises "nothing within".
        assert np.all(best[~within] > radius)

    def test_cross_distances_match_seed_distances(self):
        store, _, _ = self.make_store(n=50)
        positions = np.asarray([0, 7, 23])
        matrix = store.cross_distances(positions)
        for row, position in enumerate(positions):
            cell_id = store.id_at(int(position))
            assert np.array_equal(matrix[row], store.seed_distances(cell_id))

    def test_nearest_many_empty_store(self):
        store = CellStore(numeric=True)
        assert store.nearest_many([(0.0, 0.0)]) == (None, None)


class TestPairwiseEuclidean:
    def test_symmetry_to_the_last_bit(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(30, 7))
        b = rng.normal(size=(45, 7))
        assert np.array_equal(pairwise_euclidean(a, b), pairwise_euclidean(b, a).T)

    def test_matches_scalar_euclidean(self):
        from repro.distance import euclidean

        rng = np.random.default_rng(3)
        a = rng.normal(size=(10, 4))
        b = rng.normal(size=(12, 4))
        matrix = pairwise_euclidean(a, b)
        for i in range(10):
            for j in range(12):
                assert matrix[i, j] == pytest.approx(euclidean(a[i], b[j]), rel=1e-9)

    def test_einsum_fallback_without_scipy(self, monkeypatch):
        """The numpy fallback (scipy absent) stays symmetric and equivalent."""
        import repro.distance.metrics as metrics

        monkeypatch.setattr(metrics, "_cdist", None)
        rng = np.random.default_rng(4)
        a = rng.normal(size=(15, 6))
        b = rng.normal(size=(20, 6))
        matrix = metrics.pairwise_euclidean(a, b)
        assert np.array_equal(matrix, metrics.pairwise_euclidean(b, a).T)

        stream = SDSGenerator(n_points=1200, rate=1000.0, seed=13).generate()
        sequential = EDMStream(radius=0.3, beta=0.0021, stream_rate=1000.0)
        sequential.learn_many(stream, batch_size=None)
        batched = EDMStream(radius=0.3, beta=0.0021, stream_rate=1000.0)
        batched.learn_many(stream, batch_size=64)
        assert_equivalent(sequential, batched)


# --------------------------------------------------------------------- #
# index backends: batch nearest
# --------------------------------------------------------------------- #
class TestIndexNearestMany:
    @pytest.fixture
    def seeds(self):
        rng = np.random.default_rng(9)
        return [tuple(row) for row in rng.normal(size=(120, 3))]

    @pytest.fixture
    def queries(self):
        rng = np.random.default_rng(10)
        return [tuple(row) for row in rng.normal(size=(25, 3))]

    @pytest.mark.parametrize(
        "factory",
        [
            BruteForceIndex,
            lambda: GridIndex(cell_width=0.5),
            KDTreeIndex,
        ],
    )
    def test_matches_per_query_nearest(self, factory, seeds, queries):
        index = factory()
        for key, seed in enumerate(seeds):
            index.insert(key, seed)
        batch = index.nearest_many(queries)
        assert len(batch) == len(queries)
        for query, result in zip(queries, batch):
            single = index.nearest(query)
            assert result[0] == single[0]
            assert result[1] == pytest.approx(single[1], rel=1e-9)

    def test_empty_index(self, queries):
        for index in (BruteForceIndex(), GridIndex(cell_width=0.5), KDTreeIndex()):
            assert index.nearest_many(queries) == [None] * len(queries)

    def test_brute_force_non_euclidean_falls_back(self):
        from repro.distance import manhattan

        index = BruteForceIndex(metric=manhattan)
        index.insert("a", (0.0, 0.0))
        index.insert("b", (3.0, 3.0))
        results = index.nearest_many([(0.1, 0.0), (2.9, 3.0)])
        assert [key for key, _ in results] == ["a", "b"]
