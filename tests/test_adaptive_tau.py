"""Tests for the adaptive τ machinery (Section 5)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.adaptive_tau import (
    TauOptimizer,
    candidate_taus,
    evaluation_function,
    suggest_initial_tau,
)

#: One anomalously long dependent distance (a second density mountain) plus
#: many short intra-mountain links — the canonical two-cluster situation.
TWO_CLUSTER_DELTAS = [6.0] + [0.5 + 0.01 * i for i in range(30)]


class TestEvaluationFunction:
    def test_rejects_invalid_alpha(self):
        with pytest.raises(ValueError):
            evaluation_function(1.0, TWO_CLUSTER_DELTAS, alpha=0.0)

    def test_infinite_when_no_intra_links(self):
        assert evaluation_function(0.1, TWO_CLUSTER_DELTAS, 0.5) == math.inf

    def test_infinite_when_no_inter_links(self):
        assert evaluation_function(100.0, TWO_CLUSTER_DELTAS, 0.5) == math.inf

    def test_ignores_non_finite_deltas(self):
        deltas = TWO_CLUSTER_DELTAS + [math.inf, 0.0, -1.0]
        assert evaluation_function(2.0, deltas, 0.5) == pytest.approx(
            evaluation_function(2.0, TWO_CLUSTER_DELTAS, 0.5)
        )

    def test_natural_gap_beats_fragmentation(self):
        # Cutting at the big gap should score better than cutting inside the
        # bulk of short links (which fragments one mountain into many).
        natural = evaluation_function(3.0, TWO_CLUSTER_DELTAS, 0.5)
        fragmented = evaluation_function(0.55, TWO_CLUSTER_DELTAS, 0.5)
        assert natural < fragmented

    def test_empty_deltas_is_infinite(self):
        assert evaluation_function(1.0, [], 0.5) == math.inf

    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_value_is_non_negative(self, alpha):
        value = evaluation_function(3.0, TWO_CLUSTER_DELTAS, alpha)
        assert value >= 0.0


class TestCandidateTaus:
    def test_candidates_cover_every_partition(self):
        deltas = [1.0, 2.0, 4.0]
        candidates = candidate_taus(deltas)
        # Between each consecutive pair plus one above the maximum and one
        # below the minimum.
        assert any(1.0 < c < 2.0 for c in candidates)
        assert any(2.0 < c < 4.0 for c in candidates)
        assert any(c > 4.0 for c in candidates)

    def test_empty_for_no_finite_deltas(self):
        assert candidate_taus([math.inf, -1.0]) == []

    def test_duplicates_are_collapsed(self):
        candidates = candidate_taus([1.0, 1.0, 1.0])
        assert len(candidates) >= 1


class TestTauOptimizer:
    def test_optimize_requires_alpha(self):
        with pytest.raises(RuntimeError):
            TauOptimizer().optimize(TWO_CLUSTER_DELTAS)

    def test_optimize_finds_the_gap(self):
        optimizer = TauOptimizer(alpha=0.5)
        tau = optimizer.optimize(TWO_CLUSTER_DELTAS)
        assert 0.8 < tau < 6.0

    def test_optimize_records_history(self):
        optimizer = TauOptimizer(alpha=0.5)
        optimizer.optimize(TWO_CLUSTER_DELTAS, time=3.0)
        assert optimizer.history == [(3.0, pytest.approx(optimizer.history[0][1]))]

    def test_optimize_rejects_empty_deltas(self):
        with pytest.raises(ValueError):
            TauOptimizer(alpha=0.5).optimize([])

    def test_learn_alpha_reproduces_the_users_tau(self):
        optimizer = TauOptimizer()
        alpha = optimizer.learn_alpha(tau0=3.0, deltas=TWO_CLUSTER_DELTAS)
        assert 0.0 < alpha < 1.0
        # With the learned alpha, re-optimising should land near tau0's
        # partition (i.e. still separate the two mountains).
        tau = optimizer.optimize(TWO_CLUSTER_DELTAS)
        assert 0.8 < tau < 6.0

    def test_learn_alpha_handles_degenerate_deltas(self):
        optimizer = TauOptimizer()
        alpha = optimizer.learn_alpha(tau0=1.0, deltas=[])
        assert alpha == 0.5

    def test_learn_alpha_rejects_invalid_tau0(self):
        with pytest.raises(ValueError):
            TauOptimizer().learn_alpha(tau0=0.0, deltas=TWO_CLUSTER_DELTAS)


class TestSuggestInitialTau:
    def test_picks_the_largest_relative_gap(self):
        tau = suggest_initial_tau(TWO_CLUSTER_DELTAS)
        assert 0.8 < tau < 6.0

    def test_respects_min_peaks(self):
        deltas = [10.0, 8.0, 1.0, 0.9, 0.8]
        # With min_peaks=3, tau must keep at least two non-root deltas above
        # it (two non-root peaks + the root = 3 clusters).
        tau = suggest_initial_tau(deltas, min_peaks=3)
        assert tau < 8.0

    def test_single_delta(self):
        assert suggest_initial_tau([4.0]) == pytest.approx(2.0)

    def test_empty_deltas(self):
        assert suggest_initial_tau([]) == 1.0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2, max_size=40)
    )
    def test_tau_always_within_delta_range(self, deltas):
        tau = suggest_initial_tau(deltas)
        assert min(deltas) <= tau <= max(deltas) * 1.01
