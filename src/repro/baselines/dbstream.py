"""DBSTREAM (Hahsler & Bolaños — IEEE TKDE 2016).

DBSTREAM maintains decayed micro-clusters and, in addition, a *shared
density* value for every pair of micro-clusters whose neighbourhoods
overlap.  A new point is inserted into every micro-cluster within radius
``r`` (their centres also move towards the point by a Gaussian-weighted
step); when the point falls into two or more micro-clusters, the shared
density of each such pair is incremented.  The offline phase connects two
micro-clusters whose shared density (relative to their own weights) exceeds
the intersection factor ``alpha_intersection`` and returns the connected
components as macro clusters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Set

import numpy as np

from repro.baselines._centers import CenterArray
from repro.api import ClusterSnapshot, ServingView, StreamClusterer

_mc_counter = itertools.count(1)


@dataclass
class _DBMicroCluster:
    center: np.ndarray
    weight: float = 1.0
    last_update: float = 0.0
    mc_id: int = field(default_factory=lambda: next(_mc_counter))

    def decay(self, now: float, decay_factor: float) -> None:
        if now <= self.last_update:
            return
        self.weight *= decay_factor ** (now - self.last_update)
        self.last_update = now


class DBStream(StreamClusterer):
    """Clustering data streams based on shared density between micro-clusters.

    Parameters
    ----------
    radius:
        Micro-cluster neighbourhood radius ``r``.
    decay_a, decay_lambda:
        Exponential decay parameters; effective per-time factor is
        ``decay_a ** decay_lambda`` (the original fixes a = 2).
    gap:
        Cleanup interval: weak micro-clusters and stale shared densities are
        removed every ``gap`` time units.
    w_min:
        Minimum weight for a micro-cluster to participate in reclustering.
    alpha_intersection:
        Intersection factor α: two micro-clusters are connected when their
        shared density exceeds α times the smaller of their weights.
    learning_rate:
        Step size of the centre adjustment towards absorbed points.
    """

    name = "DBSTREAM"

    def __init__(
        self,
        radius: float = 0.3,
        decay_a: float = 2.0,
        decay_lambda: float = 0.0028,
        gap: float = 1.0,
        w_min: float = 2.0,
        alpha_intersection: float = 0.3,
        learning_rate: float = 0.3,
    ) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if w_min <= 0:
            raise ValueError(f"w_min must be positive, got {w_min}")
        if not 0.0 < alpha_intersection < 1.0:
            raise ValueError(
                f"alpha_intersection must be in (0, 1), got {alpha_intersection}"
            )
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        self.radius = radius
        self.decay_factor = decay_a ** (-abs(decay_lambda)) if decay_a > 1 else decay_a ** abs(decay_lambda)
        if not 0.0 < self.decay_factor < 1.0:
            raise ValueError(
                f"decay parameters produce an invalid decay factor {self.decay_factor}"
            )
        self.gap = gap
        self.w_min = w_min
        self.alpha_intersection = alpha_intersection
        self.learning_rate = learning_rate

        self._clusters: Dict[int, _DBMicroCluster] = {}
        self._centers = CenterArray()
        self._shared: Dict[FrozenSet[int], float] = {}
        self._shared_update: Dict[FrozenSet[int], float] = {}
        self._now = 0.0
        self._last_cleanup = 0.0
        self._n_points = 0
        self._macro_labels: Dict[int, int] = {}
        self._macro_stale = True

    # ------------------------------------------------------------------ #
    # online phase
    # ------------------------------------------------------------------ #
    def learn_one(
        self, values: Sequence[float], timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> int:
        point = np.asarray(values, dtype=float)
        if timestamp is None:
            timestamp = self._now + 1.0
        self._now = max(self._now, timestamp)
        self._n_points += 1
        self._macro_stale = True

        keys, distances = self._centers.distances_to(point)
        hits = [keys[i] for i in range(len(keys)) if distances[i] <= self.radius]

        if not hits:
            mc = _DBMicroCluster(center=point.copy(), weight=1.0, last_update=self._now)
            self._clusters[mc.mc_id] = mc
            self._centers.add(mc.mc_id, mc.center)
            assigned = mc.mc_id
        else:
            for mc_id in hits:
                mc = self._clusters[mc_id]
                mc.decay(self._now, self.decay_factor)
                mc.weight += 1.0
                # Move the centre towards the point (competitive learning step).
                mc.center = mc.center + self.learning_rate * (point - mc.center)
                self._centers.update(mc_id, mc.center)
            # Update shared densities for every pair of hit micro-clusters.
            for a, b in itertools.combinations(sorted(hits), 2):
                pair = frozenset((a, b))
                previous = self._shared.get(pair, 0.0)
                last = self._shared_update.get(pair, self._now)
                decayed = previous * (self.decay_factor ** (self._now - last))
                self._shared[pair] = decayed + 1.0
                self._shared_update[pair] = self._now
            assigned = hits[0]

        if self._now - self._last_cleanup >= self.gap:
            self._cleanup()
            self._last_cleanup = self._now
        return assigned

    def _cleanup(self) -> None:
        weak_threshold = self.w_min * (self.decay_factor ** self.gap)
        for mc_id in list(self._clusters):
            mc = self._clusters[mc_id]
            mc.decay(self._now, self.decay_factor)
            if mc.weight < weak_threshold:
                del self._clusters[mc_id]
                self._centers.remove(mc_id)
        alive = set(self._clusters)
        for pair in list(self._shared):
            last = self._shared_update.get(pair, 0.0)
            decayed = self._shared[pair] * (self.decay_factor ** (self._now - last))
            if not pair <= alive or decayed < weak_threshold * self.alpha_intersection:
                del self._shared[pair]
                self._shared_update.pop(pair, None)
            else:
                self._shared[pair] = decayed
                self._shared_update[pair] = self._now

    # ------------------------------------------------------------------ #
    # offline phase
    # ------------------------------------------------------------------ #
    def request_clustering(self) -> ClusterSnapshot:
        """Connect micro-clusters by shared density and label the components."""
        strong = {
            mc_id
            for mc_id, mc in self._clusters.items()
            if self._decayed_weight(mc) >= self.w_min
        }
        adjacency: Dict[int, Set[int]] = {mc_id: set() for mc_id in strong}
        for pair, value in self._shared.items():
            a, b = tuple(pair)
            if a not in strong or b not in strong:
                continue
            last = self._shared_update.get(pair, self._now)
            decayed = value * (self.decay_factor ** (self._now - last))
            weight_a = self._decayed_weight(self._clusters[a])
            weight_b = self._decayed_weight(self._clusters[b])
            connectivity = decayed / max(min(weight_a, weight_b), 1e-12)
            if connectivity >= self.alpha_intersection:
                adjacency[a].add(b)
                adjacency[b].add(a)

        labels: Dict[int, int] = {}
        cluster_id = 0
        for mc_id in strong:
            if mc_id in labels:
                continue
            stack = [mc_id]
            labels[mc_id] = cluster_id
            while stack:
                current = stack.pop()
                for neighbour in adjacency[current]:
                    if neighbour not in labels:
                        labels[neighbour] = cluster_id
                        stack.append(neighbour)
            cluster_id += 1
        self._macro_labels = labels
        self._macro_stale = False
        return self._publish_snapshot()

    def _serving_view(self) -> ServingView:
        mc_ids = self._centers.ids()
        return ServingView(
            time=self._now,
            n_points=self._n_points,
            seeds=self._centers.matrix(),
            cell_ids=mc_ids,
            labels=[self._macro_labels.get(mc_id, -1) for mc_id in mc_ids],
            densities=[self._decayed_weight(self._clusters[mc_id]) for mc_id in mc_ids],
            coverage=2.0 * self.radius,
            metadata={"micro_clusters": len(self._clusters)},
        )

    def _decayed_weight(self, mc: _DBMicroCluster) -> float:
        return mc.weight * (self.decay_factor ** max(0.0, self._now - mc.last_update))

    def predict_one(self, values: Sequence[float]) -> int:
        if self._macro_stale:
            self.request_clustering()
        nearest = self._centers.nearest(np.asarray(values, dtype=float))
        if nearest is None:
            return -1
        mc_id, distance = nearest
        if distance > 2.0 * self.radius:
            return -1
        return self._macro_labels.get(mc_id, -1)

    @property
    def n_clusters(self) -> int:
        if self._macro_stale:
            self.request_clustering()
        return len(set(self._macro_labels.values()))

    @property
    def n_micro_clusters(self) -> int:
        """Number of micro-clusters currently maintained."""
        return len(self._clusters)
