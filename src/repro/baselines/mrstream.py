"""MR-Stream (Wan, Ng, Dang, Yu, Zhang — ACM TKDD 2009).

MR-Stream clusters a stream at *multiple resolutions* by maintaining a tree
of nested grid cells: the root covers the whole data space and every node is
recursively divided into ``2^d`` children (each dimension halved) down to a
maximum height ``H``.  Arriving points update the decayed density of the
cell they fall into at every level.  The offline phase picks a resolution
(tree height) and groups adjacent dense cells at that resolution into
clusters, attaching transitional cells on the border.

The implementation stores, per level, a dictionary from grid coordinates to
decayed densities — the explicit tree is implied by the coordinate prefix
relationship, which keeps memory proportional to the number of *occupied*
cells as in the original paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import ClusterSnapshot, GridSpec, ServingView, StreamClusterer


@dataclass
class _GridNode:
    density: float = 0.0
    last_update: float = 0.0

    def decay(self, now: float, decay_factor: float) -> None:
        if now <= self.last_update:
            return
        self.density *= decay_factor ** (now - self.last_update)
        self.last_update = now

    def insert(self, now: float, decay_factor: float) -> None:
        self.decay(now, decay_factor)
        self.density += 1.0


class MRStream(StreamClusterer):
    """Density-based clustering of data streams at multiple resolutions.

    Parameters
    ----------
    bounds:
        ``(low, high)`` bounds of the data space in every dimension.  Points
        outside are clamped (the original assumes a known, normalised space).
    max_height:
        Number of resolutions H; the finest level divides each dimension into
        ``2^H`` intervals.
    clustering_height:
        Level used by the offline phase (defaults to the finest level).
    c_m, c_l:
        Dense / sparse threshold multipliers, as in D-Stream.
    decay_a, decay_lambda:
        Decay parameters; the original fixes a = 1.002 with λ = -1, i.e. an
        effective factor 1.002^-1 ≈ 0.998.
    gap:
        Interval between pruning passes.
    """

    name = "MR-Stream"

    def __init__(
        self,
        bounds: Tuple[float, float] = (0.0, 1.0),
        max_height: int = 5,
        clustering_height: Optional[int] = None,
        c_m: float = 3.0,
        c_l: float = 0.8,
        decay_a: float = 1.002,
        decay_lambda: float = -1.0,
        gap: float = 1.0,
    ) -> None:
        if bounds[1] <= bounds[0]:
            raise ValueError(f"invalid bounds {bounds}")
        if max_height < 1:
            raise ValueError(f"max_height must be >= 1, got {max_height}")
        if clustering_height is None:
            clustering_height = max_height
        if not 1 <= clustering_height <= max_height:
            raise ValueError(
                f"clustering_height must be in [1, {max_height}], got {clustering_height}"
            )
        if c_m <= 1.0:
            raise ValueError(f"c_m must be > 1, got {c_m}")
        if not 0.0 < c_l < 1.0:
            raise ValueError(f"c_l must be in (0, 1), got {c_l}")
        self.bounds = bounds
        self.max_height = max_height
        self.clustering_height = clustering_height
        self.c_m = c_m
        self.c_l = c_l
        self.decay_factor = decay_a ** decay_lambda
        if not 0.0 < self.decay_factor < 1.0:
            raise ValueError(
                f"decay parameters produce an invalid decay factor {self.decay_factor}"
            )
        self.gap = gap

        #: One dictionary of occupied cells per level (1 .. max_height).
        self._levels: List[Dict[Tuple[int, ...], _GridNode]] = [
            {} for _ in range(max_height)
        ]
        self._now = 0.0
        self._last_prune = 0.0
        self._n_points = 0
        self._macro_labels: Dict[Tuple[int, ...], int] = {}
        self._macro_stale = True

    # ------------------------------------------------------------------ #
    def _cell_of(self, point: np.ndarray, height: int) -> Tuple[int, ...]:
        low, high = self.bounds
        span = high - low
        divisions = 2 ** height
        coords = []
        for value in point:
            normalised = (value - low) / span
            normalised = min(max(normalised, 0.0), 1.0 - 1e-12)
            coords.append(int(normalised * divisions))
        return tuple(coords)

    def learn_one(
        self, values: Sequence[float], timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> Tuple[int, ...]:
        point = np.asarray(values, dtype=float)
        if timestamp is None:
            timestamp = self._now + 1.0
        self._now = max(self._now, timestamp)
        self._n_points += 1
        self._macro_stale = True

        finest_key: Tuple[int, ...] = ()
        for height in range(1, self.max_height + 1):
            key = self._cell_of(point, height)
            level = self._levels[height - 1]
            node = level.get(key)
            if node is None:
                node = _GridNode(last_update=self._now)
                level[key] = node
            node.insert(self._now, self.decay_factor)
            finest_key = key

        if self._now - self._last_prune >= self.gap:
            self._prune()
            self._last_prune = self._now
        return finest_key

    def _thresholds(self, height: int) -> Tuple[float, float]:
        level = self._levels[height - 1]
        n_cells = max(1, len(level))
        steady_total = 1.0 / (1.0 - self.decay_factor)
        dense = self.c_m * steady_total / n_cells
        sparse = self.c_l * steady_total / n_cells
        return dense, sparse

    def _prune(self) -> None:
        for height in range(1, self.max_height + 1):
            _, sparse = self._thresholds(height)
            level = self._levels[height - 1]
            for key in list(level):
                node = level[key]
                node.decay(self._now, self.decay_factor)
                if node.density <= sparse * 0.5:
                    del level[key]

    # ------------------------------------------------------------------ #
    @staticmethod
    def _neighbours(key: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        result = []
        for axis in range(len(key)):
            for offset in (-1, 1):
                neighbour = list(key)
                neighbour[axis] += offset
                result.append(tuple(neighbour))
        return result

    def request_clustering(self) -> ClusterSnapshot:
        """Offline phase at ``clustering_height``: group adjacent dense cells."""
        height = self.clustering_height
        dense_threshold, sparse_threshold = self._thresholds(height)
        level = self._levels[height - 1]
        dense = []
        transitional = []
        for key, node in level.items():
            node.decay(self._now, self.decay_factor)
            if node.density >= dense_threshold:
                dense.append(key)
            elif node.density > sparse_threshold:
                transitional.append(key)
        labels: Dict[Tuple[int, ...], int] = {}
        dense_set = set(dense)
        cluster_id = 0
        for key in dense:
            if key in labels:
                continue
            labels[key] = cluster_id
            queue = deque([key])
            while queue:
                current = queue.popleft()
                for neighbour in self._neighbours(current):
                    if neighbour in dense_set and neighbour not in labels:
                        labels[neighbour] = cluster_id
                        queue.append(neighbour)
            cluster_id += 1
        for key in transitional:
            for neighbour in self._neighbours(key):
                if neighbour in labels and neighbour in dense_set:
                    labels[key] = labels[neighbour]
                    break
        self._macro_labels = labels
        self._macro_stale = False
        return self._publish_snapshot()

    def _serving_view(self) -> ServingView:
        low, high = self.bounds
        divisions = 2 ** self.clustering_height
        return ServingView(
            time=self._now,
            n_points=self._n_points,
            grid=GridSpec(
                width=(high - low) / divisions,
                origin=low,
                divisions=divisions,
                labels=self._macro_labels,
            ),
            metadata={"cells": self.n_cells, "height": self.clustering_height},
        )

    def predict_one(self, values: Sequence[float]) -> int:
        if self._macro_stale:
            self.request_clustering()
        key = self._cell_of(np.asarray(values, dtype=float), self.clustering_height)
        return self._macro_labels.get(key, -1)

    @property
    def n_clusters(self) -> int:
        if self._macro_stale:
            self.request_clustering()
        return len(set(self._macro_labels.values()))

    @property
    def n_cells(self) -> int:
        """Total number of occupied cells over all resolutions."""
        return sum(len(level) for level in self._levels)
