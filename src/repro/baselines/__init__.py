"""Stream-clustering baselines and batch clustering substrates.

The paper compares EDMStream against four density-based stream clusterers —
DenStream, D-Stream, DBSTREAM and MR-Stream — all of which follow the
two-phase design: an *online* component summarises the stream into
micro-clusters or grid cells, and an *offline* component periodically runs a
batch clustering algorithm over the summaries to produce the macro clusters.
CluStream (micro-clusters + offline k-means) is included as a related-work
extension.

The batch substrates those offline components need — DBSCAN and k-means —
are implemented here as well and are also usable standalone.  BIRCH (the
CF-Tree ancestor contrasted against the DP-Tree in Section 7) and SOStream
(single-phase, self-organising) are included for the ablation experiments.
"""

from repro.api import StreamClusterer
from repro.baselines.dbscan import DBSCAN
from repro.baselines.kmeans import KMeans
from repro.baselines.denstream import DenStream
from repro.baselines.dstream import DStream
from repro.baselines.dbstream import DBStream
from repro.baselines.mrstream import MRStream
from repro.baselines.clustream import CluStream
from repro.baselines.naive_dp import PeriodicDPStream
from repro.baselines.birch import Birch, CFTree, ClusteringFeature
from repro.baselines.sostream import SOStream

__all__ = [
    "StreamClusterer",
    "DBSCAN",
    "KMeans",
    "DenStream",
    "DStream",
    "DBStream",
    "MRStream",
    "CluStream",
    "PeriodicDPStream",
    "Birch",
    "CFTree",
    "ClusteringFeature",
    "SOStream",
]
