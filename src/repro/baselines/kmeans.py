"""Batch (weighted) k-means — Lloyd's algorithm with k-means++ seeding.

k-means is the classic offline component of micro-cluster based stream
clusterers (CluStream reclusters micro-cluster centres with a weighted
k-means).  The implementation supports per-point weights for exactly that
use and is deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.api import ClusterSnapshot, ServingView, StreamClusterer


class KMeans(StreamClusterer):
    """Weighted k-means clustering.

    Primarily a batch substrate (:meth:`fit` / :meth:`predict`, optionally
    weighted — how CluStream and BIRCH recluster their summaries), but it
    also implements the :class:`~repro.api.StreamClusterer` protocol as a
    buffer-and-recluster adapter: :meth:`learn_one` collects points and
    :meth:`request_clustering` refits the centres over the buffer.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    max_iter:
        Maximum number of Lloyd iterations.
    tol:
        Convergence tolerance on the total centre movement.
    seed:
        Random seed for the k-means++ initialisation.
    """

    name = "k-means"

    def __init__(
        self, n_clusters: int, max_iter: int = 100, tol: float = 1e-6, seed: int = 0
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        #: Configured k; ``n_clusters`` reports the *fitted* cluster count
        #: (the protocol's "clusters in the current clustering"), which can
        #: be smaller when fewer points than k have been seen.
        self.k = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centers_: Optional[np.ndarray] = None
        self.inertia_: float = float("nan")
        self._buffer: List[Tuple[float, ...]] = []
        self._now = 0.0
        self._stale = True

    # ------------------------------------------------------------------ #
    # StreamClusterer adapter (buffer + periodic refit)
    # ------------------------------------------------------------------ #
    def learn_one(
        self, values: Sequence[float], timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> int:
        if timestamp is None:
            timestamp = self._now + 1.0
        self._now = max(self._now, timestamp)
        self._buffer.append(tuple(float(v) for v in values))
        self._stale = True
        return len(self._buffer) - 1

    def request_clustering(self) -> ClusterSnapshot:
        """Refit the centres over every buffered point."""
        if self._buffer:
            self.fit(self._buffer)
        self._stale = False
        return self._publish_snapshot()

    def _serving_view(self) -> ServingView:
        centers = (
            self.centers_ if self.centers_ is not None else np.empty((0, 0), dtype=float)
        )
        return ServingView(
            time=self._now,
            n_points=len(self._buffer),
            seeds=centers,
            cell_ids=list(range(centers.shape[0])),
            labels=list(range(centers.shape[0])),
            metadata={"inertia": self.inertia_},
        )

    def predict_one(self, values: Sequence[float]) -> int:
        if self._stale and self._buffer:
            self.request_clustering()
        if self.centers_ is None:
            return -1
        return int(self.predict(values)[0])

    @property
    def n_clusters(self) -> int:
        """Number of fitted centres (0 before :meth:`fit`), per the protocol."""
        return 0 if self.centers_ is None else int(self.centers_.shape[0])

    # ------------------------------------------------------------------ #
    def _init_centers(
        self, data: np.ndarray, weights: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++ seeding (weighted)."""
        n = data.shape[0]
        k = min(self.k, n)
        probabilities = weights / weights.sum()
        first = int(rng.choice(n, p=probabilities))
        centers = [data[first]]
        closest_sq = np.full(n, np.inf)
        for _ in range(1, k):
            diffs = data - centers[-1]
            dist_sq = np.einsum("ij,ij->i", diffs, diffs)
            np.minimum(closest_sq, dist_sq, out=closest_sq)
            scores = closest_sq * weights
            total = scores.sum()
            if total <= 0:
                index = int(rng.integers(0, n))
            else:
                index = int(rng.choice(n, p=scores / total))
            centers.append(data[index])
        return np.asarray(centers)

    def fit(
        self,
        data: Sequence[Sequence[float]],
        weights: Optional[Sequence[float]] = None,
    ) -> "KMeans":
        """Fit the centres on ``data`` (optionally weighted)."""
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError("k-means requires a non-empty 2-D array of points")
        n = matrix.shape[0]
        weight_arr = (
            np.ones(n, dtype=float) if weights is None else np.asarray(weights, dtype=float)
        )
        if weight_arr.shape[0] != n:
            raise ValueError("weights length does not match data length")
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(matrix, weight_arr, rng)
        k = centers.shape[0]

        for _ in range(self.max_iter):
            labels = self._assign(matrix, centers)
            new_centers = centers.copy()
            for cluster in range(k):
                mask = labels == cluster
                mass = weight_arr[mask].sum()
                if mass > 0:
                    new_centers[cluster] = (
                        weight_arr[mask, None] * matrix[mask]
                    ).sum(axis=0) / mass
            movement = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if movement <= self.tol:
                break

        self.centers_ = centers
        labels = self._assign(matrix, centers)
        diffs = matrix - centers[labels]
        self.inertia_ = float((weight_arr * np.einsum("ij,ij->i", diffs, diffs)).sum())
        return self

    @staticmethod
    def _assign(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
        distances = np.linalg.norm(data[:, None, :] - centers[None, :, :], axis=2)
        return np.argmin(distances, axis=1)

    def predict(self, data: Sequence[Sequence[float]]) -> np.ndarray:
        """Assign each point of ``data`` to its nearest fitted centre."""
        if self.centers_ is None:
            raise RuntimeError("KMeans.predict called before fit")
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        return self._assign(matrix, self.centers_)

    def fit_predict(
        self,
        data: Sequence[Sequence[float]],
        weights: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Fit and return the labels of ``data``."""
        self.fit(data, weights=weights)
        return self.predict(data)
