"""Small vectorised helper for maintaining a dynamic set of centres.

The micro-cluster based baselines (DenStream, DBSTREAM, CluStream) all need
the same hot-path primitive as EDMStream: "distance from the arriving point
to every summary centre".  ``CenterArray`` keeps the centres in a growable
``numpy`` matrix keyed by integer ids so that the query is a single
vectorised operation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_INITIAL_CAPACITY = 32


class CenterArray:
    """A growable keyed matrix of d-dimensional centres."""

    def __init__(self) -> None:
        self._ids: List[int] = []
        self._index: Dict[int, int] = {}
        self._matrix: Optional[np.ndarray] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return key in self._index

    def ids(self) -> List[int]:
        """Keys in array order (a copy)."""
        return list(self._ids)

    def _ensure_capacity(self, dimension: int) -> None:
        if self._matrix is None:
            self._matrix = np.zeros((_INITIAL_CAPACITY, dimension), dtype=float)
        elif self._size >= self._matrix.shape[0]:
            grown = np.zeros((self._matrix.shape[0] * 2, dimension), dtype=float)
            grown[: self._size] = self._matrix[: self._size]
            self._matrix = grown

    def add(self, key: int, center: Sequence[float]) -> None:
        """Insert a centre under ``key``; raises ``KeyError`` on duplicates."""
        if key in self._index:
            raise KeyError(f"key {key} already present")
        vector = np.asarray(center, dtype=float)
        self._ensure_capacity(vector.shape[0])
        if vector.shape[0] != self._matrix.shape[1]:
            raise ValueError(
                f"center dimension {vector.shape[0]} does not match {self._matrix.shape[1]}"
            )
        self._matrix[self._size] = vector
        self._index[key] = self._size
        self._ids.append(key)
        self._size += 1

    def update(self, key: int, center: Sequence[float]) -> None:
        """Overwrite the centre stored under ``key``."""
        position = self._index[key]
        self._matrix[position] = np.asarray(center, dtype=float)

    def remove(self, key: int) -> None:
        """Remove a centre (swap-with-last compaction)."""
        position = self._index.pop(key)
        last = self._size - 1
        if position != last:
            moved = self._ids[last]
            self._ids[position] = moved
            self._index[moved] = position
            self._matrix[position] = self._matrix[last]
        self._ids.pop()
        self._size -= 1

    def get(self, key: int) -> np.ndarray:
        """Return (a copy of) the centre stored under ``key``."""
        return self._matrix[self._index[key]].copy()

    def distances_to(self, point: Sequence[float]) -> Tuple[List[int], np.ndarray]:
        """Return (keys, distances) from ``point`` to every stored centre."""
        if self._size == 0:
            return [], np.empty(0, dtype=float)
        query = np.asarray(point, dtype=float)
        diffs = self._matrix[: self._size] - query
        return list(self._ids), np.sqrt(np.einsum("ij,ij->i", diffs, diffs))

    def nearest(self, point: Sequence[float]) -> Optional[Tuple[int, float]]:
        """Nearest stored centre as ``(key, distance)`` or ``None`` if empty."""
        keys, distances = self.distances_to(point)
        if not keys:
            return None
        position = int(np.argmin(distances))
        return keys[position], float(distances[position])

    def matrix(self) -> np.ndarray:
        """The centres stacked into an ``(n, d)`` array (a copy, array order)."""
        if self._size == 0 or self._matrix is None:
            return np.empty((0, 0), dtype=float)
        return self._matrix[: self._size].copy()
