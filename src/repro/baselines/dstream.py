"""D-Stream (Chen & Tu — KDD 2007): density-based clustering over grids.

The data space is partitioned into a uniform grid.  Each arriving point adds
1 to its grid cell's decayed density.  Grids are classified by comparing
their density against fractions of the steady-state total ``1/(N(1-a))``:

* *dense* grids: density ≥ C_m / (N (1 - decay)),
* *sparse* grids: density ≤ C_l / (N (1 - decay)),
* *transitional* grids: in between,

where N is the number of grid cells covered so far.  The offline phase groups
neighbouring dense grids into clusters and attaches transitional grids on the
border; sporadic sparse grids are removed periodically.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import ClusterSnapshot, GridSpec, ServingView, StreamClusterer


@dataclass
class GridCell:
    """Decayed density of one grid cell."""

    density: float = 0.0
    last_update: float = 0.0
    last_insert: float = 0.0

    def decay(self, now: float, decay_factor: float) -> None:
        """Apply exponential decay up to ``now``."""
        if now <= self.last_update:
            return
        self.density *= decay_factor ** (now - self.last_update)
        self.last_update = now

    def insert(self, now: float, decay_factor: float) -> None:
        """Decay to ``now`` and add one point."""
        self.decay(now, decay_factor)
        self.density += 1.0
        self.last_insert = now


class DStream(StreamClusterer):
    """Grid-based density stream clustering.

    Parameters
    ----------
    grid_size:
        Side length of a grid cell in every dimension.
    c_m:
        Dense-grid threshold multiplier (> 1).
    c_l:
        Sparse-grid threshold multiplier (in (0, 1)).
    decay_a, decay_lambda:
        Exponential decay parameters; effective per-time factor is
        ``decay_a ** decay_lambda``.
    gap:
        Time between offline maintenance passes (sporadic-grid removal).
    """

    name = "D-Stream"

    def __init__(
        self,
        grid_size: float = 1.0,
        c_m: float = 3.0,
        c_l: float = 0.8,
        decay_a: float = 0.998,
        decay_lambda: float = 1.0,
        gap: float = 1.0,
    ) -> None:
        if grid_size <= 0:
            raise ValueError(f"grid_size must be positive, got {grid_size}")
        if c_m <= 1.0:
            raise ValueError(f"c_m must be > 1, got {c_m}")
        if not 0.0 < c_l < 1.0:
            raise ValueError(f"c_l must be in (0, 1), got {c_l}")
        self.grid_size = grid_size
        self.c_m = c_m
        self.c_l = c_l
        self.decay_factor = decay_a ** decay_lambda
        if not 0.0 < self.decay_factor < 1.0:
            raise ValueError(
                f"decay parameters produce an invalid decay factor {self.decay_factor}"
            )
        self.gap = gap

        self._grids: Dict[Tuple[int, ...], GridCell] = {}
        self._now = 0.0
        self._last_maintenance = 0.0
        self._n_points = 0
        self._macro_labels: Dict[Tuple[int, ...], int] = {}
        self._macro_stale = True

    # ------------------------------------------------------------------ #
    def _grid_of(self, point: np.ndarray) -> Tuple[int, ...]:
        return tuple(int(math.floor(v / self.grid_size)) for v in point)

    def _thresholds(self) -> Tuple[float, float]:
        """(dense, sparse) density thresholds, following D-Stream's D_m / D_l."""
        n_grids = max(1, len(self._grids))
        steady_total = 1.0 / (1.0 - self.decay_factor)
        dense = self.c_m * steady_total / n_grids
        sparse = self.c_l * steady_total / n_grids
        return dense, sparse

    def learn_one(
        self, values: Sequence[float], timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> Tuple[int, ...]:
        point = np.asarray(values, dtype=float)
        if timestamp is None:
            timestamp = self._now + 1.0
        self._now = max(self._now, timestamp)
        self._n_points += 1
        self._macro_stale = True

        key = self._grid_of(point)
        cell = self._grids.get(key)
        if cell is None:
            cell = GridCell(last_update=self._now)
            self._grids[key] = cell
        cell.insert(self._now, self.decay_factor)

        if self._now - self._last_maintenance >= self.gap:
            self._remove_sporadic()
            self._last_maintenance = self._now
        return key

    def _remove_sporadic(self) -> None:
        _, sparse = self._thresholds()
        for key in list(self._grids):
            cell = self._grids[key]
            cell.decay(self._now, self.decay_factor)
            # A sparse grid that has not received points for a full gap is
            # considered sporadic and deleted.
            if cell.density <= sparse and self._now - cell.last_insert > self.gap:
                del self._grids[key]

    # ------------------------------------------------------------------ #
    @staticmethod
    def _neighbours(key: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        """Axis-aligned neighbouring grid keys (the D-Stream adjacency)."""
        result = []
        for axis in range(len(key)):
            for offset in (-1, 1):
                neighbour = list(key)
                neighbour[axis] += offset
                result.append(tuple(neighbour))
        return result

    def request_clustering(self) -> ClusterSnapshot:
        """Offline phase: connected components of dense grids + transitional borders."""
        dense_threshold, sparse_threshold = self._thresholds()
        dense: List[Tuple[int, ...]] = []
        transitional: List[Tuple[int, ...]] = []
        for key, cell in self._grids.items():
            cell.decay(self._now, self.decay_factor)
            if cell.density >= dense_threshold:
                dense.append(key)
            elif cell.density > sparse_threshold:
                transitional.append(key)

        labels: Dict[Tuple[int, ...], int] = {}
        cluster_id = 0
        dense_set = set(dense)
        for key in dense:
            if key in labels:
                continue
            queue = deque([key])
            labels[key] = cluster_id
            while queue:
                current = queue.popleft()
                for neighbour in self._neighbours(current):
                    if neighbour in dense_set and neighbour not in labels:
                        labels[neighbour] = cluster_id
                        queue.append(neighbour)
            cluster_id += 1
        # Attach transitional grids to an adjacent dense cluster, if any.
        for key in transitional:
            for neighbour in self._neighbours(key):
                if neighbour in labels and neighbour in dense_set:
                    labels[key] = labels[neighbour]
                    break
        self._macro_labels = labels
        self._macro_stale = False
        return self._publish_snapshot()

    def _serving_view(self) -> ServingView:
        return ServingView(
            time=self._now,
            n_points=self._n_points,
            grid=GridSpec(width=self.grid_size, labels=self._macro_labels),
            metadata={"grids": len(self._grids)},
        )

    def predict_one(self, values: Sequence[float]) -> int:
        if self._macro_stale:
            self.request_clustering()
        key = self._grid_of(np.asarray(values, dtype=float))
        return self._macro_labels.get(key, -1)

    @property
    def n_clusters(self) -> int:
        if self._macro_stale:
            self.request_clustering()
        return len(set(self._macro_labels.values()))

    @property
    def n_grids(self) -> int:
        """Number of grid cells currently maintained."""
        return len(self._grids)
