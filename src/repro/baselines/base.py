"""Common interface for all stream clusterers in this repository.

The benchmark harness drives every algorithm — EDMStream and the baselines —
through the same three calls:

* :meth:`StreamClusterer.learn_one` for each arriving point,
* :meth:`StreamClusterer.request_clustering` whenever an up-to-date clustering
  is needed (this is where two-phase algorithms pay for their offline step),
* :meth:`StreamClusterer.predict_one` to map a point to a macro-cluster label.

EDMStream exposes ``learn_one`` / ``predict_one`` natively and maintains its
clustering incrementally, so its ``request_clustering`` is (nearly) free; the
harness treats any object with these methods uniformly.
"""

from __future__ import annotations

import abc
from typing import Any, Optional


class StreamClusterer(abc.ABC):
    """Abstract base class for two-phase stream clustering algorithms."""

    #: Human-readable algorithm name used in reports.
    name: str = "stream-clusterer"

    @abc.abstractmethod
    def learn_one(
        self, values: Any, timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> Any:
        """Ingest a single stream point (the online phase)."""

    @abc.abstractmethod
    def request_clustering(self) -> None:
        """Bring the macro clustering up to date (the offline phase)."""

    @abc.abstractmethod
    def predict_one(self, values: Any) -> int:
        """Macro-cluster label of a point under the current clustering (-1 = outlier)."""

    @property
    @abc.abstractmethod
    def n_clusters(self) -> int:
        """Number of macro clusters in the current clustering."""

    # Convenience -------------------------------------------------------- #
    def learn_many(self, stream) -> None:
        """Ingest an iterable of :class:`~repro.streams.point.StreamPoint`."""
        for point in stream:
            self.learn_one(point.values, timestamp=point.timestamp, label=point.label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
