"""Deprecated location of :class:`~repro.api.StreamClusterer`.

The protocol was promoted into :mod:`repro.api` when the ingest/serve split
became a first-class API (snapshot-based serving); this module remains as a
one-release import shim.
"""

from __future__ import annotations

import warnings

from repro.api.protocol import StreamClusterer

warnings.warn(
    "repro.baselines.base is deprecated; import StreamClusterer from repro.api",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["StreamClusterer"]
