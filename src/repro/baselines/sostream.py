"""SOStream (Isaksson, Dunham & Hahsler, MLDM 2012).

SOStream is a self-organising density-based stream clusterer: every arriving
point competes for a *winner* micro-cluster; when the point falls inside the
winner's dynamically-estimated radius the winner absorbs it and drags its
neighbouring micro-clusters towards itself (the self-organising-map step),
otherwise a new micro-cluster is created.  Micro-clusters that drift within
a merge distance of the winner are merged, so the set of micro-clusters *is*
the clustering — there is no separate offline phase.

It is cited by the paper as related work ([14]); we include it as an extra
single-phase competitor for the ablation experiments.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines._centers import CenterArray
from repro.api import ClusterSnapshot, ServingView, StreamClusterer

_so_counter = itertools.count(1)


@dataclass
class _SOMicroCluster:
    """One SOStream micro-cluster (centroid, adaptive radius, decayed weight)."""

    centroid: np.ndarray
    radius: float = 0.0
    weight: float = 1.0
    last_update: float = 0.0
    mc_id: int = field(default_factory=lambda: next(_so_counter))

    def fade(self, now: float, decay_factor: float) -> None:
        """Decay the weight to the current time."""
        if now <= self.last_update:
            return
        self.weight *= decay_factor ** (now - self.last_update)
        self.last_update = now


class SOStream(StreamClusterer):
    """Self-organising density-based clustering over a data stream.

    Parameters
    ----------
    alpha:
        Learning rate of the winner's movement towards the absorbed point.
    min_pts:
        Neighbourhood size: the winner's radius is its distance to its
        ``min_pts``-th nearest fellow micro-cluster.
    merge_threshold:
        Two micro-clusters closer than this are merged after an absorption.
    decay_a, decay_lambda:
        Exponential fading parameters (per second); the effective per-second
        factor is ``decay_a ** (-decay_lambda)`` for a > 1.
    fade_gap:
        How often (in stream time) faded micro-clusters are pruned.
    weight_threshold:
        Micro-clusters whose decayed weight falls below this are pruned.
    """

    name = "SOStream"

    def __init__(
        self,
        alpha: float = 0.3,
        min_pts: int = 2,
        merge_threshold: float = 0.1,
        decay_a: float = 0.998,
        decay_lambda: float = 1.0,
        fade_gap: float = 1.0,
        weight_threshold: float = 0.25,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        if merge_threshold < 0:
            raise ValueError(f"merge_threshold must be non-negative, got {merge_threshold}")
        if fade_gap <= 0:
            raise ValueError(f"fade_gap must be positive, got {fade_gap}")
        self.alpha = alpha
        self.min_pts = min_pts
        self.merge_threshold = merge_threshold
        self.decay_factor = (
            decay_a ** (-abs(decay_lambda)) if decay_a > 1 else decay_a ** abs(decay_lambda)
        )
        if not 0.0 < self.decay_factor < 1.0:
            raise ValueError(
                f"decay parameters produce an invalid decay factor {self.decay_factor}"
            )
        self.fade_gap = fade_gap
        self.weight_threshold = weight_threshold

        self._clusters: Dict[int, _SOMicroCluster] = {}
        self._centers = CenterArray()
        self._now = 0.0
        self._last_fade = 0.0
        self._n_points = 0
        self._labels: Dict[int, int] = {}
        self._labels_stale = True
        #: Number of merge operations performed (exposed for tests/reports).
        self.n_merges = 0

    # ------------------------------------------------------------------ #
    # online phase
    # ------------------------------------------------------------------ #
    def learn_one(
        self, values: Sequence[float], timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> int:
        point = np.asarray(values, dtype=float)
        if timestamp is None:
            timestamp = self._now + 1.0
        self._now = max(self._now, timestamp)
        self._n_points += 1
        self._labels_stale = True

        winner_id = self._winner(point)
        # Absorption requires at least min_pts micro-clusters (the original
        # SOStream gate): before that the neighbourhood radius is not a
        # meaningful density estimate and every point seeds its own cluster.
        if winner_id is None or len(self._clusters) < self.min_pts:
            assigned = self._create(point)
        else:
            winner = self._clusters[winner_id]
            winner.radius = self._neighbourhood_radius(winner_id)
            distance = float(np.linalg.norm(point - winner.centroid))
            if winner.radius > 0 and distance <= winner.radius:
                self._absorb(winner, point)
                self._merge_overlapping(winner)
                assigned = winner.mc_id
            else:
                assigned = self._create(point)

        if self._now - self._last_fade >= self.fade_gap:
            self._fade_and_prune()
            self._last_fade = self._now
        return assigned

    def _winner(self, point: np.ndarray) -> Optional[int]:
        nearest = self._centers.nearest(point)
        return None if nearest is None else int(nearest[0])

    def _create(self, point: np.ndarray) -> int:
        cluster = _SOMicroCluster(centroid=point.copy(), weight=1.0, last_update=self._now)
        self._clusters[cluster.mc_id] = cluster
        self._centers.add(cluster.mc_id, cluster.centroid)
        return cluster.mc_id

    def _neighbourhood_radius(self, mc_id: int) -> float:
        """Distance from ``mc_id`` to its ``min_pts``-th nearest micro-cluster."""
        if len(self._clusters) <= 1:
            return 0.0
        center = self._clusters[mc_id].centroid
        keys, distances = self._centers.distances_to(center)
        others = sorted(
            distances[i] for i in range(len(keys)) if keys[i] != mc_id
        )
        k = min(self.min_pts, len(others))
        return float(others[k - 1]) if k >= 1 else 0.0

    def _absorb(self, winner: _SOMicroCluster, point: np.ndarray) -> None:
        winner.fade(self._now, self.decay_factor)
        winner.weight += 1.0
        winner.centroid = winner.centroid + self.alpha * (point - winner.centroid)
        self._centers.update(winner.mc_id, winner.centroid)

        # Self-organising step: drag the winner's neighbours towards it with a
        # Gaussian influence of their distance.
        if winner.radius <= 0:
            return
        keys, distances = self._centers.distances_to(winner.centroid)
        for i in range(len(keys)):
            mc_id = int(keys[i])
            if mc_id == winner.mc_id or distances[i] > winner.radius:
                continue
            neighbour = self._clusters[mc_id]
            influence = math.exp(-(distances[i] ** 2) / (2.0 * winner.radius ** 2))
            neighbour.centroid = neighbour.centroid + self.alpha * influence * (
                winner.centroid - neighbour.centroid
            )
            self._centers.update(mc_id, neighbour.centroid)

    def _merge_overlapping(self, winner: _SOMicroCluster) -> None:
        keys, distances = self._centers.distances_to(winner.centroid)
        for i in range(len(keys)):
            mc_id = int(keys[i])
            if mc_id == winner.mc_id or mc_id not in self._clusters:
                continue
            if distances[i] > self.merge_threshold:
                continue
            other = self._clusters.pop(mc_id)
            self._centers.remove(mc_id)
            total = winner.weight + other.weight
            winner.centroid = (
                winner.weight * winner.centroid + other.weight * other.centroid
            ) / total
            winner.weight = total
            winner.radius = max(winner.radius, other.radius)
            self._centers.update(winner.mc_id, winner.centroid)
            self.n_merges += 1

    def _fade_and_prune(self) -> None:
        for mc_id in list(self._clusters):
            cluster = self._clusters[mc_id]
            cluster.fade(self._now, self.decay_factor)
            if cluster.weight < self.weight_threshold and len(self._clusters) > 1:
                del self._clusters[mc_id]
                self._centers.remove(mc_id)

    # ------------------------------------------------------------------ #
    # clustering queries
    # ------------------------------------------------------------------ #
    def request_clustering(self) -> ClusterSnapshot:
        """Assign compact macro labels to the surviving micro-clusters."""
        ordered = sorted(self._clusters)
        self._labels = {mc_id: i for i, mc_id in enumerate(ordered)}
        self._labels_stale = False
        return self._publish_snapshot()

    def _serving_view(self) -> ServingView:
        mc_ids = self._centers.ids()
        # Per-cluster coverage: predict_one reaches 2x the larger of the
        # cluster's own radius and the merge threshold (see predict_one).
        coverage = []
        for mc_id in mc_ids:
            reach = max(self._clusters[mc_id].radius, self.merge_threshold)
            coverage.append(2.0 * reach if reach > 0 else np.inf)
        return ServingView(
            time=self._now,
            n_points=self._n_points,
            seeds=self._centers.matrix(),
            cell_ids=mc_ids,
            labels=[self._labels.get(mc_id, -1) for mc_id in mc_ids],
            densities=[self._clusters[mc_id].weight for mc_id in mc_ids],
            coverage=np.asarray(coverage, dtype=float),
            metadata={"micro_clusters": len(self._clusters), "merges": self.n_merges},
        )

    def predict_one(self, values: Sequence[float]) -> int:
        if self._labels_stale:
            self.request_clustering()
        nearest = self._centers.nearest(np.asarray(values, dtype=float))
        if nearest is None:
            return -1
        mc_id, distance = nearest
        cluster = self._clusters[int(mc_id)]
        reach = max(cluster.radius, self.merge_threshold)
        if reach > 0 and distance > 2.0 * reach:
            return -1
        return self._labels.get(int(mc_id), -1)

    @property
    def n_clusters(self) -> int:
        return len(self._clusters)

    @property
    def n_micro_clusters(self) -> int:
        """Alias of :attr:`n_clusters` (SOStream has a single granularity)."""
        return len(self._clusters)
