"""CluStream (Aggarwal, Han, Wang, Yu — VLDB 2003).

CluStream is the classic two-phase framework referenced in the paper's
related work: the online phase maintains a fixed budget of ``q``
micro-clusters (cluster feature vectors extended with temporal statistics);
a new point is absorbed by the nearest micro-cluster if it falls within its
maximum boundary, otherwise a new micro-cluster is created and either the
oldest micro-cluster is deleted or the two closest are merged to stay within
budget.  The offline phase reclusters the micro-cluster centres with a
weighted k-means.

It is included as an extension beyond the four baselines of Section 6 so
that the harness covers the whole design space discussed in Section 7
(offline vs online, DBSCAN-based vs k-means-based reclustering).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.baselines._centers import CenterArray
from repro.api import ClusterSnapshot, ServingView, StreamClusterer
from repro.baselines.kmeans import KMeans

_mc_counter = itertools.count(1)


@dataclass
class _CluMicroCluster:
    """CF vector with temporal statistics (CF1x, CF2x, CF1t, CF2t, n)."""

    linear_sum: np.ndarray
    squared_sum: np.ndarray
    time_sum: float
    time_squared_sum: float
    count: float
    mc_id: int = field(default_factory=lambda: next(_mc_counter))

    @classmethod
    def from_point(cls, point: np.ndarray, timestamp: float) -> "_CluMicroCluster":
        return cls(
            linear_sum=point.copy(),
            squared_sum=point * point,
            time_sum=timestamp,
            time_squared_sum=timestamp * timestamp,
            count=1.0,
        )

    def insert(self, point: np.ndarray, timestamp: float) -> None:
        self.linear_sum += point
        self.squared_sum += point * point
        self.time_sum += timestamp
        self.time_squared_sum += timestamp * timestamp
        self.count += 1.0

    def merge(self, other: "_CluMicroCluster") -> None:
        self.linear_sum += other.linear_sum
        self.squared_sum += other.squared_sum
        self.time_sum += other.time_sum
        self.time_squared_sum += other.time_squared_sum
        self.count += other.count

    @property
    def center(self) -> np.ndarray:
        return self.linear_sum / self.count

    @property
    def rms_radius(self) -> float:
        mean_sq = self.squared_sum / self.count
        center = self.center
        variance = float(np.sum(mean_sq - center * center))
        return math.sqrt(max(variance, 0.0))

    @property
    def mean_timestamp(self) -> float:
        return self.time_sum / self.count


class CluStream(StreamClusterer):
    """A framework for clustering evolving data streams.

    Parameters
    ----------
    n_micro_clusters:
        Budget ``q`` of micro-clusters kept online.
    n_macro_clusters:
        ``k`` of the offline weighted k-means.
    boundary_factor:
        Multiplier ``t`` of the RMS radius defining the maximum boundary of a
        micro-cluster.
    horizon:
        Relevance horizon: micro-clusters whose mean timestamp is older than
        ``now - horizon`` are candidates for deletion when the budget is full.
    seed:
        Random seed of the offline k-means.
    """

    name = "CluStream"

    def __init__(
        self,
        n_micro_clusters: int = 100,
        n_macro_clusters: int = 5,
        boundary_factor: float = 2.0,
        horizon: float = 1000.0,
        seed: int = 0,
    ) -> None:
        if n_micro_clusters < 2:
            raise ValueError(f"n_micro_clusters must be >= 2, got {n_micro_clusters}")
        if n_macro_clusters < 1:
            raise ValueError(f"n_macro_clusters must be >= 1, got {n_macro_clusters}")
        if boundary_factor <= 0:
            raise ValueError(f"boundary_factor must be positive, got {boundary_factor}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.n_micro_clusters = n_micro_clusters
        self.n_macro_clusters = n_macro_clusters
        self.boundary_factor = boundary_factor
        self.horizon = horizon
        self.seed = seed

        self._clusters: Dict[int, _CluMicroCluster] = {}
        self._centers = CenterArray()
        self._now = 0.0
        self._n_points = 0
        self._macro_labels: Dict[int, int] = {}
        self._macro_stale = True

    # ------------------------------------------------------------------ #
    def learn_one(
        self, values: Sequence[float], timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> int:
        point = np.asarray(values, dtype=float)
        if timestamp is None:
            timestamp = self._now + 1.0
        self._now = max(self._now, timestamp)
        self._n_points += 1
        self._macro_stale = True

        nearest = self._centers.nearest(point)
        if nearest is not None:
            mc_id, distance = nearest
            mc = self._clusters[mc_id]
            boundary = self.boundary_factor * mc.rms_radius
            if boundary <= 0:
                # Singleton micro-cluster: use the distance to the next
                # nearest micro-cluster as its boundary, as in the paper.
                boundary = self._next_nearest_distance(mc_id, mc.center)
            if distance <= boundary:
                mc.insert(point, self._now)
                self._centers.update(mc_id, mc.center)
                return mc_id

        # Create a new micro-cluster, making room first if necessary.
        if len(self._clusters) >= self.n_micro_clusters:
            self._make_room()
        mc = _CluMicroCluster.from_point(point, self._now)
        self._clusters[mc.mc_id] = mc
        self._centers.add(mc.mc_id, mc.center)
        return mc.mc_id

    def _next_nearest_distance(self, mc_id: int, center: np.ndarray) -> float:
        keys, distances = self._centers.distances_to(center)
        best = math.inf
        for key, distance in zip(keys, distances):
            if key != mc_id and distance < best:
                best = float(distance)
        return best if best != math.inf else 1.0

    def _make_room(self) -> None:
        """Delete an outdated micro-cluster or merge the two closest ones."""
        threshold = self._now - self.horizon
        outdated = [
            mc_id for mc_id, mc in self._clusters.items() if mc.mean_timestamp < threshold
        ]
        if outdated:
            victim = min(outdated, key=lambda mc_id: self._clusters[mc_id].mean_timestamp)
            del self._clusters[victim]
            self._centers.remove(victim)
            return
        # Merge the closest pair of micro-clusters.
        ids = list(self._clusters)
        centers = np.asarray([self._clusters[m].center for m in ids])
        best_pair: Optional[Tuple[int, int]] = None
        best_distance = math.inf
        for i in range(len(ids)):
            diffs = centers[i + 1 :] - centers[i]
            if diffs.size == 0:
                continue
            distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
            j = int(np.argmin(distances))
            if float(distances[j]) < best_distance:
                best_distance = float(distances[j])
                best_pair = (ids[i], ids[i + 1 + j])
        if best_pair is None:
            return
        keep, drop = best_pair
        self._clusters[keep].merge(self._clusters[drop])
        self._centers.update(keep, self._clusters[keep].center)
        del self._clusters[drop]
        self._centers.remove(drop)

    # ------------------------------------------------------------------ #
    def request_clustering(self) -> ClusterSnapshot:
        """Offline phase: weighted k-means over micro-cluster centres."""
        self._macro_labels = {}
        if self._clusters:
            ids = list(self._clusters)
            centers = np.asarray([self._clusters[m].center for m in ids])
            weights = np.asarray([self._clusters[m].count for m in ids])
            k = min(self.n_macro_clusters, len(ids))
            kmeans = KMeans(n_clusters=k, seed=self.seed)
            labels = kmeans.fit_predict(centers, weights=weights)
            self._macro_labels = {mc_id: int(label) for mc_id, label in zip(ids, labels)}
        self._macro_stale = False
        return self._publish_snapshot()

    def _serving_view(self) -> ServingView:
        mc_ids = self._centers.ids()
        return ServingView(
            time=self._now,
            n_points=self._n_points,
            seeds=self._centers.matrix(),
            cell_ids=mc_ids,
            labels=[self._macro_labels.get(mc_id, -1) for mc_id in mc_ids],
            densities=[self._clusters[mc_id].count for mc_id in mc_ids],
            metadata={"micro_clusters": len(self._clusters)},
        )

    def predict_one(self, values: Sequence[float]) -> int:
        if self._macro_stale:
            self.request_clustering()
        nearest = self._centers.nearest(np.asarray(values, dtype=float))
        if nearest is None:
            return -1
        mc_id, _ = nearest
        return self._macro_labels.get(mc_id, -1)

    @property
    def n_clusters(self) -> int:
        if self._macro_stale:
            self.request_clustering()
        return len(set(self._macro_labels.values()))

    @property
    def n_micro(self) -> int:
        """Number of micro-clusters currently maintained."""
        return len(self._clusters)
