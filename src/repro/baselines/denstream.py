"""DenStream (Cao, Ester, Qian, Zhou — SDM 2006).

DenStream keeps two kinds of decayed micro-clusters:

* *potential* micro-clusters (p-micro-clusters) whose weight is at least
  ``beta_mu = β·µ``, and
* *outlier* micro-clusters (o-micro-clusters) below that threshold.

A new point is merged into the nearest p-micro-cluster if doing so keeps its
radius ≤ ε; otherwise into the nearest o-micro-cluster under the same
condition; otherwise it seeds a new o-micro-cluster.  Periodically (every
``T_p`` time units) micro-clusters whose weight decayed below their threshold
are pruned.  The *offline* phase runs a weighted DBSCAN over the
p-micro-cluster centres to produce the macro clusters.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines._centers import CenterArray
from repro.api import ClusterSnapshot, ServingView, StreamClusterer
from repro.baselines.dbscan import DBSCAN

_mc_counter = itertools.count(1)


@dataclass
class MicroCluster:
    """A decayed cluster feature vector (CF1, CF2, weight)."""

    dimension: int
    creation_time: float
    weight: float = 0.0
    linear_sum: np.ndarray = field(default=None)
    squared_sum: np.ndarray = field(default=None)
    last_update: float = 0.0
    mc_id: int = field(default_factory=lambda: next(_mc_counter))

    def __post_init__(self) -> None:
        if self.linear_sum is None:
            self.linear_sum = np.zeros(self.dimension, dtype=float)
        if self.squared_sum is None:
            self.squared_sum = np.zeros(self.dimension, dtype=float)

    def decay(self, now: float, decay_factor: float) -> None:
        """Apply exponential decay up to ``now``."""
        if now <= self.last_update:
            return
        factor = decay_factor ** (now - self.last_update)
        self.weight *= factor
        self.linear_sum *= factor
        self.squared_sum *= factor
        self.last_update = now

    def insert(self, point: np.ndarray, now: float, decay_factor: float) -> None:
        """Decay to ``now`` and absorb ``point`` with weight 1."""
        self.decay(now, decay_factor)
        self.weight += 1.0
        self.linear_sum += point
        self.squared_sum += point * point

    @property
    def center(self) -> np.ndarray:
        """Weighted centre of the micro-cluster."""
        if self.weight <= 0:
            return self.linear_sum.copy()
        return self.linear_sum / self.weight

    @property
    def radius(self) -> float:
        """RMS deviation of the members from the centre."""
        if self.weight <= 0:
            return 0.0
        mean_sq = self.squared_sum / self.weight
        center = self.linear_sum / self.weight
        variance = float(np.sum(mean_sq - center * center))
        return math.sqrt(max(variance, 0.0))

    def radius_if_inserted(self, point: np.ndarray) -> float:
        """Radius the micro-cluster would have after absorbing ``point``."""
        weight = self.weight + 1.0
        linear = self.linear_sum + point
        squared = self.squared_sum + point * point
        mean_sq = squared / weight
        center = linear / weight
        variance = float(np.sum(mean_sq - center * center))
        return math.sqrt(max(variance, 0.0))


class DenStream(StreamClusterer):
    """Density-based clustering over an evolving data stream with noise.

    Parameters
    ----------
    eps:
        Maximum micro-cluster radius ε (also the offline DBSCAN ε is 2·ε,
        following the original paper's suggestion of reachability between
        adjacent micro-clusters).
    mu:
        Core weight threshold µ.
    beta:
        Outlier threshold multiplier β in (0, 1].
    decay_a, decay_lambda:
        Exponential decay parameters; the effective per-time decay factor is
        ``decay_a ** decay_lambda`` (the paper fixes a = 2 and tunes λ).
    prune_interval:
        Time between pruning passes (the paper's ``T_p``); ``None`` derives
        it from the decay parameters as in the original paper.
    """

    name = "DenStream"

    def __init__(
        self,
        eps: float = 0.3,
        mu: float = 10.0,
        beta: float = 0.2,
        decay_a: float = 2.0,
        decay_lambda: float = 0.0028,
        prune_interval: Optional[float] = None,
    ) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if mu <= 0:
            raise ValueError(f"mu must be positive, got {mu}")
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.eps = eps
        self.mu = mu
        self.beta = beta
        self.decay_factor = decay_a ** (-abs(decay_lambda)) if decay_a > 1 else decay_a ** abs(decay_lambda)
        if not 0.0 < self.decay_factor < 1.0:
            raise ValueError(
                f"decay parameters produce an invalid decay factor {self.decay_factor}"
            )
        if prune_interval is None:
            # T_p = ceil( log_decay( beta*mu / (beta*mu - 1) ) ), original Eq. (4.1);
            # falls back to 1.0 when beta*mu <= 1 (no meaningful bound).
            if self.beta * self.mu > 1.0:
                ratio = (self.beta * self.mu) / (self.beta * self.mu - 1.0)
                prune_interval = max(1.0, math.log(ratio) / -math.log(self.decay_factor))
            else:
                prune_interval = 1.0
        self.prune_interval = prune_interval

        self._potential: Dict[int, MicroCluster] = {}
        self._outlier: Dict[int, MicroCluster] = {}
        self._potential_centers = CenterArray()
        self._outlier_centers = CenterArray()
        self._now = 0.0
        self._last_prune = 0.0
        self._n_points = 0
        self._macro_labels: Dict[int, int] = {}
        self._macro_stale = True

    # ------------------------------------------------------------------ #
    # online phase
    # ------------------------------------------------------------------ #
    @property
    def core_weight_threshold(self) -> float:
        """Weight at which a micro-cluster counts as potential (β·µ)."""
        return self.beta * self.mu

    def learn_one(
        self, values: Sequence[float], timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> int:
        point = np.asarray(values, dtype=float)
        if timestamp is None:
            timestamp = self._now + 1.0
        self._now = max(self._now, timestamp)
        self._n_points += 1
        self._macro_stale = True

        merged_id = self._merge(point)

        if self._now - self._last_prune >= self.prune_interval:
            self._prune()
            self._last_prune = self._now
        return merged_id

    def _merge(self, point: np.ndarray) -> int:
        # Try the nearest potential micro-cluster first.
        for population, centers in (
            (self._potential, self._potential_centers),
            (self._outlier, self._outlier_centers),
        ):
            nearest = centers.nearest(point)
            if nearest is None:
                continue
            mc_id, _ = nearest
            mc = population[mc_id]
            if mc.radius_if_inserted(point) <= self.eps:
                mc.insert(point, self._now, self.decay_factor)
                centers.update(mc_id, mc.center)
                if population is self._outlier and mc.weight >= self.core_weight_threshold:
                    self._promote(mc_id)
                return mc.mc_id
        # No suitable micro-cluster: create a new outlier micro-cluster.
        mc = MicroCluster(dimension=point.shape[0], creation_time=self._now, last_update=self._now)
        mc.insert(point, self._now, self.decay_factor)
        self._outlier[mc.mc_id] = mc
        self._outlier_centers.add(mc.mc_id, mc.center)
        return mc.mc_id

    def _promote(self, mc_id: int) -> None:
        mc = self._outlier.pop(mc_id)
        self._outlier_centers.remove(mc_id)
        self._potential[mc_id] = mc
        self._potential_centers.add(mc_id, mc.center)

    def _prune(self) -> None:
        threshold = self.core_weight_threshold
        for mc_id in list(self._potential):
            mc = self._potential[mc_id]
            mc.decay(self._now, self.decay_factor)
            if mc.weight < threshold:
                del self._potential[mc_id]
                self._potential_centers.remove(mc_id)
        for mc_id in list(self._outlier):
            mc = self._outlier[mc_id]
            mc.decay(self._now, self.decay_factor)
            # Outlier micro-clusters are deleted when their weight falls below
            # the lower limit ξ(t_c, t); we use the simplified criterion of
            # weight < 1 after a grace period, as in common implementations.
            age = self._now - mc.creation_time
            if age > self.prune_interval and mc.weight < max(1.0, threshold * age / (age + 1.0)):
                del self._outlier[mc_id]
                self._outlier_centers.remove(mc_id)

    # ------------------------------------------------------------------ #
    # offline phase
    # ------------------------------------------------------------------ #
    def request_clustering(self) -> ClusterSnapshot:
        """Run the offline weighted DBSCAN over the potential micro-clusters."""
        self._macro_labels = {}
        if self._potential:
            mc_ids = list(self._potential)
            centers = np.asarray([self._potential[m].center for m in mc_ids])
            weights = np.asarray([self._potential[m].weight for m in mc_ids])
            clusterer = DBSCAN(eps=2.0 * self.eps, min_pts=self.mu)
            labels = clusterer.fit_predict(centers, weights=weights)
            self._macro_labels = {mc_id: int(label) for mc_id, label in zip(mc_ids, labels)}
        self._macro_stale = False
        return self._publish_snapshot()

    def _serving_view(self) -> ServingView:
        mc_ids = self._potential_centers.ids()
        return ServingView(
            time=self._now,
            n_points=self._n_points,
            seeds=self._potential_centers.matrix(),
            cell_ids=mc_ids,
            labels=[self._macro_labels.get(mc_id, -1) for mc_id in mc_ids],
            densities=[self._potential[mc_id].weight for mc_id in mc_ids],
            coverage=2.0 * self.eps,
            metadata={"micro_clusters": len(self._potential)},
        )

    def predict_one(self, values: Sequence[float]) -> int:
        if self._macro_stale:
            self.request_clustering()
        point = np.asarray(values, dtype=float)
        nearest = self._potential_centers.nearest(point)
        if nearest is None:
            return -1
        mc_id, distance = nearest
        if distance > 2.0 * self.eps:
            return -1
        return self._macro_labels.get(mc_id, -1)

    @property
    def n_clusters(self) -> int:
        if self._macro_stale:
            self.request_clustering()
        labels = {label for label in self._macro_labels.values() if label != -1}
        return len(labels)

    @property
    def n_micro_clusters(self) -> int:
        """Number of potential micro-clusters currently maintained."""
        return len(self._potential)

    @property
    def n_outlier_micro_clusters(self) -> int:
        """Number of outlier micro-clusters currently maintained."""
        return len(self._outlier)
