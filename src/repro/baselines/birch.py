"""BIRCH (Zhang, Ramakrishnan & Livny, SIGMOD 1996) with a CF-Tree.

BIRCH is the earliest stream-capable clustering algorithm and the paper's
Section 7 contrasts its CF-Tree against the DP-Tree: CF-Tree nodes are
*clusters at some granularity* (each entry summarises a sub-cluster by a
clustering feature), whereas DP-Tree nodes are cluster-cells whose links
encode the density-dependency relationship.  This module implements:

* :class:`ClusteringFeature` — the (N, LS, SS) summary triple,
* :class:`CFTree` — the height-balanced insertion tree with node splitting,
* :class:`Birch` — the :class:`~repro.api.StreamClusterer`
  wrapper whose offline phase clusters the leaf entries globally (weighted
  k-means when a target cluster count is given, otherwise agglomerative
  merging of leaf centroids by distance threshold).

BIRCH has no decay model; it is included as a structural comparison point
(the CF-Tree vs DP-Tree ablation), not as one of the paper's Section 6
competitors.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import ClusterSnapshot, ServingView, StreamClusterer
from repro.baselines.kmeans import KMeans


@dataclass
class ClusteringFeature:
    """A clustering feature: point count N, linear sum LS and square sum SS."""

    n: float
    linear_sum: np.ndarray
    square_sum: float

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "ClusteringFeature":
        """CF of a single point."""
        vector = np.asarray(point, dtype=float)
        return cls(n=1.0, linear_sum=vector.copy(), square_sum=float(vector @ vector))

    @classmethod
    def empty(cls, dimension: int) -> "ClusteringFeature":
        """CF of the empty set (additive identity)."""
        return cls(n=0.0, linear_sum=np.zeros(dimension, dtype=float), square_sum=0.0)

    def copy(self) -> "ClusteringFeature":
        """A deep copy of the feature."""
        return ClusteringFeature(
            n=self.n, linear_sum=self.linear_sum.copy(), square_sum=self.square_sum
        )

    # CF additivity --------------------------------------------------------
    def add(self, other: "ClusteringFeature") -> None:
        """Merge ``other`` into this feature in place (CF additivity theorem)."""
        self.n += other.n
        self.linear_sum += other.linear_sum
        self.square_sum += other.square_sum

    def merged(self, other: "ClusteringFeature") -> "ClusteringFeature":
        """The CF of the union, as a new object."""
        result = self.copy()
        result.add(other)
        return result

    # Derived statistics ----------------------------------------------------
    @property
    def centroid(self) -> np.ndarray:
        """Centroid LS / N (the origin for an empty feature)."""
        if self.n <= 0:
            return np.zeros_like(self.linear_sum)
        return self.linear_sum / self.n

    @property
    def radius(self) -> float:
        """Root-mean-square distance of the summarised points to the centroid."""
        if self.n <= 0:
            return 0.0
        centroid = self.centroid
        value = self.square_sum / self.n - float(centroid @ centroid)
        return math.sqrt(max(0.0, value))

    @property
    def diameter(self) -> float:
        """Average pairwise distance of the summarised points."""
        if self.n <= 1:
            return 0.0
        value = (2.0 * self.n * self.square_sum - 2.0 * float(self.linear_sum @ self.linear_sum)) / (
            self.n * (self.n - 1.0)
        )
        return math.sqrt(max(0.0, value))

    def centroid_distance(self, other: "ClusteringFeature") -> float:
        """Euclidean distance between the two centroids."""
        return float(np.linalg.norm(self.centroid - other.centroid))


_leaf_counter = itertools.count(1)


class _CFNode:
    """One node of the CF-Tree (leaf or internal)."""

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        #: Per-entry summary features.
        self.features: List[ClusteringFeature] = []
        #: Child nodes (internal nodes only, parallel to ``features``).
        self.children: List["_CFNode"] = []
        #: Stable ids for leaf entries (leaves only, parallel to ``features``).
        self.entry_ids: List[int] = []

    def __len__(self) -> int:
        return len(self.features)

    def nearest_entry(self, feature: ClusteringFeature) -> int:
        """Index of the entry whose centroid is closest to ``feature``'s."""
        centroid = feature.centroid
        best, best_distance = 0, float("inf")
        for i, entry in enumerate(self.features):
            distance = float(np.linalg.norm(entry.centroid - centroid))
            if distance < best_distance:
                best, best_distance = i, distance
        return best


class CFTree:
    """The height-balanced CF insertion tree of BIRCH.

    Parameters
    ----------
    threshold:
        Absorption threshold T: a point may be absorbed into a leaf entry
        only if the merged entry's radius stays at or below T.
    branching_factor:
        Maximum number of entries in an internal node.
    max_leaf_entries:
        Maximum number of entries in a leaf node.
    """

    def __init__(
        self, threshold: float, branching_factor: int = 8, max_leaf_entries: int = 8
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if branching_factor < 2 or max_leaf_entries < 2:
            raise ValueError("branching_factor and max_leaf_entries must be >= 2")
        self.threshold = threshold
        self.branching_factor = branching_factor
        self.max_leaf_entries = max_leaf_entries
        self.root = _CFNode(is_leaf=True)
        self._dimension: Optional[int] = None
        self.n_points = 0
        self.n_splits = 0

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert(self, point: Sequence[float]) -> None:
        """Insert one point into the tree."""
        feature = ClusteringFeature.from_point(point)
        if self._dimension is None:
            self._dimension = feature.linear_sum.shape[0]
        elif feature.linear_sum.shape[0] != self._dimension:
            raise ValueError(
                f"point dimension {feature.linear_sum.shape[0]} does not match "
                f"tree dimension {self._dimension}"
            )
        self.n_points += 1
        split = self._insert_into(self.root, feature)
        if split is not None:
            # Root split: the tree grows one level.
            left, right = split
            new_root = _CFNode(is_leaf=False)
            for child in (left, right):
                summary = ClusteringFeature.empty(self._dimension)
                for entry in child.features:
                    summary.add(entry)
                new_root.features.append(summary)
                new_root.children.append(child)
            self.root = new_root

    def _insert_into(
        self, node: _CFNode, feature: ClusteringFeature
    ) -> Optional[Tuple[_CFNode, _CFNode]]:
        """Insert recursively; returns the two halves when ``node`` splits."""
        if node.is_leaf:
            return self._insert_into_leaf(node, feature)

        index = node.nearest_entry(feature)
        child_split = self._insert_into(node.children[index], feature)
        node.features[index].add(feature)
        if child_split is None:
            return None

        # Replace the split child's entry by the two new halves.
        left, right = child_split
        node.children[index] = left
        node.features[index] = self._summarise(left)
        node.children.insert(index + 1, right)
        node.features.insert(index + 1, self._summarise(right))
        if len(node) <= self.branching_factor:
            return None
        return self._split(node)

    def _insert_into_leaf(
        self, leaf: _CFNode, feature: ClusteringFeature
    ) -> Optional[Tuple[_CFNode, _CFNode]]:
        if leaf.features:
            index = leaf.nearest_entry(feature)
            candidate = leaf.features[index].merged(feature)
            if candidate.radius <= self.threshold:
                leaf.features[index] = candidate
                return None
        leaf.features.append(feature)
        leaf.entry_ids.append(next(_leaf_counter))
        if len(leaf) <= self.max_leaf_entries:
            return None
        return self._split(leaf)

    def _summarise(self, node: _CFNode) -> ClusteringFeature:
        summary = ClusteringFeature.empty(self._dimension)
        for entry in node.features:
            summary.add(entry)
        return summary

    def _split(self, node: _CFNode) -> Tuple[_CFNode, _CFNode]:
        """Split an over-full node on its farthest pair of entry centroids."""
        self.n_splits += 1
        centroids = np.asarray([f.centroid for f in node.features])
        n = centroids.shape[0]
        distances = np.linalg.norm(centroids[:, None, :] - centroids[None, :, :], axis=2)
        seed_a, seed_b = np.unravel_index(np.argmax(distances), distances.shape)

        left = _CFNode(is_leaf=node.is_leaf)
        right = _CFNode(is_leaf=node.is_leaf)
        for i in range(n):
            target = left if distances[i, seed_a] <= distances[i, seed_b] else right
            target.features.append(node.features[i])
            if node.is_leaf:
                target.entry_ids.append(node.entry_ids[i])
            else:
                target.children.append(node.children[i])
        # Guard against a degenerate split (all entries identical).
        if not left.features or not right.features:
            donor, receiver = (left, right) if len(left) > 1 else (right, left)
            receiver.features.append(donor.features.pop())
            if node.is_leaf:
                receiver.entry_ids.append(donor.entry_ids.pop())
            else:
                receiver.children.append(donor.children.pop())
        return left, right

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def leaf_entries(self) -> List[Tuple[int, ClusteringFeature]]:
        """All (entry id, CF) pairs stored in leaf nodes."""
        entries: List[Tuple[int, ClusteringFeature]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                entries.extend(zip(node.entry_ids, node.features))
            else:
                stack.extend(node.children)
        return entries

    @property
    def n_leaf_entries(self) -> int:
        """Number of sub-clusters currently summarised in the leaves."""
        return len(self.leaf_entries())

    @property
    def height(self) -> int:
        """Height of the tree (1 for a single leaf root)."""
        height = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height


class Birch(StreamClusterer):
    """BIRCH as a stream clusterer: online CF-Tree + offline global clustering.

    Parameters
    ----------
    threshold:
        CF-Tree absorption threshold T.
    branching_factor, max_leaf_entries:
        CF-Tree node capacities.
    n_macro_clusters:
        When given, the offline phase runs weighted k-means with this k over
        the leaf-entry centroids; when ``None``, leaf entries whose centroids
        are within ``macro_merge_factor * threshold`` of each other are merged
        agglomeratively (connected components).
    macro_merge_factor:
        Distance factor for the agglomerative offline phase.
    """

    name = "BIRCH"

    def __init__(
        self,
        threshold: float = 0.5,
        branching_factor: int = 8,
        max_leaf_entries: int = 8,
        n_macro_clusters: Optional[int] = None,
        macro_merge_factor: float = 2.0,
    ) -> None:
        if n_macro_clusters is not None and n_macro_clusters < 1:
            raise ValueError(f"n_macro_clusters must be >= 1, got {n_macro_clusters}")
        if macro_merge_factor <= 0:
            raise ValueError(f"macro_merge_factor must be positive, got {macro_merge_factor}")
        self.tree = CFTree(
            threshold=threshold,
            branching_factor=branching_factor,
            max_leaf_entries=max_leaf_entries,
        )
        self.n_macro_clusters = n_macro_clusters
        self.macro_merge_factor = macro_merge_factor
        self._macro_labels: Dict[int, int] = {}
        self._macro_stale = True

    # ------------------------------------------------------------------ #
    # StreamClusterer interface
    # ------------------------------------------------------------------ #
    def learn_one(
        self, values: Sequence[float], timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> int:
        self.tree.insert(values)
        self._macro_stale = True
        return self.tree.n_points

    def request_clustering(self) -> ClusterSnapshot:
        """Cluster the leaf entries globally (BIRCH phase 3)."""
        entries = self.tree.leaf_entries()
        if not entries:
            self._macro_labels = {}
            self._serving_cache = ([], np.empty((0, 0), dtype=float))
            self._macro_stale = False
            return self._publish_snapshot()
        centroids = np.asarray([cf.centroid for _, cf in entries])
        self._serving_cache = (entries, centroids)
        weights = np.asarray([cf.n for _, cf in entries])
        if self.n_macro_clusters is not None:
            k = min(self.n_macro_clusters, len(entries))
            model = KMeans(n_clusters=k, seed=0)
            labels = model.fit_predict(centroids, weights=weights)
            self._macro_labels = {
                entry_id: int(labels[i]) for i, (entry_id, _) in enumerate(entries)
            }
        else:
            self._macro_labels = self._agglomerate(entries, centroids)
        self._macro_stale = False
        return self._publish_snapshot()

    def _serving_view(self) -> ServingView:
        # Reuse the leaf walk and centroid matrix request_clustering() just
        # built for the macro step, instead of re-enumerating the tree.
        entries, centroids = self._serving_cache
        return ServingView(
            n_points=self.tree.n_points,
            seeds=centroids,
            cell_ids=[entry_id for entry_id, _ in entries],
            labels=[self._macro_labels.get(entry_id, -1) for entry_id, _ in entries],
            densities=[cf.n for _, cf in entries],
            metadata={"leaf_entries": len(entries)},
        )

    def _agglomerate(
        self,
        entries: List[Tuple[int, ClusteringFeature]],
        centroids: np.ndarray,
    ) -> Dict[int, int]:
        """Connected components of leaf centroids under the merge distance."""
        merge_distance = self.macro_merge_factor * self.tree.threshold
        n = len(entries)
        distances = np.linalg.norm(centroids[:, None, :] - centroids[None, :, :], axis=2)
        adjacency = distances <= merge_distance
        labels = [-1] * n
        current = 0
        for i in range(n):
            if labels[i] != -1:
                continue
            stack = [i]
            labels[i] = current
            while stack:
                node = stack.pop()
                for j in np.flatnonzero(adjacency[node]):
                    if labels[j] == -1:
                        labels[j] = current
                        stack.append(int(j))
            current += 1
        return {entries[i][0]: labels[i] for i in range(n)}

    def predict_one(self, values: Sequence[float]) -> int:
        if self._macro_stale:
            self.request_clustering()
        entries = self.tree.leaf_entries()
        if not entries:
            return -1
        point = np.asarray(values, dtype=float)
        best_id, best_distance = -1, float("inf")
        for entry_id, cf in entries:
            distance = float(np.linalg.norm(cf.centroid - point))
            if distance < best_distance:
                best_id, best_distance = entry_id, distance
        return self._macro_labels.get(best_id, -1)

    @property
    def n_clusters(self) -> int:
        if self._macro_stale:
            self.request_clustering()
        if not self._macro_labels:
            return 0
        return len(set(self._macro_labels.values()))

    # Structural statistics for the CF-Tree vs DP-Tree comparison ----------
    @property
    def n_leaf_entries(self) -> int:
        """Number of leaf sub-clusters (the analogue of active cluster-cells)."""
        return self.tree.n_leaf_entries

    @property
    def tree_height(self) -> int:
        """Height of the CF-Tree."""
        return self.tree.height
