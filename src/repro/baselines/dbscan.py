"""Batch DBSCAN (Ester et al., KDD 1996).

DBSCAN is the offline component of DenStream (and the conceptual ancestor of
D-Stream's grid clustering).  Section 2.3 of the paper contrasts it with DP
clustering: DBSCAN builds a *density-connected undirected graph* over core
points and returns its connected components, whereas DP builds a directed
dependency tree and returns maximal strongly dependent subtrees.

The implementation supports per-point weights so that it can recluster
weighted micro-cluster centres, which is exactly how DenStream's offline
phase uses it.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.api import ClusterSnapshot, ServingView, StreamClusterer

NOISE = -1
UNVISITED = -2


class DBSCAN(StreamClusterer):
    """Density-based spatial clustering of applications with noise.

    Primarily a batch substrate (:meth:`fit_predict` over a point matrix,
    optionally weighted — exactly how DenStream's offline phase uses it),
    but it also implements the :class:`~repro.api.StreamClusterer` protocol
    as a buffer-and-recluster adapter: :meth:`learn_one` collects points and
    :meth:`request_clustering` runs the batch algorithm over the buffer,
    which is the classic "recluster everything periodically" straw man the
    streaming algorithms improve on.

    Parameters
    ----------
    eps:
        Neighbourhood radius ε.
    min_pts:
        Minimum (weighted) number of points inside the ε-neighbourhood for a
        point to be a core point.  With ``weights`` given, the neighbourhood
        mass is the sum of the neighbours' weights.
    """

    name = "DBSCAN"

    def __init__(self, eps: float, min_pts: float = 5.0) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_pts <= 0:
            raise ValueError(f"min_pts must be positive, got {min_pts}")
        self.eps = eps
        self.min_pts = min_pts
        self._buffer: List[Tuple[float, ...]] = []
        self._buffer_labels = np.empty(0, dtype=int)
        self._buffer_matrix = np.empty((0, 0), dtype=float)
        self._now = 0.0
        self._stale = True

    # ------------------------------------------------------------------ #
    # StreamClusterer adapter (buffer + periodic full recluster)
    # ------------------------------------------------------------------ #
    def learn_one(
        self, values: Sequence[float], timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> int:
        if timestamp is None:
            timestamp = self._now + 1.0
        self._now = max(self._now, timestamp)
        self._buffer.append(tuple(float(v) for v in values))
        self._stale = True
        return len(self._buffer) - 1

    def request_clustering(self) -> ClusterSnapshot:
        """Re-run batch DBSCAN over every buffered point."""
        if self._buffer:
            self._buffer_matrix = np.asarray(self._buffer, dtype=float)
            self._buffer_labels = self.fit_predict(self._buffer_matrix)
        else:
            self._buffer_matrix = np.empty((0, 0), dtype=float)
            self._buffer_labels = np.empty(0, dtype=int)
        self._stale = False
        return self._publish_snapshot()

    def _serving_view(self) -> ServingView:
        return ServingView(
            time=self._now,
            n_points=len(self._buffer),
            seeds=self._buffer_matrix,
            cell_ids=list(range(self._buffer_matrix.shape[0])),
            labels=self._buffer_labels,
            coverage=self.eps,
            metadata={"buffered_points": len(self._buffer)},
        )

    def predict_one(self, values: Sequence[float]) -> int:
        if self._stale:
            self.request_clustering()
        if self._buffer_matrix.size == 0:
            return NOISE
        point = np.asarray(values, dtype=float)
        diffs = self._buffer_matrix - point
        distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        position = int(np.argmin(distances))
        if distances[position] > self.eps:
            return NOISE
        return int(self._buffer_labels[position])

    @property
    def n_clusters(self) -> int:
        if self._stale:
            self.request_clustering()
        return len({int(v) for v in self._buffer_labels if v != NOISE})

    def fit_predict(
        self,
        data: Sequence[Sequence[float]],
        weights: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Cluster ``data`` and return labels (0..k-1, ``-1`` for noise)."""
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            if matrix.size == 0:
                return np.empty(0, dtype=int)
            raise ValueError(f"expected a 2-D array of points, got shape {matrix.shape}")
        n = matrix.shape[0]
        if n == 0:
            return np.empty(0, dtype=int)
        if weights is None:
            weight_arr = np.ones(n, dtype=float)
        else:
            weight_arr = np.asarray(weights, dtype=float)
            if weight_arr.shape[0] != n:
                raise ValueError(
                    f"weights length {weight_arr.shape[0]} does not match data length {n}"
                )

        labels = np.full(n, UNVISITED, dtype=int)
        cluster_id = 0
        for index in range(n):
            if labels[index] != UNVISITED:
                continue
            neighbours = self._region_query(matrix, index)
            if weight_arr[neighbours].sum() < self.min_pts:
                labels[index] = NOISE
                continue
            self._expand_cluster(matrix, weight_arr, labels, index, neighbours, cluster_id)
            cluster_id += 1
        labels[labels == UNVISITED] = NOISE
        return labels

    def _region_query(self, matrix: np.ndarray, index: int) -> np.ndarray:
        diffs = matrix - matrix[index]
        distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        return np.flatnonzero(distances <= self.eps)

    def _expand_cluster(
        self,
        matrix: np.ndarray,
        weights: np.ndarray,
        labels: np.ndarray,
        index: int,
        neighbours: np.ndarray,
        cluster_id: int,
    ) -> None:
        labels[index] = cluster_id
        queue = deque(int(i) for i in neighbours if i != index)
        while queue:
            current = queue.popleft()
            if labels[current] == NOISE:
                labels[current] = cluster_id  # border point of this cluster
            if labels[current] != UNVISITED:
                continue
            labels[current] = cluster_id
            current_neighbours = self._region_query(matrix, current)
            if weights[current_neighbours].sum() >= self.min_pts:
                queue.extend(
                    int(i) for i in current_neighbours if labels[i] in (UNVISITED, NOISE)
                )

    def core_points(
        self,
        data: Sequence[Sequence[float]],
        weights: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Indices of the core points of ``data``."""
        matrix = np.asarray(data, dtype=float)
        n = matrix.shape[0] if matrix.ndim == 2 else 0
        if n == 0:
            return np.empty(0, dtype=int)
        weight_arr = (
            np.ones(n, dtype=float) if weights is None else np.asarray(weights, dtype=float)
        )
        cores = []
        for index in range(n):
            neighbours = self._region_query(matrix, index)
            if weight_arr[neighbours].sum() >= self.min_pts:
                cores.append(index)
        return np.asarray(cores, dtype=int)
