"""Periodic (non-incremental) Density-Peaks stream clustering.

This is the ablation counterpart of EDMStream's incremental DP-Tree
maintenance: it uses the *same* cluster-cell summarisation (online phase)
but, instead of updating dependencies incrementally with the Theorem 1/2
filters, it recomputes the full Density-Peaks structure over the cell seeds
whenever a clustering is requested — i.e. it behaves like the two-phase
baselines, with DP as the offline algorithm.

Comparing EDMStream against :class:`PeriodicDPStream` isolates the benefit
of the DP-Tree and the filtering schemes from the benefit of the density-
mountain formulation itself (see ``benchmarks/bench_ablation_dptree.py``).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines._centers import CenterArray
from repro.api import ClusterSnapshot, ServingView, StreamClusterer
from repro.core.decay import DecayModel


class PeriodicDPStream(StreamClusterer):
    """Cluster-cell summarisation + periodic batch DP reclustering.

    Parameters
    ----------
    radius:
        Cluster-cell radius r (as in EDMStream).
    tau:
        Cluster-separation threshold applied to the recomputed dependent
        distances.
    beta, stream_rate, decay_a, decay_lambda:
        Decay model and active threshold, matching EDMStream's semantics.
    """

    name = "Periodic-DP"

    def __init__(
        self,
        radius: float = 0.3,
        tau: float = 2.0,
        beta: float = 0.0021,
        stream_rate: float = 1000.0,
        decay_a: float = 0.998,
        decay_lambda: float = 1.0,
    ) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.radius = radius
        self.tau = tau
        self.beta = beta
        self.stream_rate = stream_rate
        self.decay = DecayModel(a=decay_a, lam=decay_lambda)

        self._centers = CenterArray()
        self._density: Dict[int, float] = {}
        self._last_update: Dict[int, float] = {}
        self._next_id = 1
        self._now = 0.0
        self._start: Optional[float] = None
        self._n_points = 0
        self._labels: Dict[int, int] = {}
        self._stale = True

    # ------------------------------------------------------------------ #
    def learn_one(
        self, values: Sequence[float], timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> int:
        point = np.asarray(values, dtype=float)
        if timestamp is None:
            timestamp = self._now + 1.0 / self.stream_rate
        if self._start is None:
            self._start = timestamp
        self._now = max(self._now, timestamp)
        self._n_points += 1
        self._stale = True

        nearest = self._centers.nearest(point)
        if nearest is not None and nearest[1] <= self.radius:
            cell_id = nearest[0]
        else:
            cell_id = self._next_id
            self._next_id += 1
            self._centers.add(cell_id, point)
            self._density[cell_id] = 0.0
            self._last_update[cell_id] = self._now
        elapsed = self._now - self._last_update[cell_id]
        self._density[cell_id] = self.decay.decay_density(self._density[cell_id], elapsed) + 1.0
        self._last_update[cell_id] = self._now
        return cell_id

    def _density_now(self, cell_id: int) -> float:
        elapsed = self._now - self._last_update[cell_id]
        return self.decay.decay_density(self._density[cell_id], elapsed)

    def _active_threshold(self) -> float:
        steady = self.decay.active_threshold(self.beta, self.stream_rate)
        if self._start is None:
            return max(1.0, steady)
        warmup = 1.0 - self.decay.decay_factor(max(0.0, self._now - self._start))
        return max(1.0 + 1e-12, steady * warmup)

    # ------------------------------------------------------------------ #
    def request_clustering(self) -> ClusterSnapshot:
        """Recompute the full DP structure (ρ, δ, dependencies) from scratch."""
        threshold = self._active_threshold()
        ids = [cid for cid in self._centers.ids() if self._density_now(cid) >= threshold]
        self._labels = {}
        if not ids:
            self._stale = False
            return self._publish_snapshot()
        centers = np.asarray([self._centers.get(cid) for cid in ids])
        densities = np.asarray([self._density_now(cid) for cid in ids])

        order = np.argsort(-densities, kind="stable")
        dependency = [-1] * len(ids)
        delta = [math.inf] * len(ids)
        for rank, index in enumerate(order):
            if rank == 0:
                continue
            higher = order[:rank]
            diffs = centers[higher] - centers[index]
            distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
            best = int(np.argmin(distances))
            dependency[index] = int(higher[best])
            delta[index] = float(distances[best])

        labels = [-1] * len(ids)
        next_label = 0
        for index in order:
            parent = dependency[index]
            if parent == -1 or delta[index] > self.tau:
                labels[index] = next_label
                next_label += 1
            else:
                labels[index] = labels[parent]
        self._labels = {cid: labels[i] for i, cid in enumerate(ids)}
        self._stale = False
        return self._publish_snapshot()

    def _serving_view(self) -> ServingView:
        cell_ids = self._centers.ids()
        return ServingView(
            time=self._now,
            n_points=self._n_points,
            tau=self.tau,
            seeds=self._centers.matrix(),
            cell_ids=cell_ids,
            labels=[self._labels.get(cid, -1) for cid in cell_ids],
            densities=[self._density_now(cid) for cid in cell_ids],
            coverage=self.radius,
            metadata={"cells": len(self._centers)},
        )

    def predict_one(self, values: Sequence[float]) -> int:
        if self._stale:
            self.request_clustering()
        nearest = self._centers.nearest(np.asarray(values, dtype=float))
        if nearest is None:
            return -1
        cell_id, distance = nearest
        if distance > self.radius:
            return -1
        return self._labels.get(cell_id, -1)

    @property
    def n_clusters(self) -> int:
        if self._stale:
            self.request_clustering()
        return len(set(self._labels.values()))

    @property
    def n_cells(self) -> int:
        """Number of cluster-cells currently maintained."""
        return len(self._centers)
