"""Stream abstractions and workload generators.

* :mod:`repro.streams.point` — the timestamped stream point.
* :mod:`repro.streams.stream` — ``DataStream`` containers and helpers for
  converting arrays into rate-controlled streams (Section 3.1).
* :mod:`repro.streams.synthetic` — the SDS and HDS synthetic generators
  (Table 2, Figures 6, 7, 12, 15 and Table 4).
* :mod:`repro.streams.real` — surrogate generators standing in for the
  KDDCUP99, CoverType and PAMAP2 datasets (see DESIGN.md, substitutions).
* :mod:`repro.streams.news` — the NADS-like news stream generator used for
  the cluster-evolution use case (Figure 8, Table 3).
* :mod:`repro.streams.drift` — MOA-style concept-drift generators (moving
  RBF kernels, abrupt and gradual mixture drift) used by the ablations.
"""

from repro.streams.point import StreamPoint
from repro.streams.stream import DataStream, stream_from_arrays
from repro.streams.synthetic import (
    HDSGenerator,
    SDSGenerator,
    make_hds_stream,
    make_sds_stream,
)
from repro.streams.real import (
    covertype_surrogate,
    kddcup99_surrogate,
    pamap2_surrogate,
)
from repro.streams.news import NewsStreamGenerator, make_news_stream
from repro.streams.drift import (
    GaussianMixture,
    RBFDriftGenerator,
    abrupt_drift_stream,
    gradual_drift_stream,
)

__all__ = [
    "StreamPoint",
    "DataStream",
    "stream_from_arrays",
    "SDSGenerator",
    "HDSGenerator",
    "make_sds_stream",
    "make_hds_stream",
    "kddcup99_surrogate",
    "covertype_surrogate",
    "pamap2_surrogate",
    "NewsStreamGenerator",
    "make_news_stream",
    "RBFDriftGenerator",
    "GaussianMixture",
    "abrupt_drift_stream",
    "gradual_drift_stream",
]
