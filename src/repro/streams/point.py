"""The timestamped stream point (Section 3.1).

A data stream is a sequence of d-dimensional points each carrying an arrival
timestamp.  :class:`StreamPoint` also carries an optional ground-truth label
(used only by the evaluation harness, never by the clusterers) and an
optional opaque payload (e.g. the raw text of a news item).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple


@dataclass(frozen=True)
class StreamPoint:
    """A single timestamped element of a data stream.

    Parameters
    ----------
    values:
        The attribute vector.  For text streams this is a
        :class:`repro.distance.TokenSetPoint` instead of a numeric tuple.
    timestamp:
        Arrival time in seconds (monotone non-decreasing within a stream).
    label:
        Optional ground-truth cluster/class label, used by external quality
        metrics such as CMM.  Clusterers must never read this field.
    point_id:
        Optional unique identifier assigned by the stream generator.
    payload:
        Optional extra data carried alongside the point (e.g. raw text).
    """

    values: Any
    timestamp: float
    label: Optional[int] = None
    point_id: Optional[int] = None
    payload: Any = field(default=None, compare=False)

    @property
    def dimension(self) -> int:
        """Number of attributes (0 for non-numeric payload points)."""
        try:
            return len(self.values)
        except TypeError:
            return 0

    def as_tuple(self) -> Tuple[float, ...]:
        """Return the attribute vector as a plain tuple of floats."""
        return tuple(float(v) for v in self.values)

    @classmethod
    def from_sequence(
        cls,
        values: Sequence[float],
        timestamp: float,
        label: Optional[int] = None,
        point_id: Optional[int] = None,
        payload: Any = None,
    ) -> "StreamPoint":
        """Build a point from any numeric sequence, copying it into a tuple."""
        return cls(
            values=tuple(float(v) for v in values),
            timestamp=float(timestamp),
            label=label,
            point_id=point_id,
            payload=payload,
        )
