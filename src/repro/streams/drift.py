"""Concept-drift stream generators.

The paper's SDS script exercises one fixed evolution story (move, merge,
split, emerge, disappear).  The generators in this module produce
*parameterised* drifting streams in the style of the MOA benchmark suite, so
the adaptive-τ and evolution-tracking ablations can be run over many drift
regimes:

* :class:`RBFDriftGenerator` — a radial-basis-function generator: ``k``
  Gaussian kernels whose centroids move with a per-kernel velocity, bounce
  off the domain walls, and whose weights can change over time.
* :func:`abrupt_drift_stream` — concatenates two stationary mixtures with a
  sudden switch at a given time (abrupt / sudden drift).
* :func:`gradual_drift_stream` — interpolates the sampling probability
  between two mixtures over a transition window (gradual drift).

All generators return ordinary :class:`~repro.streams.stream.DataStream`
objects with ground-truth labels, so they plug into the same runners,
metrics and trackers as the paper's workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.streams.point import StreamPoint
from repro.streams.stream import DataStream

__all__ = [
    "DriftingKernel",
    "RBFDriftGenerator",
    "GaussianMixture",
    "abrupt_drift_stream",
    "gradual_drift_stream",
]


@dataclass
class DriftingKernel:
    """One moving Gaussian kernel of the RBF generator."""

    center: np.ndarray
    velocity: np.ndarray
    std: float
    weight: float
    label: int

    def step(self, dt: float, bounds: Tuple[float, float]) -> None:
        """Advance the kernel centre, bouncing off the domain walls."""
        low, high = bounds
        self.center = self.center + self.velocity * dt
        for d in range(self.center.shape[0]):
            if self.center[d] < low:
                self.center[d] = low + (low - self.center[d])
                self.velocity[d] = -self.velocity[d]
            elif self.center[d] > high:
                self.center[d] = high - (self.center[d] - high)
                self.velocity[d] = -self.velocity[d]


class RBFDriftGenerator:
    """Random-RBF stream with continuously drifting kernel centroids.

    Parameters
    ----------
    n_points:
        Number of points to generate.
    n_kernels:
        Number of Gaussian kernels (= ground-truth clusters).
    dimension:
        Dimensionality of the points.
    drift_speed:
        Distance each kernel centroid moves per second of stream time.
    kernel_std:
        Standard deviation of each kernel.
    bounds:
        Lower/upper bound of the hyper-cube the kernels live (and bounce) in.
    rate:
        Point-arrival rate (points per second).
    noise_fraction:
        Fraction of points drawn uniformly from the domain and labelled -1.
    seed:
        Random seed.
    """

    def __init__(
        self,
        n_points: int = 10_000,
        n_kernels: int = 5,
        dimension: int = 2,
        drift_speed: float = 0.5,
        kernel_std: float = 0.3,
        bounds: Tuple[float, float] = (0.0, 10.0),
        rate: float = 1000.0,
        noise_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        if n_points < 1:
            raise ValueError(f"n_points must be >= 1, got {n_points}")
        if n_kernels < 1:
            raise ValueError(f"n_kernels must be >= 1, got {n_kernels}")
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if not 0.0 <= noise_fraction < 1.0:
            raise ValueError(f"noise_fraction must be in [0, 1), got {noise_fraction}")
        if bounds[0] >= bounds[1]:
            raise ValueError(f"bounds must be increasing, got {bounds}")
        if drift_speed < 0:
            raise ValueError(f"drift_speed must be non-negative, got {drift_speed}")
        self.n_points = n_points
        self.n_kernels = n_kernels
        self.dimension = dimension
        self.drift_speed = drift_speed
        self.kernel_std = kernel_std
        self.bounds = bounds
        self.rate = rate
        self.noise_fraction = noise_fraction
        self.seed = seed

    def make_kernels(self, rng: np.random.Generator) -> List[DriftingKernel]:
        """Initial kernel set (uniform centres, random unit velocities)."""
        kernels = []
        low, high = self.bounds
        for label in range(self.n_kernels):
            center = rng.uniform(low, high, size=self.dimension)
            direction = rng.normal(size=self.dimension)
            norm = np.linalg.norm(direction)
            direction = direction / norm if norm > 0 else np.ones(self.dimension) / np.sqrt(self.dimension)
            kernels.append(
                DriftingKernel(
                    center=center,
                    velocity=direction * self.drift_speed,
                    std=self.kernel_std,
                    weight=float(rng.uniform(0.5, 1.5)),
                    label=label,
                )
            )
        return kernels

    def generate(self) -> DataStream:
        """Generate the drifting stream."""
        rng = np.random.default_rng(self.seed)
        kernels = self.make_kernels(rng)
        interval = 1.0 / self.rate
        low, high = self.bounds

        points: List[StreamPoint] = []
        for i in range(self.n_points):
            timestamp = i * interval
            for kernel in kernels:
                kernel.step(interval, self.bounds)
            if self.noise_fraction > 0 and rng.random() < self.noise_fraction:
                values = rng.uniform(low, high, size=self.dimension)
                label = -1
            else:
                weights = np.asarray([k.weight for k in kernels])
                kernel = kernels[rng.choice(self.n_kernels, p=weights / weights.sum())]
                values = rng.normal(kernel.center, kernel.std)
                label = kernel.label
            points.append(
                StreamPoint(
                    values=tuple(float(v) for v in values),
                    timestamp=timestamp,
                    label=label,
                    point_id=i,
                )
            )
        return DataStream(points=points, name="rbf-drift", rate=self.rate)


@dataclass
class GaussianMixture:
    """A stationary mixture of labelled Gaussian components."""

    centers: Sequence[Sequence[float]]
    std: float = 0.3
    weights: Optional[Sequence[float]] = None
    labels: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if len(self.centers) == 0:
            raise ValueError("a mixture needs at least one component")
        if self.weights is not None and len(self.weights) != len(self.centers):
            raise ValueError("weights length must match the number of components")
        if self.labels is not None and len(self.labels) != len(self.centers):
            raise ValueError("labels length must match the number of components")

    def sample(self, rng: np.random.Generator) -> Tuple[Tuple[float, ...], int]:
        """Draw one labelled point from the mixture."""
        k = len(self.centers)
        if self.weights is None:
            index = int(rng.integers(0, k))
        else:
            weights = np.asarray(self.weights, dtype=float)
            index = int(rng.choice(k, p=weights / weights.sum()))
        center = np.asarray(self.centers[index], dtype=float)
        values = rng.normal(center, self.std)
        label = index if self.labels is None else int(self.labels[index])
        return tuple(float(v) for v in values), label


def abrupt_drift_stream(
    before: GaussianMixture,
    after: GaussianMixture,
    n_points: int = 10_000,
    drift_point: float = 0.5,
    rate: float = 1000.0,
    seed: int = 0,
    name: str = "abrupt-drift",
) -> DataStream:
    """A stream that switches from ``before`` to ``after`` at ``drift_point``.

    ``drift_point`` is the fraction of the stream after which the concept
    changes abruptly (0.5 = halfway).
    """
    if not 0.0 < drift_point < 1.0:
        raise ValueError(f"drift_point must be in (0, 1), got {drift_point}")
    rng = np.random.default_rng(seed)
    interval = 1.0 / rate
    switch_index = int(n_points * drift_point)
    points = []
    for i in range(n_points):
        mixture = before if i < switch_index else after
        values, label = mixture.sample(rng)
        points.append(
            StreamPoint(values=values, timestamp=i * interval, label=label, point_id=i)
        )
    return DataStream(points=points, name=name, rate=rate)


def gradual_drift_stream(
    before: GaussianMixture,
    after: GaussianMixture,
    n_points: int = 10_000,
    drift_start: float = 0.3,
    drift_end: float = 0.7,
    rate: float = 1000.0,
    seed: int = 0,
    name: str = "gradual-drift",
) -> DataStream:
    """A stream whose sampling probability shifts linearly from ``before`` to ``after``.

    Points before ``drift_start`` (a stream fraction) come from ``before``,
    points after ``drift_end`` come from ``after``; in between the probability
    of sampling from ``after`` rises linearly — the standard sigmoid-free
    model of gradual drift.
    """
    if not 0.0 <= drift_start < drift_end <= 1.0:
        raise ValueError(
            f"drift window must satisfy 0 <= start < end <= 1, got ({drift_start}, {drift_end})"
        )
    rng = np.random.default_rng(seed)
    interval = 1.0 / rate
    points = []
    for i in range(n_points):
        progress = i / max(1, n_points - 1)
        if progress <= drift_start:
            p_after = 0.0
        elif progress >= drift_end:
            p_after = 1.0
        else:
            p_after = (progress - drift_start) / (drift_end - drift_start)
        mixture = after if rng.random() < p_after else before
        values, label = mixture.sample(rng)
        points.append(
            StreamPoint(values=values, timestamp=i * interval, label=label, point_id=i)
        )
    return DataStream(points=points, name=name, rate=rate)
