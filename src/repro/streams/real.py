"""Surrogate generators for the paper's real datasets (Table 2).

The original experiments use KDDCUP99 (network intrusion records), CoverType
(forest cover observations) and PAMAP2 (body-sensor activity traces).  Those
datasets are not shipped with this repository, so each has a *surrogate
generator* that reproduces the structural properties that matter for the
algorithms under test:

* **KDDCUP99** — 34 numeric attributes, 23 classes with extreme class
  imbalance (a handful of attack types dominate), long runs of
  near-duplicate records, and bursty class ordering.
* **CoverType** — 54 attributes, 7 overlapping elongated clusters with
  correlated attributes.
* **PAMAP2** — 51 attributes, 13 activities emitted as long contiguous
  sessions (sensor readings are autocorrelated in time), so clusters
  emerge and disappear as the subject switches activity.

The substitution rationale is recorded in DESIGN.md: relative algorithm
behaviour (who is faster, how quality evolves) depends on the density
structure and temporal ordering of the stream, which the surrogates
preserve, not on the exact semantic meaning of the attributes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.streams.point import StreamPoint
from repro.streams.stream import DataStream


def _emit(values: np.ndarray, labels: np.ndarray, rate: float, name: str) -> DataStream:
    interval = 1.0 / rate
    points = [
        StreamPoint(
            values=tuple(values[i]),
            timestamp=i * interval,
            label=int(labels[i]),
            point_id=i,
        )
        for i in range(values.shape[0])
    ]
    return DataStream(points=points, name=name, rate=rate)


def kddcup99_surrogate(
    n_points: int = 50000,
    rate: float = 1000.0,
    dimension: int = 34,
    n_classes: int = 23,
    noise_fraction: float = 0.03,
    seed: int = 23,
) -> DataStream:
    """Surrogate for the KDDCUP99 network-intrusion stream.

    Class frequencies follow a steep power law (the real dataset is dominated
    by ``smurf`` and ``neptune`` attacks plus normal traffic), records inside
    a class are tightly packed with many near-duplicates, and the stream is
    emitted in bursts of the same class, as real attack traffic is.
    """
    rng = np.random.default_rng(seed)
    # Power-law class weights: a few classes dominate.
    raw = np.asarray([1.0 / (k + 1) ** 1.8 for k in range(n_classes)])
    weights = raw / raw.sum()
    centers = rng.uniform(0.0, 1000.0, size=(n_classes, dimension))
    # Tight, anisotropic spreads — many attributes of KDDCUP99 are near-constant.
    spreads = rng.uniform(0.5, 25.0, size=(n_classes, dimension))
    spreads[:, rng.random(dimension) < 0.5] *= 0.05

    values = np.empty((n_points, dimension))
    labels = np.empty(n_points, dtype=int)
    i = 0
    while i < n_points:
        cls = int(rng.choice(n_classes, p=weights))
        burst = int(rng.integers(20, 400))
        burst = min(burst, n_points - i)
        block = centers[cls] + rng.normal(0.0, 1.0, size=(burst, dimension)) * spreads[cls]
        # Near-duplicates: a fraction of the burst repeats the previous record.
        duplicate_mask = rng.random(burst) < 0.3
        for j in range(1, burst):
            if duplicate_mask[j]:
                block[j] = block[j - 1]
        values[i : i + burst] = block
        labels[i : i + burst] = cls
        i += burst
    # Scatter uniform noise records (port scans, malformed packets) through
    # the stream so that noise handling is exercised.
    noise_mask = rng.random(n_points) < noise_fraction
    values[noise_mask] = rng.uniform(0.0, 1000.0, size=(int(noise_mask.sum()), dimension))
    labels[noise_mask] = -1
    return _emit(values, labels, rate, "KDDCUP99-surrogate")


def covertype_surrogate(
    n_points: int = 60000,
    rate: float = 1000.0,
    dimension: int = 54,
    n_classes: int = 7,
    noise_fraction: float = 0.03,
    seed: int = 54,
) -> DataStream:
    """Surrogate for the CoverType stream.

    Seven overlapping, elongated clusters with correlated attributes and a
    mild class imbalance (two cover types dominate the real dataset).  The
    two dominant classes are placed close together so that they genuinely
    overlap — that overlap is what stresses the CMM misplaced-object penalty
    in Figure 13 and keeps the quality comparison discriminative.
    """
    rng = np.random.default_rng(seed)
    raw = np.asarray([0.37, 0.33, 0.06, 0.05, 0.08, 0.06, 0.05])[:n_classes]
    weights = raw / raw.sum()
    centers = rng.uniform(0.0, 1200.0, size=(n_classes, dimension))
    if n_classes >= 2:
        # The two dominant cover types (spruce/fir and lodgepole pine) overlap.
        centers[1] = centers[0] + rng.normal(0.0, 120.0, size=dimension)
    # Correlated attributes: build a shared low-rank mixing matrix.
    mixing = rng.normal(0.0, 1.0, size=(dimension, 8))
    labels = rng.choice(n_classes, size=n_points, p=weights)
    latent = rng.normal(0.0, 60.0, size=(n_points, 8))
    noise = rng.normal(0.0, 40.0, size=(n_points, dimension))
    values = centers[labels] + latent @ mixing.T + noise
    noise_mask = rng.random(n_points) < noise_fraction
    values[noise_mask] = rng.uniform(-500.0, 1700.0, size=(int(noise_mask.sum()), dimension))
    labels[noise_mask] = -1
    return _emit(values, labels, rate, "CoverType-surrogate")


def pamap2_surrogate(
    n_points: int = 45000,
    rate: float = 1000.0,
    dimension: int = 51,
    n_activities: int = 13,
    session_length: Tuple[int, int] = (1500, 4000),
    seed: int = 51,
) -> DataStream:
    """Surrogate for the PAMAP2 physical-activity stream.

    Sensor readings arrive in long contiguous *sessions* of a single activity
    with autocorrelated values (a slow random walk around the activity's
    sensor signature).  This temporal structure makes clusters emerge when an
    activity starts and decay after it ends — exactly the behaviour that the
    evolution-tracking and reservoir experiments exercise.
    """
    rng = np.random.default_rng(seed)
    signatures = rng.uniform(-30.0, 30.0, size=(n_activities, dimension))
    spreads = rng.uniform(0.5, 3.0, size=(n_activities, dimension))

    values = np.empty((n_points, dimension))
    labels = np.empty(n_points, dtype=int)
    i = 0
    while i < n_points:
        activity = int(rng.integers(0, n_activities))
        length = int(rng.integers(session_length[0], session_length[1]))
        length = min(length, n_points - i)
        # Autocorrelated drift inside the session.
        drift = np.cumsum(rng.normal(0.0, 0.05, size=(length, dimension)), axis=0)
        noise = rng.normal(0.0, 1.0, size=(length, dimension)) * spreads[activity]
        values[i : i + length] = signatures[activity] + drift + noise
        labels[i : i + length] = activity
        i += length
    return _emit(values, labels, rate, "PAMAP2-surrogate")


#: Radii used by the paper for each real dataset (Table 2), rescaled for the
#: surrogate value ranges.  Experiments may still override them.
PAPER_RADII = {
    "KDDCUP99-surrogate": 100.0,
    "CoverType-surrogate": 250.0,
    "PAMAP2-surrogate": 5.0,
}


def dataset_catalog() -> List[dict]:
    """The Table 2 dataset inventory (paper values plus surrogate defaults)."""
    return [
        {"name": "SDS", "instances": 20000, "dim": 2, "clusters": 2, "r": 0.3},
        {"name": "HDS-10d", "instances": 100000, "dim": 10, "clusters": 20, "r": 60},
        {"name": "HDS-30d", "instances": 100000, "dim": 30, "clusters": 20, "r": 65},
        {"name": "HDS-100d", "instances": 100000, "dim": 100, "clusters": 20, "r": 68},
        {"name": "HDS-300d", "instances": 100000, "dim": 300, "clusters": 20, "r": 70},
        {"name": "HDS-1000d", "instances": 100000, "dim": 1000, "clusters": 20, "r": 70},
        {"name": "NADS", "instances": 422937, "dim": None, "clusters": 7231, "r": 0.4},
        {"name": "KDDCUP99", "instances": 494021, "dim": 34, "clusters": 23, "r": 100},
        {"name": "CoverType", "instances": 581012, "dim": 54, "clusters": 7, "r": 250},
        {"name": "PAMAP2", "instances": 447000, "dim": 51, "clusters": 13, "r": 5},
    ]
