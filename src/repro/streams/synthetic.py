"""Synthetic stream generators: SDS and HDS (Table 2).

SDS
    A 2-D stream of 20,000 points at 1,000 pt/s (20 seconds) whose two
    Gaussian clusters follow the evolution script of Figure 6:

    * 0–8 s: two clusters move towards each other,
    * ~9 s: they merge into a single cluster,
    * ~12 s: a new cluster emerges on the right while the left one shrinks,
    * ~14 s: the left cluster disappears and the merged cluster splits,
    * 14–20 s: the two surviving clusters move apart.

HDS
    A d-dimensional stream (d in {10, 30, 100, 300, 1000}) of 100,000 points
    drawn from 20 well-separated hyper-spherical Gaussian clusters, used for
    the dimensionality-scaling experiment (Figure 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

import numpy as np

from repro.streams.point import StreamPoint
from repro.streams.stream import DataStream


@dataclass
class ClusterTrack:
    """A time-varying Gaussian cluster used by the SDS script.

    ``center_fn`` maps stream time (seconds) to the cluster centre;
    ``weight_fn`` maps time to the cluster's share of arriving points
    (0 disables the cluster at that time).
    """

    label: int
    center_fn: Callable[[float], Tuple[float, float]]
    weight_fn: Callable[[float], float]
    std: float = 0.45


def _default_sds_tracks() -> List[ClusterTrack]:
    """The Figure 6 evolution script.

    * 0-9 s: clusters 0 and 1 move towards each other and merge at ~9 s.
    * 9-12 s: the merged cluster sits at the centre of the domain.
    * 12 s: cluster 2 emerges in the upper-right corner while the merged
      cluster starts shrinking.
    * 14 s: the merged cluster has disappeared; cluster 2 splits into
      clusters 2 and 3, which then move apart until 20 s.
    """

    def left_center(t: float) -> Tuple[float, float]:
        # Moves right towards the meeting point at x = 5 until 9 s.
        x = 2.0 + min(t, 9.0) * (3.0 / 9.0)
        return (x, 4.0)

    def right_center(t: float) -> Tuple[float, float]:
        # Mirror image of the left cluster; after the merge both tracks emit
        # from the same centre, forming a single merged cluster.
        x = 8.0 - min(t, 9.0) * (3.0 / 9.0)
        return (x, 4.0)

    def emergent_center(t: float) -> Tuple[float, float]:
        # Emerges at 12 s; after 14 s it is the upper half of the split,
        # moving up-right.
        progress = max(0.0, t - 14.0)
        return (8.0 + progress * 0.15, 8.0 + progress * 0.5)

    def split_off_center(t: float) -> Tuple[float, float]:
        # The lower half of the split, moving down-left after 14 s.
        progress = max(0.0, t - 14.0)
        return (8.0 - progress * 0.15, 8.0 - progress * 0.5)

    def merged_weight(t: float) -> float:
        # Per-track weight of the two merging clusters: constant until 12 s,
        # then fading out so that the merged cluster disappears by 14 s.
        if t < 12.0:
            return 0.5
        if t < 14.0:
            return 0.5 * (14.0 - t) / 2.0
        return 0.0

    def emergent_weight(t: float) -> float:
        if t < 12.0:
            return 0.0
        return 0.5

    def split_off_weight(t: float) -> float:
        if t < 14.0:
            return 0.0
        return 0.5

    return [
        ClusterTrack(label=0, center_fn=left_center, weight_fn=merged_weight),
        ClusterTrack(label=1, center_fn=right_center, weight_fn=merged_weight),
        ClusterTrack(label=2, center_fn=emergent_center, weight_fn=emergent_weight),
        ClusterTrack(label=3, center_fn=split_off_center, weight_fn=split_off_weight),
    ]


@dataclass
class SDSGenerator:
    """Synthetic 2-D evolving data stream (SDS, Table 2).

    Parameters
    ----------
    n_points:
        Total number of points (paper: 20,000).
    rate:
        Arrival rate in points per second (paper: 1,000 pt/s, so the stream
        spans 20 seconds).
    noise_fraction:
        Fraction of points drawn uniformly over the domain as noise.
    seed:
        Random seed.
    tracks:
        Evolution script; defaults to the Figure 6 script.
    """

    n_points: int = 20000
    rate: float = 1000.0
    noise_fraction: float = 0.02
    seed: int = 7
    tracks: List[ClusterTrack] = field(default_factory=_default_sds_tracks)
    domain: Tuple[float, float] = (0.0, 10.0)

    def generate(self) -> DataStream:
        """Generate the SDS stream."""
        rng = np.random.default_rng(self.seed)
        interval = 1.0 / self.rate
        points: List[StreamPoint] = []
        low, high = self.domain
        for i in range(self.n_points):
            t = i * interval
            if rng.random() < self.noise_fraction:
                values = tuple(rng.uniform(low, high, size=2))
                label = -1
            else:
                weights = np.asarray([track.weight_fn(t) for track in self.tracks])
                total = weights.sum()
                if total <= 0:
                    values = tuple(rng.uniform(low, high, size=2))
                    label = -1
                else:
                    probabilities = weights / total
                    index = int(rng.choice(len(self.tracks), p=probabilities))
                    track = self.tracks[index]
                    center = track.center_fn(t)
                    values = (
                        float(rng.normal(center[0], track.std)),
                        float(rng.normal(center[1], track.std)),
                    )
                    label = track.label
            points.append(
                StreamPoint(values=values, timestamp=t, label=label, point_id=i)
            )
        return DataStream(points=points, name="SDS", rate=self.rate)

    def snapshot_times(self) -> List[float]:
        """The snapshot times of Figure 6."""
        return [1.0, 4.0, 8.0, 12.0, 14.0, 20.0]


@dataclass
class HDSGenerator:
    """High-dimensional synthetic stream (HDS, Table 2).

    20 hyper-spherical Gaussian clusters in ``dimension``-dimensional space,
    100,000 points by default, following the SynDECA-style generation the
    paper references.  Cluster centres are placed on a scaled random lattice
    so that clusters stay separated as the dimension grows.
    """

    dimension: int = 10
    n_points: int = 100000
    n_clusters: int = 20
    rate: float = 1000.0
    cluster_std: float = 1.0
    center_spread: float = 60.0
    noise_fraction: float = 0.01
    seed: int = 11

    def generate(self) -> DataStream:
        """Generate the HDS stream."""
        if self.dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {self.dimension}")
        rng = np.random.default_rng(self.seed)
        centers = rng.uniform(0.0, self.center_spread, size=(self.n_clusters, self.dimension))
        interval = 1.0 / self.rate
        labels = rng.integers(0, self.n_clusters, size=self.n_points)
        noise_mask = rng.random(self.n_points) < self.noise_fraction
        offsets = rng.normal(0.0, self.cluster_std, size=(self.n_points, self.dimension))
        values = centers[labels] + offsets
        noise_values = rng.uniform(0.0, self.center_spread, size=(self.n_points, self.dimension))
        values[noise_mask] = noise_values[noise_mask]
        points = [
            StreamPoint(
                values=tuple(values[i]),
                timestamp=i * interval,
                label=-1 if noise_mask[i] else int(labels[i]),
                point_id=i,
            )
            for i in range(self.n_points)
        ]
        return DataStream(points=points, name=f"HDS-{self.dimension}d", rate=self.rate)

    @staticmethod
    def paper_radius(dimension: int) -> float:
        """Cluster-cell radius used in Table 2 for each HDS dimensionality."""
        table = {10: 60.0, 30: 65.0, 100: 68.0, 300: 70.0, 1000: 70.0}
        if dimension in table:
            return table[dimension]
        # Interpolate/extrapolate smoothly for other dimensions.
        return 60.0 + 10.0 * (1.0 - math.exp(-dimension / 100.0))


def make_sds_stream(
    n_points: int = 20000, rate: float = 1000.0, seed: int = 7
) -> DataStream:
    """Convenience constructor for the SDS stream."""
    return SDSGenerator(n_points=n_points, rate=rate, seed=seed).generate()


def make_hds_stream(
    dimension: int = 10, n_points: int = 100000, rate: float = 1000.0, seed: int = 11
) -> DataStream:
    """Convenience constructor for the HDS stream."""
    return HDSGenerator(
        dimension=dimension, n_points=n_points, rate=rate, seed=seed
    ).generate()
