"""Data-stream containers and rate control (Section 3.1).

The experiments in the paper fix a point-arrival rate (1,000 pt/s unless
otherwise stated) and convert static datasets to streams by taking the data
input order as the streaming order.  :class:`DataStream` models exactly
that: an ordered collection of :class:`~repro.streams.point.StreamPoint`
whose timestamps are assigned from an arrival rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.streams.point import StreamPoint


@dataclass
class DataStream:
    """An ordered, timestamped, optionally labelled data stream.

    ``DataStream`` is an in-memory container (the generators in this package
    produce bounded streams sized for laptop-scale experiments) but the
    clusterers only ever see one point at a time, so swapping in a true
    unbounded source only requires an iterable of ``StreamPoint``.
    """

    points: List[StreamPoint]
    name: str = "stream"
    rate: float = 1000.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"stream rate must be positive, got {self.rate}")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[StreamPoint]:
        return iter(self.points)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return DataStream(points=self.points[index], name=self.name, rate=self.rate)
        return self.points[index]

    @property
    def dimension(self) -> int:
        """Dimensionality of the stream (0 if empty or non-numeric)."""
        if not self.points:
            return 0
        return self.points[0].dimension

    @property
    def duration(self) -> float:
        """Time span covered by the stream in seconds."""
        if not self.points:
            return 0.0
        return self.points[-1].timestamp - self.points[0].timestamp

    def labels(self) -> List[Optional[int]]:
        """Ground-truth labels in stream order."""
        return [p.label for p in self.points]

    def values_matrix(self) -> np.ndarray:
        """The numeric attribute vectors stacked into an ``(n, d)`` array."""
        return np.asarray([p.as_tuple() for p in self.points], dtype=float)

    def prefix(self, n: int) -> "DataStream":
        """First ``n`` points as a new stream."""
        return DataStream(points=self.points[:n], name=self.name, rate=self.rate)

    def with_rate(self, rate: float) -> "DataStream":
        """Re-timestamp the stream for a different arrival rate.

        Used by the stream-rate experiments (Figures 14 and 16): the same
        point order is replayed at 1k/5k/10k points per second.
        """
        if rate <= 0:
            raise ValueError(f"stream rate must be positive, got {rate}")
        interval = 1.0 / rate
        start = self.points[0].timestamp if self.points else 0.0
        new_points = [
            StreamPoint(
                values=p.values,
                timestamp=start + i * interval,
                label=p.label,
                point_id=p.point_id,
                payload=p.payload,
            )
            for i, p in enumerate(self.points)
        ]
        return DataStream(points=new_points, name=self.name, rate=rate)

    def shuffled(self, seed: int = 0) -> "DataStream":
        """A copy of the stream with point order shuffled and re-timestamped."""
        rng = random.Random(seed)
        order = list(range(len(self.points)))
        rng.shuffle(order)
        interval = 1.0 / self.rate
        start = self.points[0].timestamp if self.points else 0.0
        new_points = [
            StreamPoint(
                values=self.points[j].values,
                timestamp=start + i * interval,
                label=self.points[j].label,
                point_id=self.points[j].point_id,
                payload=self.points[j].payload,
            )
            for i, j in enumerate(order)
        ]
        return DataStream(points=new_points, name=f"{self.name}-shuffled", rate=self.rate)


def stream_from_arrays(
    values: Sequence[Sequence[float]],
    labels: Optional[Sequence[int]] = None,
    rate: float = 1000.0,
    start_time: float = 0.0,
    name: str = "stream",
) -> DataStream:
    """Convert a static dataset into a rate-controlled stream.

    The input order becomes the streaming order, matching the paper's
    experimental setup ("Both the synthetic and real datasets are converted
    into streams by taking the data input order as the order of streaming").
    """
    if labels is not None and len(labels) != len(values):
        raise ValueError(
            f"labels length {len(labels)} does not match values length {len(values)}"
        )
    interval = 1.0 / rate
    points = []
    for i, row in enumerate(values):
        label = int(labels[i]) if labels is not None else None
        points.append(
            StreamPoint.from_sequence(
                row,
                timestamp=start_time + i * interval,
                label=label,
                point_id=i,
            )
        )
    return DataStream(points=points, name=name, rate=rate)


def interleave_streams(streams: Iterable[DataStream], name: str = "merged") -> DataStream:
    """Merge several streams by timestamp order into a single stream."""
    all_points: List[StreamPoint] = []
    rates = []
    for stream in streams:
        all_points.extend(stream.points)
        rates.append(stream.rate)
    all_points.sort(key=lambda p: p.timestamp)
    rate = max(rates) if rates else 1000.0
    return DataStream(points=all_points, name=name, rate=rate)


def map_stream(stream: DataStream, fn: Callable[[StreamPoint], StreamPoint]) -> DataStream:
    """Apply ``fn`` to every point, returning a new stream."""
    return DataStream(points=[fn(p) for p in stream.points], name=stream.name, rate=stream.rate)
