"""NADS-like news stream generator (Figure 8, Table 3).

The paper's news use case runs EDMStream on a stream of short news texts
under the Jaccard distance and observes topic-level cluster evolution:

* 3-11: the ``{Google, Chromecast}`` cluster merges into ``{Google, wearable}``,
* 3-17: ``{Google, smartwatch}`` splits from ``{Google, wearable}``,
* 3-31: ``{Apple, Samsung}`` splits from ``{Apple, 5c}``,
* 4-21: ``{MS, mobile, suite}`` merges into ``{MS, Nokia}``.

The original NADS corpus is not available offline, so this generator scripts
a synthetic headline stream with exactly those topic lifecycles: each topic
has a vocabulary of tags, a popularity curve over (stream) time, and shares
tokens with the topic it merges with / splits from so that the Jaccard
geometry produces the same evolution events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.distance.text import TokenSetPoint
from repro.streams.point import StreamPoint
from repro.streams.stream import DataStream


@dataclass
class TopicScript:
    """A news topic with a vocabulary and a popularity curve.

    ``popularity_fn`` maps stream time (in "days" of the simulated window)
    to a non-negative weight; 0 means the topic is dormant.
    """

    label: int
    name: str
    core_tokens: Tuple[str, ...]
    extra_tokens: Tuple[str, ...]
    popularity_fn: Callable[[float], float]


def _default_topics() -> List[TopicScript]:
    """Topic scripts reproducing the Table 3 evolution events.

    The simulated window spans days 0-60, mapping roughly to 3-01 .. 4-30 of
    the paper's timeline: day 10 ≈ 3-11, day 16 ≈ 3-17, day 30 ≈ 3-31 and
    day 51 ≈ 4-21.
    """

    google_shared = ("google", "android", "sdk", "developers", "device")
    apple_shared = ("apple", "iphone", "patent", "court")
    ms_shared = ("microsoft", "windows", "phone", "office")

    def chromecast_popularity(day: float) -> float:
        # Hot at the start, fading before day 10 (it then merges into wearable).
        return max(0.0, 1.0 - day / 10.0)

    def wearable_popularity(day: float) -> float:
        # Rises as Chromecast fades; keeps a steady presence afterwards.
        if day < 4:
            return 0.2
        return 1.0

    def smartwatch_popularity(day: float) -> float:
        # Emerges inside the wearable cluster then splits out around day 16.
        if day < 12:
            return 0.0
        if day < 16:
            return 0.4
        return 1.2

    def apple5c_popularity(day: float) -> float:
        return 1.0 if day < 40 else 0.3

    def apple_samsung_popularity(day: float) -> float:
        if day < 26:
            return 0.0
        if day < 30:
            return 0.4
        return 1.3

    def ms_mobile_popularity(day: float) -> float:
        return max(0.0, 1.0 - day / 51.0)

    def ms_nokia_popularity(day: float) -> float:
        if day < 40:
            return 0.3
        return 1.4

    return [
        TopicScript(
            label=0,
            name="google-chromecast",
            core_tokens=google_shared + ("chromecast", "streaming", "tv"),
            extra_tokens=("app", "launch", "update", "hdmi", "dongle", "cast"),
            popularity_fn=chromecast_popularity,
        ),
        TopicScript(
            label=1,
            name="google-wearable",
            core_tokens=google_shared + ("wearable", "wearables", "wear"),
            extra_tokens=("fitness", "watch", "promises", "exec", "platform", "launch"),
            popularity_fn=wearable_popularity,
        ),
        TopicScript(
            label=2,
            name="google-smartwatch",
            core_tokens=google_shared + ("smartwatch", "wear", "watch"),
            extra_tokens=("unveils", "plans", "confirms", "lg", "moto", "display"),
            popularity_fn=smartwatch_popularity,
        ),
        TopicScript(
            label=3,
            name="apple-5c",
            core_tokens=apple_shared + ("5c", "5s", "sales"),
            extra_tokens=("colors", "price", "cut", "budget", "demand", "stores"),
            popularity_fn=apple5c_popularity,
        ),
        TopicScript(
            label=4,
            name="apple-samsung",
            core_tokens=apple_shared + ("samsung", "battle", "renew"),
            extra_tokens=("jury", "damages", "infringement", "trial", "galaxy", "verdict"),
            popularity_fn=apple_samsung_popularity,
        ),
        TopicScript(
            label=5,
            name="ms-mobile-suite",
            core_tokens=ms_shared + ("mobile", "suite", "mobility"),
            extra_tokens=("ipad", "apps", "release", "subscription", "cloud", "word"),
            popularity_fn=ms_mobile_popularity,
        ),
        TopicScript(
            label=6,
            name="ms-nokia",
            core_tokens=ms_shared + ("nokia", "acquisition", "renamed"),
            extra_tokens=("deal", "handset", "lumia", "closes", "brand", "devices"),
            popularity_fn=ms_nokia_popularity,
        ),
    ]


@dataclass
class NewsStreamGenerator:
    """Generates a short-text news stream with scripted topic evolution.

    Parameters
    ----------
    n_points:
        Number of headlines (the real NADS has 422,937; the default keeps
        laptop-scale experiments fast while preserving the topic dynamics).
    days:
        Length of the simulated window in days.
    rate:
        Points per second of *stream time*; the day of a headline is derived
        from its position so that ``days`` spans the whole stream.
    tokens_per_headline:
        How many tokens each headline contains (core tokens always included).
    seed:
        Random seed.
    """

    n_points: int = 12000
    days: float = 60.0
    rate: float = 1000.0
    tokens_per_headline: int = 8
    seed: int = 17
    topics: List[TopicScript] = field(default_factory=_default_topics)

    def generate(self) -> DataStream:
        """Generate the scripted news stream."""
        rng = random.Random(self.seed)
        interval = 1.0 / self.rate
        points: List[StreamPoint] = []
        for i in range(self.n_points):
            day = (i / max(1, self.n_points - 1)) * self.days
            weights = [max(0.0, topic.popularity_fn(day)) for topic in self.topics]
            total = sum(weights)
            if total <= 0:
                weights = [1.0] * len(self.topics)
                total = float(len(self.topics))
            threshold = rng.random() * total
            cumulative = 0.0
            chosen = self.topics[-1]
            for topic, weight in zip(self.topics, weights):
                cumulative += weight
                if threshold <= cumulative:
                    chosen = topic
                    break
            tokens = set(rng.sample(chosen.core_tokens, k=min(4, len(chosen.core_tokens))))
            extras_needed = max(0, self.tokens_per_headline - len(tokens))
            if extras_needed and chosen.extra_tokens:
                tokens.update(
                    rng.sample(
                        chosen.extra_tokens,
                        k=min(extras_needed, len(chosen.extra_tokens)),
                    )
                )
            text = " ".join(sorted(tokens))
            points.append(
                StreamPoint(
                    values=TokenSetPoint(tokens=frozenset(tokens), text=text),
                    timestamp=i * interval,
                    label=chosen.label,
                    point_id=i,
                    payload={"day": day, "topic": chosen.name},
                )
            )
        return DataStream(points=points, name="NADS-surrogate", rate=self.rate)

    def day_of(self, point: StreamPoint) -> float:
        """Simulated day of a generated point."""
        return float(point.payload["day"])

    def expected_events(self) -> List[dict]:
        """The Table 3 evolution events the stream is scripted to produce."""
        return [
            {"day": 10, "type": "merge", "topics": ("google-chromecast", "google-wearable")},
            {"day": 16, "type": "split", "topics": ("google-wearable", "google-smartwatch")},
            {"day": 30, "type": "split", "topics": ("apple-5c", "apple-samsung")},
            {"day": 51, "type": "merge", "topics": ("ms-mobile-suite", "ms-nokia")},
        ]


def make_news_stream(n_points: int = 12000, seed: int = 17) -> DataStream:
    """Convenience constructor for the news stream."""
    return NewsStreamGenerator(n_points=n_points, seed=seed).generate()
