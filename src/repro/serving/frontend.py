"""Asyncio micro-batching front: coalesce ``predict`` calls into batches.

Individual callers ``await frontend.predict(point)``; the frontend buffers
pending points and flushes one ``predict_many`` batch to its backend when
either knob trips:

* **max_batch** — the buffer reached the batch-size cap (flush immediately);
* **max_delay** — the oldest pending call has waited long enough (a timer
  armed when the buffer goes from empty to non-empty).

Backends decouple batching policy from execution: :class:`SnapshotBackend`
answers in-process from a snapshot object (tests, single-process serving),
:class:`WorkerPoolBackend` round-robins batches over the shared-memory
query workers of a :class:`~repro.serving.cluster.ServingCluster` with one
outstanding batch per worker (pipe I/O runs in the default executor so the
event loop never blocks on a worker).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.timing import NULL_TELEMETRY

__all__ = ["MicroBatchFrontend", "SnapshotBackend", "WorkerPoolBackend"]

#: Power-of-two buckets for batch-size / queue-depth histograms (le bounds).
_SIZE_BUCKETS = tuple(float(2**i) for i in range(11))  # 1 .. 1024


class SnapshotBackend:
    """In-process backend: answer batches from a snapshot-bearing object.

    ``source`` is anything with ``predict_many`` (a ``ClusterSnapshot``, a
    live model, or a :class:`~repro.serving.shm.SnapshotReader` holder via
    the optional ``refresh`` hook).
    """

    def __init__(self, source: Any) -> None:
        self._source = source

    async def predict_many(
        self, points: np.ndarray, stable: bool
    ) -> Tuple[Sequence[int], Dict[str, Any]]:
        """Answer one batch; metadata carries version/staleness when known."""
        labels = self._source.predict_many(points, stable=stable)
        meta = {"version": getattr(self._source, "version", None), "staleness_s": 0.0}
        return labels, meta


class WorkerPoolBackend:
    """Dispatch batches to shared-memory query workers, one in flight each.

    Holds an :class:`asyncio.Queue` of idle worker connections; a batch
    checks a worker out, runs the blocking pipe round-trip in the default
    executor, and checks the worker back in.  Backpressure is therefore the
    queue itself: at most ``len(workers)`` batches are in flight and extra
    flushes await an idle worker.
    """

    def __init__(self, connections: Sequence[Any]) -> None:
        if not connections:
            raise ValueError("WorkerPoolBackend needs at least one worker connection")
        self._idle: asyncio.Queue = asyncio.Queue()
        for conn in connections:
            self._idle.put_nowait(conn)

    async def predict_many(
        self, points: np.ndarray, stable: bool
    ) -> Tuple[Sequence[int], Dict[str, Any]]:
        """Round-trip one batch through the next idle worker."""
        conn = await self._idle.get()
        loop = asyncio.get_running_loop()
        try:
            reply = await loop.run_in_executor(
                None, _worker_round_trip, conn, points, stable
            )
        finally:
            self._idle.put_nowait(conn)
        status = reply[0]
        if status == "ok":
            _, labels, version, staleness = reply
            return labels, {"version": version, "staleness_s": staleness}
        raise RuntimeError(f"worker could not serve the batch: {reply[1]}")


def _worker_round_trip(conn: Any, points: np.ndarray, stable: bool) -> Tuple:
    conn.send(("predict", points, stable))
    return conn.recv()


class MicroBatchFrontend:
    """Coalesce awaited ``predict`` calls into ``predict_many`` micro-batches.

    ``max_batch`` flushes on size, ``max_delay`` (seconds) flushes on the
    age of the oldest pending call.  Counters expose how batching behaved:
    ``queries``, ``batches``, ``size_flushes``, ``delay_flushes`` and the
    last batch's ``last_batch_size``.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, or ``None`` for the
    no-op default) adds two histograms — ``frontend_batch_size`` observed
    per flushed batch and ``frontend_queue_depth`` observed per arriving
    call — so batching efficiency is visible live, not only through the
    lifetime counters.
    """

    def __init__(
        self,
        backend: Any,
        max_batch: int = 256,
        max_delay: float = 0.002,
        telemetry: Optional[Any] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.backend = backend
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.obs = telemetry if telemetry is not None else NULL_TELEMETRY
        self._batch_size_hist = self.obs.histogram("frontend_batch_size", _SIZE_BUCKETS)
        self._queue_depth_hist = self.obs.histogram("frontend_queue_depth", _SIZE_BUCKETS)
        self._pending: List[Tuple[Any, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._stable = False
        self.counters: Dict[str, Any] = {
            "queries": 0,
            "batches": 0,
            "size_flushes": 0,
            "delay_flushes": 0,
            "last_batch_size": 0,
            "last_version": None,
            "last_staleness_s": None,
        }

    # ------------------------------------------------------------------ #
    async def predict(self, point: Any, stable: bool = False) -> int:
        """Predict one point; resolves when its micro-batch comes back."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._stable = stable  # batches inherit the latest caller's flag
        self._pending.append((point, future))
        self.counters["queries"] += 1
        self._queue_depth_hist.observe(len(self._pending))
        if len(self._pending) >= self.max_batch:
            self.counters["size_flushes"] += 1
            self._flush_now()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self._flush_on_delay)
        return await future

    async def drain(self) -> None:
        """Flush any pending calls and wait for them to resolve."""
        if self._pending:
            futures = [future for _, future in self._pending]
            self._flush_now()
            await asyncio.gather(*futures, return_exceptions=True)

    # ------------------------------------------------------------------ #
    def _flush_on_delay(self) -> None:
        self._timer = None
        if self._pending:
            self.counters["delay_flushes"] += 1
            self._flush_now()

    def _flush_now(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        asyncio.get_running_loop().create_task(self._run_batch(batch, self._stable))

    async def _run_batch(
        self, batch: List[Tuple[Any, asyncio.Future]], stable: bool
    ) -> None:
        points = np.asarray([point for point, _ in batch])
        try:
            labels, meta = await self.backend.predict_many(points, stable)
        except Exception as exc:  # propagate to every caller in the batch
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        self.counters["batches"] += 1
        self.counters["last_batch_size"] = len(batch)
        self._batch_size_hist.observe(len(batch))
        self.counters["last_version"] = meta.get("version")
        self.counters["last_staleness_s"] = meta.get("staleness_s")
        for (_, future), label in zip(batch, labels):
            if not future.done():
                future.set_result(int(label) if _is_int(label) else label)


def _is_int(label: Any) -> bool:
    return isinstance(label, (int, np.integer))
