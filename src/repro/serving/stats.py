"""Live serving statistics in a small shared-memory segment.

One fixed-size segment per serving token, named
``edmserv-{token}-stats`` — right next to the seqlock control block and
swept by the same prefix-based :func:`repro.serving.shm.cleanup_segments`.
It is the data source for ``python -m repro stats`` and for the stats
section of :meth:`repro.serving.cluster.ServingCluster.health_check`.

Layout contract (all slots are ``float64``; also documented in
``docs/ARCHITECTURE.md`` under "Observability"):

* **Header** (4 slots): layout version, max worker slots, phase count,
  latency bucket count.  Readers validate the layout version.
* **Publisher section** (``4 + 2 * n_phases`` slots): points ingested,
  publish count, wall-clock of the last publish, publisher heartbeat,
  then accumulated seconds per ingest phase, then call counts per phase
  (phase order = :data:`repro.obs.timing.PHASES`).
* **Worker slots** (``max_workers`` fixed slots): pid, heartbeat, queries,
  batches, busy seconds, snapshot version, snapshot staleness, latency
  sum, latency count, then per-bucket latency counts
  (:data:`repro.obs.registry.DEFAULT_LATENCY_BUCKETS_S` bounds plus one
  overflow bucket).

Concurrency contract: **every field has exactly one writer** (the
publisher owns its section; each worker owns its claimed slot), and all
writes are plain 8-byte stores.  Readers take no lock, so a multi-field
read may be *torn* across a concurrent update — for monitoring output
that is an accepted, documented trade: a sample that mixes two adjacent
batches is still a valid sample.  Rates (QPS) must therefore be computed
by differencing two reads, never from a single absolute value.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.registry import DEFAULT_LATENCY_BUCKETS_S
from repro.obs.timing import PHASES
from repro.serving.shm import _create_segment, attach_segment, segment_prefix, unlink_segment

__all__ = ["StatsBlock", "stats_name", "LATENCY_BUCKETS_S", "MAX_WORKER_SLOTS"]

LAYOUT_VERSION = 1
MAX_WORKER_SLOTS = 16
LATENCY_BUCKETS_S: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S
_N_PHASES = len(PHASES)
_N_BUCKETS = len(LATENCY_BUCKETS_S) + 1  # + overflow

# Header slots.
_H_LAYOUT, _H_MAX_WORKERS, _H_N_PHASES, _H_N_BUCKETS = 0, 1, 2, 3
_HEADER_SLOTS = 4

# Publisher section slots (relative to _HEADER_SLOTS).
_P_POINTS, _P_PUBLISHES, _P_PUBLISHED_AT, _P_HEARTBEAT = 0, 1, 2, 3
_P_PHASE_SECONDS = 4
_P_PHASE_COUNTS = _P_PHASE_SECONDS + _N_PHASES
_PUBLISHER_SLOTS = 4 + 2 * _N_PHASES

# Worker slot fields.
_W_PID, _W_HEARTBEAT, _W_QUERIES, _W_BATCHES, _W_BUSY = 0, 1, 2, 3, 4
_W_VERSION, _W_STALENESS, _W_LAT_SUM, _W_LAT_COUNT = 5, 6, 7, 8
_W_BUCKET0 = 9
_WORKER_SLOT_SIZE = _W_BUCKET0 + _N_BUCKETS

_TOTAL_SLOTS = _HEADER_SLOTS + _PUBLISHER_SLOTS + MAX_WORKER_SLOTS * _WORKER_SLOT_SIZE
_SEGMENT_SIZE = _TOTAL_SLOTS * 8


def stats_name(token: str) -> str:
    """Name of the stats segment for a serving token."""
    return f"{segment_prefix(token)}stats"


class StatsBlock:
    """Typed accessor over the stats segment (create, claim, write, read)."""

    def __init__(self, shm, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._array: Optional[np.ndarray] = np.frombuffer(
            shm.buf, dtype=np.float64, count=_TOTAL_SLOTS
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def create_or_attach(cls, token: str) -> Tuple["StatsBlock", bool]:
        """Create the stats segment, or attach the existing one.

        Publisher and workers race to be first; whoever wins zero-fills
        and stamps the header.  Returns ``(block, created)``.
        """
        name = stats_name(token)
        try:
            shm = _create_segment(name, _SEGMENT_SIZE)
        except FileExistsError:
            return cls(attach_segment(name), owner=False), False
        block = cls(shm, owner=True)
        array = block._array
        array[:] = 0.0
        array[_H_LAYOUT] = LAYOUT_VERSION
        array[_H_MAX_WORKERS] = MAX_WORKER_SLOTS
        array[_H_N_PHASES] = _N_PHASES
        array[_H_N_BUCKETS] = _N_BUCKETS
        return block, True

    @classmethod
    def attach(cls, token: str) -> "StatsBlock":
        """Attach read-only (raises ``FileNotFoundError`` when absent)."""
        block = cls(attach_segment(stats_name(token)), owner=False)
        layout = int(block._array[_H_LAYOUT])
        if layout not in (0, LAYOUT_VERSION):  # 0: racing creator, pre-stamp
            block.close()
            raise ValueError(f"unsupported stats-segment layout version {layout}")
        return block

    @property
    def name(self) -> str:
        """Segment name."""
        return self._shm.name

    # ------------------------------------------------------------------ #
    # publisher side (single writer: the ingest publisher process)
    # ------------------------------------------------------------------ #
    def publisher_update(
        self,
        points: float,
        publishes: float,
        published_at: float,
        phase_totals: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> None:
        """Refresh the publisher section after a publish."""
        base = _HEADER_SLOTS
        array = self._array
        array[base + _P_POINTS] = points
        array[base + _P_PUBLISHES] = publishes
        array[base + _P_PUBLISHED_AT] = published_at
        array[base + _P_HEARTBEAT] = time.time()
        if phase_totals:
            for index, phase in enumerate(PHASES):
                totals = phase_totals.get(phase)
                if totals is not None:
                    array[base + _P_PHASE_SECONDS + index] = totals["seconds"]
                    array[base + _P_PHASE_COUNTS + index] = totals["count"]

    # ------------------------------------------------------------------ #
    # worker side (single writer per claimed slot)
    # ------------------------------------------------------------------ #
    def _slot_base(self, slot: int) -> int:
        if not 0 <= slot < MAX_WORKER_SLOTS:
            raise IndexError(f"worker slot {slot} out of range")
        return _HEADER_SLOTS + _PUBLISHER_SLOTS + slot * _WORKER_SLOT_SIZE

    def claim_worker_slot(self, pid: Optional[int] = None, preferred: Optional[int] = None) -> int:
        """Claim a worker slot for ``pid`` and zero its counters.

        ``preferred`` (the cluster-assigned worker index) wins when free or
        already ours; standalone workers fall back to the first slot that
        is unclaimed or holds our own pid (a restart).  Claims are not
        atomic — the cluster avoids races by assigning distinct
        ``preferred`` indices up front.
        """
        if pid is None:
            pid = os.getpid()
        candidates = []
        if preferred is not None:
            candidates.append(preferred)
        candidates.extend(i for i in range(MAX_WORKER_SLOTS) if i != preferred)
        array = self._array
        for slot in candidates:
            base = self._slot_base(slot)
            holder = int(array[base + _W_PID])
            if holder in (0, pid) or (preferred is not None and slot == preferred):
                array[base : base + _WORKER_SLOT_SIZE] = 0.0
                array[base + _W_PID] = float(pid)
                array[base + _W_HEARTBEAT] = time.time()
                return slot
        raise RuntimeError("no free worker stats slot")

    def release_worker_slot(self, slot: int) -> None:
        """Mark a slot reusable (clean worker shutdown)."""
        self._array[self._slot_base(slot) + _W_PID] = 0.0

    def record_worker_batch(
        self,
        slot: int,
        queries: int,
        elapsed_s: float,
        staleness_s: float,
        version: int,
    ) -> None:
        """Account one answered query batch to a worker slot."""
        base = self._slot_base(slot)
        array = self._array
        array[base + _W_QUERIES] += queries
        array[base + _W_BATCHES] += 1.0
        array[base + _W_BUSY] += elapsed_s
        array[base + _W_VERSION] = version
        array[base + _W_STALENESS] = staleness_s
        array[base + _W_LAT_SUM] += elapsed_s
        array[base + _W_LAT_COUNT] += 1.0
        array[base + _W_HEARTBEAT] = time.time()
        array[base + _W_BUCKET0 + bisect_left(LATENCY_BUCKETS_S, elapsed_s)] += 1.0

    def worker_heartbeat(self, slot: int, staleness_s: float, version: int) -> None:
        """Refresh liveness fields between batches (idle/ping path)."""
        base = self._slot_base(slot)
        array = self._array
        array[base + _W_VERSION] = version
        array[base + _W_STALENESS] = staleness_s
        array[base + _W_HEARTBEAT] = time.time()

    # ------------------------------------------------------------------ #
    # reader side
    # ------------------------------------------------------------------ #
    def read(self) -> Dict[str, object]:
        """Copy-out snapshot of the whole segment (plain Python types).

        Lock-free: a concurrent writer may tear a multi-field view — see
        the module docstring for why that is acceptable here.
        """
        array = self._array
        base = _HEADER_SLOTS
        phases = {}
        for index, phase in enumerate(PHASES):
            seconds = float(array[base + _P_PHASE_SECONDS + index])
            count = float(array[base + _P_PHASE_COUNTS + index])
            if count or seconds:
                phases[phase] = {"seconds": seconds, "count": int(count)}
        publisher = {
            "points_ingested": float(array[base + _P_POINTS]),
            "publishes": float(array[base + _P_PUBLISHES]),
            "last_published_at": float(array[base + _P_PUBLISHED_AT]),
            "heartbeat": float(array[base + _P_HEARTBEAT]),
            "phases": phases,
        }
        workers: List[Dict[str, object]] = []
        for slot in range(MAX_WORKER_SLOTS):
            slot_base = self._slot_base(slot)
            pid = int(array[slot_base + _W_PID])
            if pid == 0:
                continue
            workers.append(
                {
                    "slot": slot,
                    "pid": pid,
                    "heartbeat": float(array[slot_base + _W_HEARTBEAT]),
                    "queries": float(array[slot_base + _W_QUERIES]),
                    "batches": float(array[slot_base + _W_BATCHES]),
                    "busy_seconds": float(array[slot_base + _W_BUSY]),
                    "snapshot_version": int(array[slot_base + _W_VERSION]),
                    "snapshot_staleness_s": float(array[slot_base + _W_STALENESS]),
                    "latency_sum_s": float(array[slot_base + _W_LAT_SUM]),
                    "latency_count": float(array[slot_base + _W_LAT_COUNT]),
                    "latency_bucket_counts": [
                        float(c)
                        for c in array[slot_base + _W_BUCKET0 : slot_base + _W_BUCKET0 + _N_BUCKETS]
                    ],
                }
            )
        return {
            "token_segment": self._shm.name,
            "latency_buckets_s": list(LATENCY_BUCKETS_S),
            "publisher": publisher,
            "workers": workers,
        }

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's mapping."""
        self._array = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass

    def unlink(self) -> None:
        """Remove the segment (also covered by ``cleanup_segments``)."""
        unlink_segment(self._shm)
