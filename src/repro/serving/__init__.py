"""Multi-process snapshot serving for stream clusterers.

The serving tier turns the ingest/serve split of :mod:`repro.api` into a
running system: **one ingest process** owns the live model and publishes
every :class:`~repro.api.ClusterSnapshot` zero-copy into
``multiprocessing.shared_memory`` segments, and **N query workers** attach
those segments and answer ``predict_many`` straight off the shared arrays —
no copies of the seed matrix, no locks on the live model.

* :mod:`repro.serving.shm` — the shared-memory publication contract: a
  seqlock **control block** naming the current data segment, immutable
  per-publication **data segments** (pickled header + raw array buffers),
  :class:`~repro.serving.shm.SnapshotReader` for attach/handshake, and
  segment cleanup helpers.
* :mod:`repro.serving.publisher` — :class:`ShmSnapshotPublisher`
  (swap-on-publish over the control block, with counters) and the ingest
  process body :func:`run_ingest_publisher`.
* :mod:`repro.serving.worker` — the query-worker process body: attach,
  validate the version handshake, serve query batches, expose counters.
* :mod:`repro.serving.frontend` — :class:`MicroBatchFrontend`, the asyncio
  front that coalesces individual ``predict`` calls into ``predict_many``
  micro-batches (max-batch / max-delay).
* :mod:`repro.serving.cluster` — :class:`ServingCluster`, the lifecycle
  manager: spawn publisher + workers, health-check, drain, and segment
  cleanup on shutdown or publisher crash.
* :mod:`repro.serving.stats` — :class:`StatsBlock`, the fixed-layout
  shared-memory stats segment the publisher and workers write their live
  counters into, read by ``python -m repro stats``.

See the "Serving tier" section of ``docs/ARCHITECTURE.md`` for the process
diagram, the shared-memory layout contract, and staleness semantics.
"""

from repro.serving.cluster import ServingCluster
from repro.serving.frontend import MicroBatchFrontend, SnapshotBackend, WorkerPoolBackend
from repro.serving.publisher import ShmSnapshotPublisher, run_ingest_publisher
from repro.serving.shm import (
    HydratedSnapshot,
    SnapshotReader,
    cleanup_segments,
    list_segments,
)
from repro.serving.stats import StatsBlock, stats_name
from repro.serving.worker import run_worker

__all__ = [
    "ServingCluster",
    "MicroBatchFrontend",
    "SnapshotBackend",
    "WorkerPoolBackend",
    "ShmSnapshotPublisher",
    "run_ingest_publisher",
    "SnapshotReader",
    "HydratedSnapshot",
    "cleanup_segments",
    "list_segments",
    "StatsBlock",
    "stats_name",
    "run_worker",
]
