"""The single-writer side of the serving tier.

:class:`ShmSnapshotPublisher` owns the control block for one serving token
and turns each :class:`~repro.api.ClusterSnapshot` into an immutable
shared-memory data segment: write the segment fully, seqlock-swap the
control block to name it, then unlink the previous segment (readers that
still map it keep it alive until their next handshake).

:func:`run_ingest_publisher` is the ingest **process body** used by
:class:`~repro.serving.cluster.ServingCluster` and the serving benchmark:
it builds the model and stream inside the child process, ingests in
micro-batches, and publishes a fresh snapshot after every chunk.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, Optional

from repro.api.snapshot import ClusterSnapshot
from repro.api.transport import supports_buffer_transport
from repro.serving import shm as shmlib

__all__ = ["ShmSnapshotPublisher", "run_ingest_publisher"]


class ShmSnapshotPublisher:
    """Publish snapshots for one serving token (single writer).

    Exactly one live publisher per token.  A publisher that finds an
    existing control block takes it over with a bumped *generation*, so
    workers that attached to a crashed predecessor re-handshake cleanly
    (their (generation, version) key can never collide with ours).
    """

    def __init__(self, token: str) -> None:
        self.token = token
        self._ctl, created = shmlib.ControlBlock.create_or_attach(token)
        previous = None if created else self._ctl.read()
        self.generation = 1 if previous is None else previous.generation + 1
        self._version = 0
        self._current_segment = None
        self._previous_name: Optional[str] = (
            None if previous is None else previous.data_segment
        )
        #: Publication counters, merged into ``ServingCluster.summary()``.
        self.counters: Dict[str, Any] = {
            "publishes": 0,
            "pickle_publishes": 0,
            "bytes_published": 0,
            "publish_seconds": 0.0,
            "last_version": 0,
            "last_published_at": 0.0,
        }

    # ------------------------------------------------------------------ #
    def publish(self, snapshot: ClusterSnapshot) -> int:
        """Write, swap, and retire the previous segment; returns the version."""
        start = time.perf_counter()
        self._version += 1
        published_at = time.time()
        name = shmlib.data_name(self.token, self.generation, self._version)
        segment = shmlib.write_snapshot_segment(
            name, snapshot, self.generation, self._version, published_at
        )
        self._ctl.write(self.generation, self._version, published_at, name)
        # Retire the now-unreachable previous publication.  Attached readers
        # keep their mapping; new readers can only see the new name.
        if self._previous_name is not None:
            try:
                old = shmlib.attach_segment(self._previous_name)
                shmlib.unlink_segment(old)
                old.close()
            except FileNotFoundError:
                pass
        if self._current_segment is not None:
            self._current_segment.close()
        self._previous_name = name
        self._current_segment = segment

        self.counters["publishes"] += 1
        if not supports_buffer_transport(snapshot):
            self.counters["pickle_publishes"] += 1
        self.counters["bytes_published"] += segment.size
        self.counters["publish_seconds"] += time.perf_counter() - start
        self.counters["last_version"] = self._version
        self.counters["last_published_at"] = published_at
        return self._version

    def staleness_s(self, now: Optional[float] = None) -> float:
        """Seconds since the last publish (``inf`` before the first one)."""
        last = self.counters["last_published_at"]
        if not last:
            return float("inf")
        if now is None:
            now = time.time()
        return max(0.0, now - last)

    def summary(self) -> Dict[str, Any]:
        """Counters plus identity, for health checks and experiment reports."""
        return {
            "token": self.token,
            "generation": self.generation,
            "snapshot_staleness_s": self.staleness_s(),
            **self.counters,
        }

    # ------------------------------------------------------------------ #
    def close(self, unlink: bool = True) -> None:
        """Drop mappings; with ``unlink`` also remove every live segment."""
        if self._current_segment is not None:
            self._current_segment.close()
            self._current_segment = None
        if unlink:
            self._ctl.unlink()
            self._ctl.close()
            shmlib.cleanup_segments(self.token)
        else:
            self._ctl.close()

    def __enter__(self) -> "ShmSnapshotPublisher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def run_ingest_publisher(
    token: str,
    model_factory: Callable[[], Any],
    stream_factory: Callable[[], Iterable[Any]],
    chunk_size: int = 256,
    stop_event: Optional[Any] = None,
    counters: Optional[Any] = None,
    loop_stream: bool = True,
    publish_every: int = 1,
    telemetry: bool = True,
) -> None:
    """Ingest-process body: learn in chunks, publish a snapshot per chunk.

    ``counters`` is an optional ``multiprocessing.Value('Q')`` the parent
    can sample for points ingested; ``stop_event`` ends the loop.  With
    ``loop_stream`` the stream is replayed so ingestion stays busy for the
    whole measurement window (the serving benchmark's steady-state load).

    With ``telemetry`` (the default) the publisher maintains the token's
    shared-memory stats block (:class:`~repro.serving.stats.StatsBlock`):
    points ingested, publish count and — for models using the
    ``repro.obs`` convention — the live ingest phase breakdown, refreshed
    after every publish.  This is what ``python -m repro stats`` reads.
    Stats publication is best-effort and observational only: a stats
    failure disables it without touching ingestion, and the model's
    clustering output is unchanged either way.
    """
    publisher = ShmSnapshotPublisher(token)
    model = model_factory()
    stats = None
    obs = None
    if telemetry:
        try:
            from repro.obs.timing import NULL_TELEMETRY, enable_telemetry
            from repro.serving.stats import StatsBlock

            stats, _ = StatsBlock.create_or_attach(token)
            obs = getattr(model, "obs", None)
            if obs is NULL_TELEMETRY:
                obs = enable_telemetry(model)
        except Exception:  # pragma: no cover - stats must never block ingest
            if stats is not None:
                stats.close()
            stats = None
            obs = None
    total_points = 0

    def _publish() -> None:
        nonlocal total_points
        publisher.publish(model.snapshot())
        if stats is not None:
            stats.publisher_update(
                total_points,
                publisher.counters["publishes"],
                publisher.counters["last_published_at"],
                obs.phase_totals() if obs is not None else None,
            )

    try:
        while True:
            for chunk_index, chunk in enumerate(_chunks(stream_factory(), chunk_size)):
                if stop_event is not None and stop_event.is_set():
                    return
                model.learn_many(chunk)
                total_points += len(chunk)
                if chunk_index % publish_every == 0:
                    _publish()
                if counters is not None:
                    with counters.get_lock():
                        counters.value += len(chunk)
            _publish()
            if not loop_stream:
                break
        if stop_event is not None:
            while not stop_event.is_set():
                time.sleep(0.01)
    finally:
        if stats is not None:
            try:
                stats.close()
            except Exception:  # pragma: no cover
                pass
        publisher.close(unlink=False)


def _chunks(stream: Iterable[Any], size: int) -> Iterable[list]:
    chunk: list = []
    for item in stream:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
