"""Lifecycle management for a serving deployment: spawn, watch, clean up.

:class:`ServingCluster` runs the whole topology in one call: an **ingest
process** (:func:`~repro.serving.publisher.run_ingest_publisher`) that owns
the live model and publishes snapshots, and **N query workers**
(:func:`~repro.serving.worker.run_worker`) attached over duplex pipes.  It
is also the process that answers for crash hygiene: on shutdown — and when
the health check notices the publisher died — every shared-memory segment
belonging to the cluster's token is unlinked, so nothing leaks into
``/dev/shm`` across runs.

Processes are started with the **fork** context: child bodies close over
factories (model, stream) that need no pickling, and fork start-up cost is
what makes short-lived serving tests viable on small machines.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import uuid
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving import shm as shmlib
from repro.serving.worker import WORKER_NICE, run_worker

__all__ = ["ServingCluster"]

_CTX = mp.get_context("fork")


def _describe_exit(exitcode: Optional[int]) -> str:
    """Human-readable reason from a ``Process.exitcode``."""
    if exitcode is None:
        return "unknown (no exit code)"
    if exitcode < 0:
        try:
            import signal as _signal

            name = _signal.Signals(-exitcode).name
        except ValueError:  # pragma: no cover - unnamed signal number
            name = f"signal {-exitcode}"
        return f"killed by {name}"
    return f"exited with code {exitcode}"


class ServingCluster:
    """One ingest process + N shared-memory query workers, managed together.

    ``model_factory`` / ``stream_factory`` build the model and its input
    stream *inside* the ingest child.  ``request`` / ``ping`` give tests
    and benchmarks a synchronous path to any worker;
    :class:`~repro.serving.frontend.WorkerPoolBackend` wraps the same
    connections for the asyncio front.
    """

    def __init__(
        self,
        model_factory: Callable[[], Any],
        stream_factory: Callable[[], Iterable[Any]],
        n_workers: int = 1,
        token: Optional[str] = None,
        chunk_size: int = 256,
        publish_every: int = 1,
        loop_stream: bool = True,
        worker_nice: int = WORKER_NICE,
        telemetry: bool = True,
    ) -> None:
        self.token = token or f"svc{uuid.uuid4().hex[:12]}"
        self.n_workers = n_workers
        self._worker_nice = worker_nice
        self._telemetry = telemetry
        self._stop = _CTX.Event()
        self._ingested = _CTX.Value("Q", 0)
        self._closed = False
        self.counters: Dict[str, Any] = {
            "publisher_restarts": 0,
            "crash_cleanups": 0,
            "worker_restarts": 0,
        }
        #: Per-worker-slot lifecycle record (restart count + last exit),
        #: surfaced through :meth:`health_check` — see satellite note in
        #: docs/ARCHITECTURE.md "Observability".
        self._worker_meta: List[Dict[str, Any]] = [
            {"restarts": 0, "last_exit_reason": None} for _ in range(n_workers)
        ]

        from repro.serving.publisher import run_ingest_publisher

        self._publisher = _CTX.Process(
            target=run_ingest_publisher,
            args=(self.token, model_factory, stream_factory),
            kwargs={
                "chunk_size": chunk_size,
                "stop_event": self._stop,
                "counters": self._ingested,
                "loop_stream": loop_stream,
                "publish_every": publish_every,
                "telemetry": telemetry,
            },
            daemon=True,
        )
        self._publisher.start()

        self._workers: List[Tuple[Any, Any]] = []  # (process, parent_conn)
        for index in range(n_workers):
            self._workers.append(self._spawn_worker(index))

    def _spawn_worker(self, index: int) -> Tuple[Any, Any]:
        """Start one query worker on this cluster's token; returns (proc, conn)."""
        parent_conn, child_conn = _CTX.Pipe(duplex=True)
        proc = _CTX.Process(
            target=run_worker,
            args=(self.token, child_conn),
            kwargs={
                "nice": self._worker_nice,
                "stats_slot": index,
                "stats": self._telemetry,
            },
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    # ------------------------------------------------------------------ #
    @property
    def connections(self) -> List[Any]:
        """Parent-side pipe ends, one per worker (for ``WorkerPoolBackend``)."""
        return [conn for _, conn in self._workers]

    @property
    def points_ingested(self) -> int:
        """Points the ingest process has consumed so far."""
        return int(self._ingested.value)

    def wait_until_serving(self, timeout_s: float = 30.0) -> None:
        """Block until every worker holds a publication (version >= 1).

        Pings make each worker run the attach/handshake, so on return every
        worker has a hydrated snapshot and ``request`` cannot race the
        first publish.
        """
        deadline = time.monotonic() + timeout_s
        for index in range(self.n_workers):
            while self.ping(index).get("snapshot_version", 0) < 1:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"worker {index} not serving after {timeout_s}s"
                    )
                time.sleep(0.02)

    # ------------------------------------------------------------------ #
    def request(
        self, points: Any, worker: int = 0, stable: bool = False
    ) -> Tuple[Sequence[int], int, float]:
        """Synchronous ``predict_many`` against one worker.

        Returns ``(labels, snapshot_version, staleness_s)``; raises
        ``RuntimeError`` while no snapshot has been published yet.
        """
        _, conn = self._workers[worker]
        conn.send(("predict", np.asarray(points), stable))
        reply = conn.recv()
        if reply[0] == "ok":
            return reply[1], reply[2], reply[3]
        raise RuntimeError(f"worker {worker}: {reply[1]}")

    def ping(self, worker: int = 0, timeout_s: float = 5.0) -> Dict[str, Any]:
        """Health-check one worker; returns its counters dict."""
        proc, conn = self._workers[worker]
        if not proc.is_alive():
            raise RuntimeError(f"worker {worker} (pid {proc.pid}) is dead")
        conn.send(("ping",))
        if not conn.poll(timeout_s):
            raise TimeoutError(f"worker {worker} did not answer a ping")
        reply = conn.recv()
        return reply[1]

    def health_check(self) -> Dict[str, Any]:
        """Liveness of every process; repairs what it can in passing.

        A dead publisher is the one crash the kernel cannot tidy for us —
        its segments would outlive it — so noticing it here immediately
        unlinks everything under the cluster's token.  A dead query worker
        is recoverable: workers are stateless readers of the token's
        segments, so the check respawns a replacement on the same token
        (fresh pipe, fresh handshake) and bumps ``worker_restarts``; the
        entry reports ``restarted: True`` and the new worker's counters.
        """
        publisher_alive = self._publisher.is_alive()
        if not publisher_alive and not self._closed:
            removed = shmlib.cleanup_segments(self.token)
            if removed:
                self.counters["crash_cleanups"] += 1
        workers = []
        for index, (proc, conn) in enumerate(self._workers):
            alive = proc.is_alive()
            entry: Dict[str, Any] = {"worker": index, "alive": alive}
            if alive:
                try:
                    entry.update(self.ping(index))
                except (TimeoutError, RuntimeError) as exc:
                    entry["alive"] = False
                    entry["error"] = str(exc)
            if not entry["alive"] and publisher_alive and not self._closed:
                self._restart_worker(index)
                entry["restarted"] = True
                self.counters["worker_restarts"] += 1
                try:
                    entry.update(self.ping(index))
                    entry["alive"] = True
                except (TimeoutError, RuntimeError) as exc:  # pragma: no cover
                    entry["error"] = str(exc)
            meta = self._worker_meta[index]
            entry["restarts"] = meta["restarts"]
            entry["last_exit_reason"] = meta["last_exit_reason"]
            workers.append(entry)
        return {
            "token": self.token,
            "publisher_alive": publisher_alive,
            "points_ingested": self.points_ingested,
            "workers": workers,
            "stats": self.stats(),
        }

    def stats(self) -> Optional[Dict[str, Any]]:
        """One read of the token's shared-memory stats block, or ``None``.

        The raw cumulative counters (see
        :class:`~repro.serving.stats.StatsBlock`); rates need two reads —
        that is what ``python -m repro stats`` does.
        """
        try:
            from repro.serving.stats import StatsBlock

            block = StatsBlock.attach(self.token)
        except (FileNotFoundError, ValueError, OSError):
            return None
        try:
            return block.read()
        finally:
            block.close()

    def _restart_worker(self, index: int) -> None:
        """Replace a dead worker in place: reap it, respawn on the same token."""
        proc, conn = self._workers[index]
        if proc.is_alive():
            proc.terminate()
        proc.join(2.0)
        meta = self._worker_meta[index]
        meta["restarts"] += 1
        meta["last_exit_reason"] = _describe_exit(proc.exitcode)
        try:
            conn.close()
        except OSError:
            pass
        self._workers[index] = self._spawn_worker(index)

    def summary(self) -> Dict[str, Any]:
        """Merged cluster counters: ingest progress + per-worker counters."""
        health = self.health_check()
        staleness = [
            w.get("snapshot_staleness_s")
            for w in health["workers"]
            if w.get("snapshot_staleness_s") is not None
        ]
        return {
            **health,
            **self.counters,
            "snapshot_staleness_s": max(staleness) if staleness else float("inf"),
        }

    def leaked_segments(self) -> List[str]:
        """Segments still present for this token (must be [] after shutdown)."""
        return shmlib.list_segments(self.token)

    # ------------------------------------------------------------------ #
    def drain(self, timeout_s: float = 10.0) -> None:
        """Stop accepting work and let in-flight worker replies complete."""
        for index, (proc, conn) in enumerate(self._workers):
            if not proc.is_alive():
                continue
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                continue
        deadline = time.monotonic() + timeout_s
        for proc, _ in self._workers:
            proc.join(max(0.0, deadline - time.monotonic()))

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Drain workers, stop ingest, and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self.drain(timeout_s=timeout_s)
        self._publisher.join(timeout_s)
        for proc, conn in self._workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(2.0)
            try:
                conn.close()
            except OSError:
                pass
        if self._publisher.is_alive():
            self._publisher.terminate()
            self._publisher.join(2.0)
        shmlib.cleanup_segments(self.token)

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - best-effort safety net
        try:
            if not self._closed and os.getpid() == self._publisher._parent_pid:  # noqa: SLF001
                self.shutdown(timeout_s=1.0)
        except Exception:
            pass
