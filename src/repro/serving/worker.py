"""Query-worker process body: serve ``predict_many`` off shared arrays.

A worker owns one :class:`~repro.serving.shm.SnapshotReader` and one end of
a duplex :class:`multiprocessing.Pipe`.  Its loop is deliberately simple —
blocking receive, cheap control-block poll, re-handshake only when the
(generation, version) key moved, answer the batch — because everything
expensive (the seed matrix, densities, labels) is already mapped shared
memory: hydrating a new publication attaches a segment and builds array
*views*, it never copies the data.

Workers run at positive ``nice`` (default ``+9``): ingest-protection
priority.  The publisher must never fall behind the stream, so query
workers yield to it and serving capacity scales by adding workers that
soak up whatever CPU share ingestion leaves free.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

import numpy as np

from repro.serving.shm import SnapshotReader

__all__ = ["run_worker", "WORKER_NICE"]

#: Default niceness added to query workers (ingest-protection priority).
WORKER_NICE = 9


def _refresh(reader: SnapshotReader, counters: Dict[str, Any]):
    """Run the version handshake and fold the outcome into the counters.

    A failed handshake must never take the worker down: the control block
    can name a segment that was just swept by crash cleanup (the publisher
    died and ``ServingCluster.health_check`` unlinked its segments), in
    which case the worker keeps answering off its current — still mapped —
    snapshot until a new publisher appears.
    """
    before = reader.current.key if reader.current else None
    try:
        hydrated = reader.refresh()
    except (TimeoutError, FileNotFoundError, OSError):
        counters["failed_handshakes"] += 1
        return reader.current
    if hydrated is not None and hydrated.key != before:
        counters["rehandshakes"] += 1
        counters["snapshot_version"] = hydrated.version
        counters["snapshot_generation"] = hydrated.generation
    return hydrated


def run_worker(
    token: str,
    conn: Any,
    nice: int = WORKER_NICE,
    poll_interval_s: float = 0.0,
    stats_slot: Optional[int] = None,
    stats: bool = True,
) -> None:
    """Serve prediction batches over ``conn`` until a ``stop`` message.

    Protocol (parent side sends tuples, worker replies per message):

    * ``("predict", points, stable)`` → ``("ok", labels, version, staleness_s)``
      or ``("unavailable", reason)`` before the first publication.
    * ``("ping",)`` → ``("pong", counters_dict)`` — health check + counters.
    * ``("stop",)`` → worker closes its reader and exits.

    ``poll_interval_s`` rate-limits the control-block poll; ``0`` polls on
    every batch (the control read is two struct unpacks, so per-batch
    polling costs almost nothing and bounds staleness at one batch).

    ``stats`` toggles publication into the token's shared-memory stats
    block (:class:`~repro.serving.stats.StatsBlock`); ``stats_slot`` is
    the preferred slot — :class:`~repro.serving.cluster.ServingCluster`
    passes the worker index so slots never race.  Stats publication is
    best-effort: any stats-block failure disables it without touching
    query serving.
    """
    if nice:
        try:
            os.nice(nice)
        except OSError:  # pragma: no cover - restricted environments
            pass
    reader = SnapshotReader(token)
    counters: Dict[str, Any] = {
        "pid": os.getpid(),
        "batches": 0,
        "queries": 0,
        "rehandshakes": 0,
        "failed_handshakes": 0,
        "snapshot_version": 0,
        "snapshot_generation": 0,
        "snapshot_staleness_s": float("inf"),
    }
    stats_block = None
    slot = None
    if stats:
        try:
            from repro.serving.stats import StatsBlock

            stats_block, _ = StatsBlock.create_or_attach(token)
            slot = stats_block.claim_worker_slot(os.getpid(), preferred=stats_slot)
            counters["stats_slot"] = slot
        except Exception:  # pragma: no cover - stats must never block serving
            if stats_block is not None:
                stats_block.close()
            stats_block = None
    last_poll = 0.0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "stop":
                break
            if kind == "ping":
                current = _refresh(reader, counters)
                if current is not None:
                    counters["snapshot_staleness_s"] = current.staleness_s()
                if stats_block is not None and current is not None:
                    stats_block.worker_heartbeat(
                        slot, counters["snapshot_staleness_s"], current.version
                    )
                conn.send(("pong", {**counters, **reader.counters}))
                continue
            if kind != "predict":  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown message kind {kind!r}"))
                continue

            _, points, stable = message
            now = time.monotonic()
            if poll_interval_s <= 0.0 or now - last_poll >= poll_interval_s:
                last_poll = now
                _refresh(reader, counters)
            current = reader.current
            if current is None:
                conn.send(("unavailable", "no snapshot published yet"))
                continue
            try:
                started = time.perf_counter()
                labels = current.snapshot.predict_many(
                    np.asarray(points), stable=stable
                )
                elapsed = time.perf_counter() - started
            except Exception as exc:  # bad query must not kill the worker
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
                continue
            counters["batches"] += 1
            counters["queries"] += len(labels)
            staleness = current.staleness_s()
            if stats_block is not None:
                stats_block.record_worker_batch(
                    slot, len(labels), elapsed, staleness, current.version
                )
            conn.send(("ok", labels, current.version, staleness))
    finally:
        if stats_block is not None:
            try:
                stats_block.release_worker_slot(slot)
                stats_block.close()
            except Exception:  # pragma: no cover
                pass
        reader.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
