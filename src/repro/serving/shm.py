"""Shared-memory snapshot publication: segments, control block, reader.

Layout contract (also documented in ``docs/ARCHITECTURE.md``):

* **Control block** — one small fixed segment per serving *token*, named
  ``edmserv-{token}-ctl``.  It is the rendezvous point: a seqlock-protected
  record naming the current data segment::

      bytes 0..7    magic  b"EDMSERV1"
      bytes 8..15   seq        uint64   (odd = write in progress)
      bytes 16..23  generation uint64   (bumped on publisher restart)
      bytes 24..31  version    uint64   (publisher publish counter)
      bytes 32..39  published_at float64 (wall clock, time.time())
      bytes 40..47  name_len   uint64
      bytes 48..239 data-segment name, utf-8

  The single writer increments ``seq`` to an odd value, updates the
  payload, then increments it to the next even value; readers retry while
  ``seq`` is odd or changes across their read.

* **Data segments** — one immutable segment per publication, named
  ``edmserv-{token}-g{generation}s{version}`` (never reused)::

      bytes 0..7    header_len   uint64
      bytes 8..15   payload_base uint64
      bytes 16..    pickled header dict
      payload_base.. raw array payload (or a pickled snapshot)

  The header records the transport mode: ``"arrays"`` (numeric snapshots —
  per-array ``(offset, size)`` into the payload, hydrated zero-copy through
  :func:`repro.api.transport.snapshot_from_buffers`) or ``"pickle"`` (grid
  and object-keyed snapshots, which have no raw-buffer form).

**Swap-on-publish**: a data segment is fully written *before* the control
block is pointed at it, and the previous segment is unlinked right after
the swap.  Attached readers keep serving off their (still-mapped) old
segment until they re-handshake; on Linux an unlinked segment stays valid
for exactly as long as someone maps it, so steady state is one live data
segment plus whatever crash-free readers still hold.

**Resource-tracker note**: :class:`multiprocessing.shared_memory.SharedMemory`
registers every attach with the process's resource tracker, which would
unlink the publisher's segments when a *reader* exits.  Every attach in
this module immediately unregisters itself; ownership stays with the
publisher (and with :func:`cleanup_segments` for crash recovery).
"""

from __future__ import annotations

import contextlib
import pickle
import struct
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api.snapshot import ClusterSnapshot
from repro.api.transport import (
    snapshot_from_buffers,
    snapshot_to_buffers,
    supports_buffer_transport,
)

__all__ = [
    "segment_prefix",
    "control_name",
    "data_name",
    "ControlBlock",
    "ControlState",
    "write_snapshot_segment",
    "read_snapshot_segment",
    "HydratedSnapshot",
    "SnapshotReader",
    "attach_segment",
    "unlink_segment",
    "list_segments",
    "cleanup_segments",
]

_MAGIC = b"EDMSERV1"
_CTL_SIZE = 256
_CTL_HEADER = struct.Struct("<8sQQQdQ")  # magic, seq, generation, version, published_at, name_len
_NAME_OFFSET = _CTL_HEADER.size
_NAME_CAPACITY = _CTL_SIZE - _NAME_OFFSET
_SEQ_OFFSET = 8
_SEQ = struct.Struct("<Q")
_DATA_PREFIX = struct.Struct("<QQ")  # header_len, payload_base
_ALIGN = 64

#: Where POSIX shared memory appears as files (Linux); used for crash-time
#: segment discovery.  On platforms without it, cleanup falls back to the
#: names recorded in the control block.
_SHM_DIR = Path("/dev/shm")


def segment_prefix(token: str) -> str:
    """Common name prefix of every segment belonging to a serving token."""
    return f"edmserv-{token}-"


def control_name(token: str) -> str:
    """Name of the control-block segment for a serving token."""
    return f"{segment_prefix(token)}ctl"


def data_name(token: str, generation: int, version: int) -> str:
    """Name of one publication's data segment (unique, never reused)."""
    return f"{segment_prefix(token)}g{generation}s{version}"


@contextlib.contextmanager
def _tracker_silenced():
    """Suppress resource-tracker registration inside the ``with`` block.

    ``SharedMemory`` registers every create *and attach* with the
    per-process resource tracker, whose bookkeeping is a name *set*: with
    several readers attaching and detaching the same segment, paired
    unregisters race each other and the tracker both spams warnings and
    unlinks segments out from under live readers.  This module owns segment
    lifetime explicitly (publisher unlinks on swap, ``cleanup_segments``
    sweeps on shutdown/crash), so tracker involvement is pure downside.
    """
    original_register = resource_tracker.register
    original_unregister = resource_tracker.unregister
    resource_tracker.register = lambda name, rtype: None
    resource_tracker.unregister = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = original_register
        resource_tracker.unregister = original_unregister


def _create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    """Create a segment whose lifetime this module manages (untracked)."""
    with _tracker_silenced():
        return shared_memory.SharedMemory(name=name, create=True, size=size)


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without claiming cleanup ownership."""
    with _tracker_silenced():
        return shared_memory.SharedMemory(name=name)


def unlink_segment(shm: shared_memory.SharedMemory) -> None:
    """Unlink an untracked segment (tolerates a concurrent unlink)."""
    with _tracker_silenced():
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


@dataclass(frozen=True)
class ControlState:
    """One consistent read of the control block."""

    generation: int
    version: int
    published_at: float
    data_segment: str

    @property
    def key(self) -> Tuple[int, int]:
        """(generation, version) identity of the current publication."""
        return (self.generation, self.version)

    def staleness_s(self, now: Optional[float] = None) -> float:
        """Seconds since the current snapshot was published (wall clock)."""
        if now is None:
            now = time.time()
        return max(0.0, now - self.published_at)


class ControlBlock:
    """The seqlock-protected rendezvous segment (single writer, many readers)."""

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._seq = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def create_or_attach(cls, token: str) -> Tuple["ControlBlock", bool]:
        """Create the control block, or take over an existing one.

        Returns ``(block, created)``.  A restarting publisher must *reuse*
        the existing segment rather than recreate it — readers hold a
        mapping of the original and would never observe a replacement.
        """
        name = control_name(token)
        try:
            shm = _create_segment(name, _CTL_SIZE)
            return cls(shm, owner=True), True
        except FileExistsError:
            block = cls(attach_segment(name), owner=True)
            state = block.read()
            if state is not None:
                block._seq = 2 * state.version  # resume from an even seq
            return block, False

    @classmethod
    def attach(cls, token: str) -> "ControlBlock":
        """Attach read-only (raises ``FileNotFoundError`` if not published)."""
        return cls(attach_segment(control_name(token)), owner=False)

    @property
    def name(self) -> str:
        """Segment name of the control block."""
        return self._shm.name

    # ------------------------------------------------------------------ #
    def write(
        self, generation: int, version: int, published_at: float, data_segment: str
    ) -> None:
        """Publish a new control record (single-writer seqlock protocol)."""
        encoded = data_segment.encode("utf-8")
        if len(encoded) > _NAME_CAPACITY:
            raise ValueError(f"data segment name too long: {data_segment!r}")
        buf = self._shm.buf
        self._seq += 1  # odd: write in progress
        _SEQ.pack_into(buf, _SEQ_OFFSET, self._seq)
        _CTL_HEADER.pack_into(
            buf, 0, _MAGIC, self._seq, generation, version, published_at, len(encoded)
        )
        buf[_NAME_OFFSET : _NAME_OFFSET + len(encoded)] = encoded
        self._seq += 1  # even: stable
        _SEQ.pack_into(buf, _SEQ_OFFSET, self._seq)

    def read(self, attempts: int = 64) -> Optional[ControlState]:
        """One consistent read, or ``None`` if nothing was ever published."""
        buf = self._shm.buf
        for _ in range(attempts):
            magic, seq1, generation, version, published_at, name_len = (
                _CTL_HEADER.unpack_from(buf, 0)
            )
            if magic != _MAGIC or seq1 == 0:
                return None
            if seq1 % 2:
                time.sleep(0)  # writer mid-update; yield and retry
                continue
            name = bytes(buf[_NAME_OFFSET : _NAME_OFFSET + name_len]).decode("utf-8")
            (seq2,) = _SEQ.unpack_from(buf, _SEQ_OFFSET)
            if seq1 == seq2:
                return ControlState(generation, version, published_at, name)
            time.sleep(0)
        raise TimeoutError("control block kept changing under the reader")

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's mapping."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass

    def unlink(self) -> None:
        """Remove the segment (owner only; attached readers stay valid)."""
        unlink_segment(self._shm)


# ---------------------------------------------------------------------- #
# data segments
# ---------------------------------------------------------------------- #
def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def write_snapshot_segment(
    name: str,
    snapshot: ClusterSnapshot,
    generation: int,
    version: int,
    published_at: float,
) -> shared_memory.SharedMemory:
    """Write one immutable publication segment and return it (attached).

    Numeric snapshots are decomposed into raw array buffers (the zero-copy
    serving path); grid and object-keyed snapshots fall back to pickling
    the whole snapshot into the payload.
    """
    if supports_buffer_transport(snapshot):
        transport_header, arrays = snapshot_to_buffers(snapshot)
        offsets: Dict[str, Tuple[int, int]] = {}
        cursor = 0
        for array_name, array in arrays.items():
            cursor = _aligned(cursor)
            offsets[array_name] = (cursor, array.nbytes)
            cursor += array.nbytes
        header = {
            "mode": "arrays",
            "generation": generation,
            "version": version,
            "published_at": published_at,
            "transport_header": transport_header,
            "offsets": offsets,
        }
        payload_size = cursor
    else:
        blob = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "mode": "pickle",
            "generation": generation,
            "version": version,
            "published_at": published_at,
            "size": len(blob),
        }
        payload_size = len(blob)

    header_blob = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
    payload_base = _aligned(_DATA_PREFIX.size + len(header_blob))
    total = max(1, payload_base + payload_size)
    shm = _create_segment(name, total)
    buf = shm.buf
    _DATA_PREFIX.pack_into(buf, 0, len(header_blob), payload_base)
    buf[_DATA_PREFIX.size : _DATA_PREFIX.size + len(header_blob)] = header_blob
    if header["mode"] == "arrays":
        for array_name, array in arrays.items():
            offset, size = offsets[array_name]
            start = payload_base + offset
            dest = np.frombuffer(buf, dtype=np.uint8, offset=start, count=size)
            dest[:] = array.view(np.uint8).reshape(-1)
            del dest
    else:
        buf[payload_base : payload_base + payload_size] = blob
    return shm


def read_snapshot_segment(
    shm: shared_memory.SharedMemory, copy: bool = False
) -> Tuple[ClusterSnapshot, Dict[str, Any]]:
    """Hydrate ``(snapshot, header)`` from a publication segment.

    In ``"arrays"`` mode with ``copy=False`` the snapshot's arrays are
    views into the segment — the caller must keep ``shm`` open while the
    snapshot is in use (:class:`HydratedSnapshot` manages that pairing).
    """
    buf = shm.buf
    header_len, payload_base = _DATA_PREFIX.unpack_from(buf, 0)
    header = pickle.loads(bytes(buf[_DATA_PREFIX.size : _DATA_PREFIX.size + header_len]))
    if header["mode"] == "arrays":
        buffers = {
            array_name: buf[payload_base + offset : payload_base + offset + size]
            for array_name, (offset, size) in header["offsets"].items()
        }
        snapshot = snapshot_from_buffers(header["transport_header"], buffers, copy=copy)
    else:
        payload = bytes(buf[payload_base : payload_base + header["size"]])
        snapshot = pickle.loads(payload)
    return snapshot, header


class HydratedSnapshot:
    """A snapshot hydrated from shared memory, paired with its segment.

    Keeps the backing segment mapped for as long as the snapshot is alive
    (zero-copy arrays point into it) and closes the mapping on
    :meth:`close`.  ``mode`` is ``"arrays"`` (zero-copy) or ``"pickle"``.
    """

    def __init__(
        self,
        snapshot: ClusterSnapshot,
        segment: Optional[shared_memory.SharedMemory],
        generation: int,
        version: int,
        published_at: float,
        mode: str,
    ) -> None:
        self.snapshot = snapshot
        self._segment = segment
        self.generation = generation
        self.version = version
        self.published_at = published_at
        self.mode = mode

    @property
    def key(self) -> Tuple[int, int]:
        """(generation, version) identity of this publication."""
        return (self.generation, self.version)

    def staleness_s(self, now: Optional[float] = None) -> float:
        """Seconds between publication and ``now`` (wall clock)."""
        if now is None:
            now = time.time()
        return max(0.0, now - self.published_at)

    def close(self) -> None:
        """Release the snapshot and unmap the backing segment."""
        self.snapshot = None
        if self._segment is not None:
            try:
                self._segment.close()
            except BufferError:
                # Someone still holds the arrays; the mapping falls with them.
                pass
            self._segment = None


class SnapshotReader:
    """Attach-and-handshake client for one serving token.

    ``refresh()`` is the version handshake: read the control block, and if
    it names a newer publication than the one currently held, attach the
    new data segment, hydrate it, and verify that the segment's own header
    matches what the control block promised.  A segment that disappears
    mid-attach (the publisher swapped and unlinked it between our control
    read and the attach) is simply retried against the fresh control state
    — that is the expected race under rapid republish, not an error.
    """

    def __init__(self, token: str, copy: bool = False) -> None:
        self.token = token
        self.copy = copy
        self._ctl: Optional[ControlBlock] = None
        self._current: Optional[HydratedSnapshot] = None
        #: Publication/handshake counters (exposed through worker summaries).
        self.counters: Dict[str, int] = {
            "attaches": 0,
            "handshake_retries": 0,
            "pickle_hydrations": 0,
        }

    # ------------------------------------------------------------------ #
    def _ensure_ctl(self) -> bool:
        if self._ctl is None:
            try:
                self._ctl = ControlBlock.attach(self.token)
            except FileNotFoundError:
                return False
        return True

    def poll(self) -> Optional[ControlState]:
        """Cheap control-block read (no segment attach)."""
        if not self._ensure_ctl():
            return None
        return self._ctl.read()

    @property
    def current(self) -> Optional[HydratedSnapshot]:
        """The publication currently held (may be stale; see :meth:`refresh`)."""
        return self._current

    def refresh(self, max_attempts: int = 16) -> Optional[HydratedSnapshot]:
        """Re-handshake if the control block advertises a newer publication."""
        state = self.poll()
        if state is None:
            return self._current
        if self._current is not None and self._current.key == state.key:
            return self._current
        for _ in range(max_attempts):
            try:
                segment = attach_segment(state.data_segment)
            except FileNotFoundError:
                # Swapped away under us; re-read and try the newer segment.
                self.counters["handshake_retries"] += 1
                newer = self.poll()
                if newer is None or newer.key == state.key:
                    time.sleep(0.001)
                    continue
                state = newer
                continue
            snapshot, header = read_snapshot_segment(segment, copy=self.copy)
            if (header["generation"], header["version"]) != state.key:
                # The name can never be reused, so this is a torn control
                # read rather than stale data; re-handshake from scratch.
                self.counters["handshake_retries"] += 1
                segment.close()
                refreshed = self.poll()
                if refreshed is not None:
                    state = refreshed
                continue
            hydrated = HydratedSnapshot(
                snapshot,
                segment if header["mode"] == "arrays" else _closed(segment),
                header["generation"],
                header["version"],
                header["published_at"],
                header["mode"],
            )
            self.counters["attaches"] += 1
            if header["mode"] == "pickle":
                self.counters["pickle_hydrations"] += 1
            previous, self._current = self._current, hydrated
            if previous is not None:
                previous.close()
            return self._current
        raise TimeoutError(
            f"could not complete the snapshot handshake for token {self.token!r} "
            f"after {max_attempts} attempts"
        )

    def close(self) -> None:
        """Release the held publication and the control-block mapping."""
        if self._current is not None:
            self._current.close()
            self._current = None
        if self._ctl is not None:
            self._ctl.close()
            self._ctl = None


def _closed(segment: shared_memory.SharedMemory) -> None:
    """Close a segment a pickle-mode hydration no longer needs."""
    segment.close()
    return None


# ---------------------------------------------------------------------- #
# discovery and cleanup
# ---------------------------------------------------------------------- #
def list_segments(token: Optional[str] = None) -> List[str]:
    """Names of live serving segments (optionally restricted to a token)."""
    prefix = segment_prefix(token) if token is not None else "edmserv-"
    if _SHM_DIR.is_dir():
        return sorted(p.name for p in _SHM_DIR.iterdir() if p.name.startswith(prefix))
    return []  # pragma: no cover - non-Linux fallback handled by cleanup


def cleanup_segments(token: str) -> List[str]:
    """Unlink every segment belonging to a token; returns the names removed.

    Safe to call at any time (idempotent): normal shutdown, double
    cleanup, and crash recovery after a killed publisher all land here.
    Readers that still hold mappings keep them until they close.
    """
    names = list_segments(token)
    if not names:
        # Fallback discovery when /dev/shm is not scannable: the control
        # block knows the current data segment.
        try:
            ctl = ControlBlock.attach(token)
        except FileNotFoundError:
            return []
        state = ctl.read()
        ctl.close()
        names = [control_name(token)]
        if state is not None:
            names.append(state.data_segment)
    removed = []
    for name in names:
        try:
            shm = attach_segment(name)
        except FileNotFoundError:
            continue
        unlink_segment(shm)
        removed.append(name)
        shm.close()
    return removed
