"""Adaptive tuning of the cluster-separation threshold τ (Section 5).

τ controls cluster granularity: dependent links longer than τ are *weak*
and cut the DP-Tree into MSDSubTrees.  The paper proposes the objective

    F(τ) = α · (Σ_{δ>τ} δ) / (n·δ̄)  +  (1-α) · (m·δ̄) / (Σ_{δ≤τ} δ)

where n = |{δ > τ}|, m = |{δ ≤ τ}| and δ̄ is the mean dependent distance
(Equation 15).  Minimising F simultaneously pushes for few, long weak links
(small first term) and many short strong links (small second term); α
balances the two and encodes the user's preferred granularity.

α is *learned once* from the user's initial choice of τ₀ on the decision
graph: we search for the α under which τ₀ minimises F over the initial δ
values (``learn_alpha``).  Afterwards, whenever the distribution of δ values
drifts, ``optimize`` re-computes the τ that minimises F for that fixed α.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


def evaluation_function(tau: float, deltas: Sequence[float], alpha: float) -> float:
    """Evaluate the τ objective F(τ) over finite dependent distances.

    Section 5 states the goal as *minimising the average relative
    intra-dependent-distance* (mean of δ ≤ τ, relative to the overall mean
    δ̄) while *maximising the average relative inter-dependent-distance*
    (mean of δ > τ, relative to δ̄).  We therefore minimise

        F(τ) = α · δ̄ / mean(δ > τ)  +  (1 − α) · mean(δ ≤ τ) / δ̄ .

    Note on fidelity: Equation 15 as printed in the paper places the
    numerators and denominators the other way around, which contradicts the
    stated goal (its literal form is monotonically minimised by putting
    every link in the intra set, i.e. a single cluster, for any α).  We
    implement the form consistent with the stated optimisation goal and
    with the Table 4 behaviour (dynamic τ keeps two clusters at 4-6 s); the
    discrepancy is recorded in EXPERIMENTS.md.

    Infinite δ values (tree roots) are excluded, as are non-positive ones.
    Degenerate partitions (empty intra or empty inter set) evaluate to
    +inf: a meaningful τ must separate at least one weak link from at least
    one strong link.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    finite = [d for d in deltas if d > 0 and math.isfinite(d)]
    if not finite:
        return float("inf")
    mean_delta = sum(finite) / len(finite)
    if mean_delta <= 0:
        return float("inf")

    inter = [d for d in finite if d > tau]
    intra = [d for d in finite if d <= tau]
    if not inter or not intra:
        return float("inf")

    inter_term = (len(inter) * mean_delta) / sum(inter)
    intra_term = sum(intra) / (len(intra) * mean_delta)
    return alpha * inter_term + (1.0 - alpha) * intra_term


def _score_components(
    deltas: Sequence[float], candidates: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-candidate objective components ``(A, B)`` with ``F = α·A + (1-α)·B``.

    ``A`` is the inter term ``(n·δ̄)/Σ_{δ>τ} δ`` and ``B`` the intra term
    ``Σ_{δ≤τ} δ/(m·δ̄)`` of :func:`evaluation_function`, evaluated for every
    candidate τ in one vectorised pass; degenerate partitions score ``inf``.
    Both components are independent of α, which lets :meth:`TauOptimizer.learn_alpha`
    scan its whole α grid against a single evaluation of this function.
    """
    taus = np.asarray(candidates, dtype=float)
    finite = np.asarray(
        [d for d in deltas if d > 0 and math.isfinite(d)], dtype=float
    )
    invalid = np.full(taus.shape, np.inf)
    if finite.size == 0:
        return invalid, invalid
    mean_delta = float(finite.mean())
    if mean_delta <= 0:
        return invalid, invalid
    # Partition sums for every candidate via prefix sums over the sorted δ
    # values — O((n + C) log n) time and O(n + C) memory, where a dense
    # (candidates × deltas) mask would be quadratic in the active-cell count.
    finite = np.sort(finite)
    prefix = np.concatenate(([0.0], np.cumsum(finite)))
    total = prefix[-1]
    intra_count = np.searchsorted(finite, taus, side="right")
    inter_count = finite.size - intra_count
    intra_sum = prefix[intra_count]
    inter_sum = total - intra_sum
    valid = (inter_count > 0) & (intra_count > 0)
    inter_term = np.divide(
        inter_count * mean_delta, inter_sum, out=np.full(taus.shape, np.inf), where=valid
    )
    intra_term = np.divide(
        intra_sum, intra_count * mean_delta, out=np.full(taus.shape, np.inf), where=valid
    )
    return inter_term, intra_term


def candidate_taus(deltas: Sequence[float]) -> List[float]:
    """Candidate τ values: midpoints between consecutive sorted δ values.

    Because F only changes when τ crosses a δ value, evaluating F at the
    midpoints (plus a value above the maximum) explores every distinct
    partition of the δ values into intra / inter sets.
    """
    finite = sorted({d for d in deltas if d > 0 and math.isfinite(d)})
    if not finite:
        return []
    candidates = []
    for low, high in zip(finite, finite[1:]):
        candidates.append((low + high) / 2.0)
    # τ equal to the largest δ keeps every link strong (single cluster).
    candidates.append(finite[-1] * 1.0001)
    # τ just below the smallest δ makes every link weak; usually terrible but
    # keeps the search space complete.
    if len(finite) > 1:
        candidates.insert(0, finite[0] * 0.9999)
    return candidates


@dataclass
class TauOptimizer:
    """Learns α from an initial τ choice and re-optimises τ as data evolves.

    Parameters
    ----------
    alpha:
        Balance parameter; ``None`` until learned or set explicitly.
    alpha_grid_size:
        Number of α values examined by :meth:`learn_alpha`.
    """

    alpha: Optional[float] = None
    alpha_grid_size: int = 99
    history: List[Tuple[float, float]] = field(default_factory=list)

    def learn_alpha(self, tau0: float, deltas: Sequence[float]) -> float:
        """Learn α such that τ₀ (approximately) minimises F over ``deltas``.

        We scan a grid of α values and pick the one for which the optimal τ
        is closest to τ₀ (ties broken towards the largest margin between τ₀'s
        objective value and the best alternative).  If no α makes τ₀ optimal
        the closest achievable α is still returned — the caller's τ₀ simply
        encodes a preference the objective can only approximate.
        """
        if tau0 <= 0:
            raise ValueError(f"tau0 must be positive, got {tau0}")
        candidates = candidate_taus(deltas)
        if not candidates:
            # Nothing to learn from; fall back to a neutral balance.
            self.alpha = 0.5
            return self.alpha

        inter_term, intra_term = _score_components(deltas, candidates)
        scored: List[Tuple[float, float]] = []
        for i in range(1, self.alpha_grid_size + 1):
            alpha = i / (self.alpha_grid_size + 1)
            values = alpha * inter_term + (1.0 - alpha) * intra_term
            optimal_tau = candidates[int(np.argmin(values))]
            # Score: how far the α-optimal τ lands from the user's τ₀,
            # normalised by τ₀ so the scale of δ does not matter.
            scored.append((abs(optimal_tau - tau0) / tau0, alpha))
        best_score = min(score for score, _ in scored)
        # Usually a whole range of α values reproduces τ₀; pick the median of
        # that range so the learned preference stays robust when the δ
        # distribution later drifts (an extreme α over- or under-clusters).
        tolerance = best_score + 1e-9
        matching = sorted(alpha for score, alpha in scored if score <= tolerance)
        self.alpha = matching[len(matching) // 2]
        return self.alpha

    def _argmin_tau(
        self, alpha: float, deltas: Sequence[float], candidates: Optional[List[float]] = None
    ) -> float:
        if candidates is None:
            candidates = candidate_taus(deltas)
        inter_term, intra_term = _score_components(deltas, candidates)
        values = alpha * inter_term + (1.0 - alpha) * intra_term
        return candidates[int(np.argmin(values))]

    def optimize(
        self,
        deltas: Sequence[float],
        time: Optional[float] = None,
        fallback: Optional[float] = None,
    ) -> float:
        """Return the τ minimising F for the current α over ``deltas``.

        When no candidate τ yields a finite objective (e.g. only a single
        distinct δ value exists, so no partition has both intra and inter
        links) the ``fallback`` value is returned unchanged — re-optimising
        on such degenerate evidence would arbitrarily flip the clustering.

        Raises ``RuntimeError`` if α has not been learned or set.
        """
        if self.alpha is None:
            raise RuntimeError("alpha must be learned (learn_alpha) or set before optimising tau")
        candidates = candidate_taus(deltas)
        if not candidates:
            if fallback is not None:
                return fallback
            raise ValueError("cannot optimise tau with no finite dependent distances")
        inter_term, intra_term = _score_components(deltas, candidates)
        values = self.alpha * inter_term + (1.0 - self.alpha) * intra_term
        best = int(np.argmin(values))
        if not math.isfinite(float(values[best])) and fallback is not None:
            tau = fallback
        else:
            tau = candidates[best]
        if time is not None:
            self.history.append((time, tau))
        return tau


def suggest_initial_tau(deltas: Sequence[float], min_peaks: int = 2) -> float:
    """Heuristic stand-in for the user's decision-graph selection.

    The original DP paper lets the user pick cluster centres as the points
    with anomalously large δ on the decision graph.  Without a user in the
    loop we pick τ at the largest *relative* gap in the sorted δ values,
    constrained so that at least ``min_peaks`` cells remain above τ (so the
    initial clustering has at least that many clusters whenever possible).
    """
    finite = sorted((d for d in deltas if d > 0 and math.isfinite(d)), reverse=True)
    if not finite:
        return 1.0
    if len(finite) < 2:
        return finite[-1] / 2.0

    # The DP-Tree root (δ = inf) is always a peak, so a τ inside the gap
    # below position i yields (i + 1) non-root peaks, i.e. (i + 2) clusters.
    # To guarantee at least ``min_peaks`` clusters the search may start at
    # the very first gap.
    start = max(min_peaks - 2, 0)
    start = min(start, len(finite) - 2)
    best_gap = -1.0
    best_tau = (finite[start] + finite[start + 1]) / 2.0
    for i in range(start, len(finite) - 1):
        high = finite[i]
        low = finite[i + 1]
        if low <= 0:
            break
        gap = (high - low) / max(low, 1e-12)
        if gap > best_gap:
            best_gap = gap
            best_tau = (high + low) / 2.0
    return best_tau
