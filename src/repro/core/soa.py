"""Structure-of-arrays backing store for cluster-cells.

:class:`CellArrays` is the canonical, array-native home of every
cluster-cell a model owns.  Each cell occupies one *slot*: a row shared by
a set of contiguous parallel numpy columns (seed matrix, densities,
timestamps, dependency ids and distances, absorption counters).  Slots are
recycled through a free-list, so steady-state ingestion — cells created,
deactivated, reactivated and deleted — performs no per-point allocation
beyond the occasional capacity doubling.

The design splits responsibilities three ways:

* **CellArrays (this module)** owns the storage: slot allocation, the
  column arrays, and the :class:`~repro.core.cell.ClusterCell` views that
  give each slot an object-shaped API.
* **CellStore** (:mod:`repro.core.cellstore`) is a *population view* over
  one ``CellArrays``: it maintains a dense array of slots (the active or
  the inactive population) and answers vectorised bulk queries against
  that subset.  Populations share the backbone, so moving a cell between
  them never copies cell state.
* **ClusterCell** (:mod:`repro.core.cell`) is a thin per-slot view whose
  attributes read and write the columns in place.

The storage-layout contract (column dtypes, invariants, free-list
semantics) is documented in ``docs/ARCHITECTURE.md``; the serving tier
builds on it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

import numpy as np

__all__ = ["CellArrays", "FREE", "DETACHED", "MEMBER"]

#: Slot status codes (``CellArrays.status`` column).
FREE = 0
#: The slot belongs to a cell not (yet) tracked by any population view —
#: either a standalone cell in the detached arena or a model cell between
#: population moves.
DETACHED = 1
#: The slot belongs to a cell tracked by at least one population view.
MEMBER = 2

_INITIAL_CAPACITY = 64

#: Scalar columns grown in lock-step; name -> (dtype, fill value).
_SCALAR_COLUMNS = (
    ("density", np.float64, 0.0),
    ("created_at", np.float64, 0.0),
    ("last_update", np.float64, 0.0),
    ("last_absorb", np.float64, 0.0),
    ("delta", np.float64, np.inf),
    ("dep", np.int64, -1),
    ("points_absorbed", np.int64, 0),
    ("cell_ids", np.int64, -1),
    ("status", np.int8, FREE),
)


class CellArrays:
    """Canonical SoA storage for the cluster-cells of one model.

    Parameters
    ----------
    numeric:
        Whether seeds are numeric vectors.  Numeric arenas keep the seeds
        in a contiguous ``(capacity, dim)`` matrix (plus squared norms);
        non-numeric arenas (token sets under Jaccard) keep seed objects in
        a side list only.
    dtype:
        Seed-matrix dtype, ``float64`` (default, exact equivalence with the
        scalar paths) or ``float32`` (half the memory traffic and a faster
        distance kernel, at ~1e-7 relative distance error).  All scalar
        columns stay float64 regardless, so densities and timestamps never
        lose precision.
    capacity:
        Initial number of slots; grows by doubling.
    """

    def __init__(
        self,
        numeric: bool = True,
        dtype: Any = np.float64,
        capacity: int = _INITIAL_CAPACITY,
    ) -> None:
        self.numeric = numeric
        self.seed_dtype = np.dtype(dtype)
        if self.seed_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"seed dtype must be float32 or float64, got {dtype!r}")
        self.capacity = max(1, int(capacity))
        self.dim: Optional[int] = None
        #: Contiguous ``(capacity, dim)`` seed matrix (numeric arenas only);
        #: allocated lazily when the first seed fixes the dimension.
        self.seeds: Optional[np.ndarray] = None
        #: Squared seed norms, used by the norm-window pruned nearest query.
        self.seed_norm2 = np.zeros(self.capacity, dtype=np.float64)
        for name, col_dtype, fill in _SCALAR_COLUMNS:
            setattr(self, name, np.full(self.capacity, fill, dtype=col_dtype))
        #: LIFO free-list of recycled slots.
        self._free: List[int] = []
        #: High-water mark: slots >= ``_top`` have never been used.
        self._top = 0
        #: cell id -> slot for every live (non-FREE) slot.
        self._slot_of: Dict[int, int] = {}
        #: cell id -> view object, created lazily and kept stable.
        self._views: Dict[int, Any] = {}
        #: slot -> original seed object (tuple / token set), the exact value
        #: handed to :meth:`create`; the matrix row is its dtype-cast copy.
        self._seed_obj: Dict[int, Any] = {}
        #: slot -> ground-truth label histogram (allocated on first vote).
        self._label_votes: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of live (allocated) cells."""
        return len(self._slot_of)

    def __contains__(self, cell_id: int) -> bool:
        """Whether a cell id currently owns a slot."""
        return cell_id in self._slot_of

    def slot_of(self, cell_id: int) -> int:
        """Slot index of a cell id; raises ``KeyError`` if not allocated."""
        return self._slot_of[cell_id]

    def ids(self) -> Iterator[int]:
        """Iterate over the live cell ids (allocation order not guaranteed)."""
        return iter(self._slot_of)

    @property
    def n_free(self) -> int:
        """Number of slots currently parked on the free-list."""
        return len(self._free)

    @property
    def high_water(self) -> int:
        """Highest slot count ever allocated (capacity actually touched)."""
        return self._top

    def nbytes(self) -> int:
        """Total bytes held by the column arrays (the seed side list excluded)."""
        total = self.seed_norm2.nbytes
        if self.seeds is not None:
            total += self.seeds.nbytes
        for name, _, _ in _SCALAR_COLUMNS:
            total += getattr(self, name).nbytes
        return total

    # ------------------------------------------------------------------ #
    # slot allocation
    # ------------------------------------------------------------------ #
    def _grow(self) -> None:
        new_capacity = self.capacity * 2
        if self.seeds is not None:
            seeds = np.zeros((new_capacity, self.seeds.shape[1]), dtype=self.seed_dtype)
            seeds[: self.capacity] = self.seeds
            self.seeds = seeds
        norm2 = np.zeros(new_capacity, dtype=np.float64)
        norm2[: self.capacity] = self.seed_norm2
        self.seed_norm2 = norm2
        for name, col_dtype, fill in _SCALAR_COLUMNS:
            grown = np.full(new_capacity, fill, dtype=col_dtype)
            grown[: self.capacity] = getattr(self, name)
            setattr(self, name, grown)
        self.capacity = new_capacity

    def _set_seed(self, slot: int, seed: Any) -> None:
        self._seed_obj[slot] = seed
        if not self.numeric:
            return
        row = np.asarray(seed, dtype=self.seed_dtype)
        if self.dim is None:
            self.dim = int(row.shape[0])
        elif row.shape[0] != self.dim:
            raise ValueError(
                f"seed dimension {row.shape[0]} does not match arena dimension {self.dim}"
            )
        if self.seeds is None or self.seeds.shape[1] != self.dim:
            self.seeds = np.zeros((self.capacity, self.dim), dtype=self.seed_dtype)
        self.seeds[slot] = row
        self.seed_norm2[slot] = float(np.einsum("i,i->", row, row, dtype=np.float64))

    def allocate(
        self,
        cell_id: int,
        seed: Any,
        density: float = 1.0,
        created_at: float = 0.0,
        last_update: float = 0.0,
        last_absorb: float = 0.0,
        dependency: Optional[int] = None,
        delta: float = np.inf,
        points_absorbed: int = 1,
    ) -> int:
        """Claim a slot for ``cell_id`` (recycling the free-list) and fill it."""
        if cell_id in self._slot_of:
            raise KeyError(f"cell {cell_id} already allocated")
        if self._free:
            slot = self._free.pop()
        else:
            if self._top >= self.capacity:
                self._grow()
            slot = self._top
            self._top += 1
        try:
            self._set_seed(slot, seed)
        except ValueError:
            self._free.append(slot)
            raise
        self._slot_of[cell_id] = slot
        self.density[slot] = density
        self.created_at[slot] = created_at
        self.last_update[slot] = last_update
        self.last_absorb[slot] = last_absorb
        self.delta[slot] = delta
        self.dep[slot] = -1 if dependency is None else dependency
        self.points_absorbed[slot] = points_absorbed
        self.cell_ids[slot] = cell_id
        self.status[slot] = DETACHED
        return slot

    def release(self, cell_id: int) -> None:
        """Return a cell's slot to the free-list and drop its side state.

        The caller is responsible for first removing the cell from every
        population view (and the DP-Tree / reservoir); releasing a slot
        still referenced by a view would let the slot be recycled under it.
        """
        slot = self._slot_of.pop(cell_id)
        self.status[slot] = FREE
        self.cell_ids[slot] = -1
        self.dep[slot] = -1
        self.delta[slot] = np.inf
        self._seed_obj.pop(slot, None)
        self._label_votes.pop(slot, None)
        view = self._views.pop(cell_id, None)
        if view is not None:
            view._arrays = None
            view._slot = -1
        self._free.append(slot)

    # ------------------------------------------------------------------ #
    # views and adoption
    # ------------------------------------------------------------------ #
    def create(self, seed: Any, **fields: Any) -> Any:
        """Allocate a slot and return its :class:`ClusterCell` view."""
        from repro.core.cell import ClusterCell

        return ClusterCell(seed=seed, _arena=self, **fields)

    def view(self, cell_id: int) -> Any:
        """The stable :class:`ClusterCell` view for a live cell id."""
        cell = self._views.get(cell_id)
        if cell is None:
            from repro.core.cell import ClusterCell

            cell = ClusterCell.__new__(ClusterCell)
            cell._arrays = self
            cell._slot = self._slot_of[cell_id]
            self._views[cell_id] = cell
        return cell

    def register_view(self, cell_id: int, view: Any) -> None:
        """Record ``view`` as the canonical view object for ``cell_id``."""
        self._views[cell_id] = view

    def adopt(self, cell: Any) -> int:
        """Move a cell's state from another arena into this one.

        The cell's view object is repointed at the new slot (object identity
        is preserved — ``store.get(cell.cell_id) is cell`` keeps holding),
        and its slot in the source arena is released.  Returns the new slot.
        """
        source = cell._arrays
        if source is self:
            return cell._slot
        cell_id = cell.cell_id
        slot = self.allocate(
            cell_id,
            cell.seed,
            density=cell.density,
            created_at=cell.created_at,
            last_update=cell.last_update,
            last_absorb=cell.last_absorb,
            dependency=cell.dependency,
            delta=cell.delta,
            points_absorbed=cell.points_absorbed,
        )
        votes = source._label_votes.get(cell._slot)
        if votes:
            self._label_votes[slot] = votes
        if source is not None:
            source._views.pop(cell_id, None)
            source.release(cell_id)
        cell._arrays = self
        cell._slot = slot
        self._views[cell_id] = cell
        return slot

    def label_votes_of(self, slot: int) -> Dict[int, int]:
        """The (lazily created) label histogram of a slot."""
        votes = self._label_votes.get(slot)
        if votes is None:
            votes = {}
            self._label_votes[slot] = votes
        return votes

    def seed_of(self, slot: int) -> Any:
        """The original seed object stored at a slot."""
        return self._seed_obj[slot]

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check slot-accounting invariants (tests only)."""
        free = set(self._free)
        assert len(free) == len(self._free), "free-list contains duplicates"
        for slot in free:
            assert self.status[slot] == FREE, f"free slot {slot} not marked FREE"
            assert slot < self._top, "free-list references never-allocated slot"
        for cell_id, slot in self._slot_of.items():
            assert slot not in free, f"live cell {cell_id} sits on a free slot"
            assert self.status[slot] != FREE, f"live cell {cell_id} on FREE slot"
            assert int(self.cell_ids[slot]) == cell_id
        assert self._top <= self.capacity
        assert len(self._slot_of) + len(free) == self._top


#: Shared arena backing standalone :class:`ClusterCell` objects — cells
#: constructed directly (tests, deserialisation) before a model adopts them
#: into its own arena.  Non-numeric so it accepts seeds of any type or
#: dimension.
_DETACHED_ARENA = CellArrays(numeric=False)


def detached_arena() -> CellArrays:
    """The process-wide arena for standalone cells."""
    return _DETACHED_ARENA
