"""Micro-batch ingestion for EDMStream.

:class:`BatchIngestor` processes a stream in micro-batches while producing
the same cell populations and cluster partitions as the per-point
:meth:`~repro.core.edmstream.EDMStream.learn_one` loop.  The speed-up comes
from three observations about the per-point work of Section 4:

1. **Assignment is a pure nearest-seed query.**  Which cell absorbs a point
   depends only on the set of seeds (seeds never move, Definition 4), so the
   point→seed distances of a whole batch can be computed as one vectorised
   matrix operation against the :class:`~repro.core.cellstore.CellStore`
   seed matrix.  Points that fall outside every existing cell are replayed
   against the (few) seeds created earlier in the same batch.

2. **Density updates compose.**  A cell absorbing ``k`` points inside a
   batch ends at ``ρ·a^{λΔ} + Σ a^{λ(t_k - t_i)}`` (Equation 8 applied ``k``
   times), which :meth:`~repro.core.decay.DecayModel.batch_absorb` evaluates
   once per (cell, batch) — with the closed-form geometric sum for evenly
   spaced arrivals.

3. **Dependencies depend only on the final density order.**  Pure decay
   preserves the relative density order of any two cells (both shrink by
   the same factor per unit time), so within a batch the order changes only
   at absorptions and the set of higher-density cells seen by a non-absorbing
   cell can only gain members.  Deferring the Theorem 1 / Theorem 2 filtered
   updates to the batch boundary therefore reaches the same fixed point: the
   "dirty" cells (absorbers and newly activated cells) get one exact
   dependency recomputation each, and every other active cell only needs to
   be checked against the dirty cells that now dominate it — one distance
   matrix per batch instead of one filtered pass per point.

Periodic work (decay sweeps, τ re-optimisation, evolution snapshots) and the
initial DP-Tree construction fire at stream-time boundaries, so batches are
split into *chunks* at exactly the points where the sequential path would
have triggered them; the model's own maintenance code then runs on identical
state.

Equivalence caveats: (1) *tie-breaking* — both paths share the canonical
rules (nearest seed / dominator with the smallest cell id wins exact
distance ties, density ties order by id), so exact ties resolve
identically; (2) *float rounding* — a multi-absorption batch evaluates the
same Equation 8 quantity through one closed-form sum instead of per-point
steps, so densities agree to ~1e-12 relative rather than bit-for-bit, and
a density comparison sitting within one ulp of a threshold (activation,
dominance) can in principle resolve differently.  Away from such
knife-edges the two paths produce identical cell populations and
partitions, which ``tests/test_batch_ingest.py`` enforces on numeric,
drifting and Jaccard streams.
"""

from __future__ import annotations

import math
import time as _time
from itertools import islice
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cellstore import nearest_over_slots
from repro.distance.metrics import pairwise_euclidean
from repro.streams.point import StreamPoint

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.edmstream import EDMStream

#: Chunk boundary kinds produced by the trigger scan.
_INIT = "init"
_PERIODIC = "periodic"


class BatchIngestor:
    """Ingest micro-batches of stream points into an :class:`EDMStream`.

    Parameters
    ----------
    model:
        The model to feed.  The ingestor is a *friend* of the model: it
        manipulates the same stores, reservoir and DP-Tree the sequential
        path does, through the model's own maintenance entry points.
    batch_size:
        Number of points gathered before a micro-batch is flushed.
    """

    def __init__(self, model: "EDMStream", batch_size: int = 256) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.batch_size = batch_size
        #: Cells created with revived sketch density in the current chunk
        #: (bounded-memory mode only); checked for activation at the chunk
        #: boundary.
        self._revived: List[int] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def ingest(self, stream: Iterable[StreamPoint]) -> List[int]:
        """Ingest an iterable of stream points; returns absorbing cell ids."""
        assigned: List[int] = []
        iterator = iter(stream)
        while True:
            batch = list(islice(iterator, self.batch_size))
            if not batch:
                return assigned
            assigned.extend(self.ingest_batch(batch))

    def ingest_batch(self, points: Sequence[StreamPoint]) -> List[int]:
        """Ingest one micro-batch; returns the absorbing cell id per point."""
        if not points:
            return []
        model = self.model
        started = _time.perf_counter()
        obs = model.obs
        obs.counter("ingest_points_total").inc(len(points))
        obs.counter("ingest_batches_total").inc()

        if model._numeric:
            # One C-level conversion for the whole batch; cells created from
            # these rows get the same tuple-of-floats seeds the sequential
            # path builds via ``_prepare``.
            values: Any = np.asarray([point.values for point in points], dtype=float)
        else:
            values = [point.values for point in points]
        times, labels = self._timeline(points)
        if model._start_time is None:
            first = points[0].timestamp
            model._start_time = float(times[0] if first is None else first)

        assigned: List[int] = [0] * len(points)
        start = 0
        for end, kind in self._chunk_plan(times):
            self._process_chunk(values, times, labels, start, end, assigned)
            now = float(times[end])
            if kind == _INIT:
                model._initialize(now)
            elif model._initialized:
                model._periodic_work(now)
            start = end + 1

        model._epoch += 1  # invalidate published snapshots (serving side)
        model.total_learn_seconds += _time.perf_counter() - started
        return assigned

    # ------------------------------------------------------------------ #
    # timeline and chunk planning
    # ------------------------------------------------------------------ #
    def _timeline(self, points: Sequence[StreamPoint]) -> Tuple[np.ndarray, List[Optional[int]]]:
        """Per-point observation times (running max, as ``learn_one`` sees)."""
        model = self.model
        now = model._now
        labels = [point.label for point in points]
        raw = [point.timestamp for point in points]
        if None not in raw:
            times = np.asarray(raw, dtype=float)
            if times[0] <= now or np.any(np.diff(times) < 0.0):
                np.maximum.accumulate(np.maximum(times, now), out=times)
            return times, labels
        n_points = model._n_points
        rate = model.config.stream_rate
        times = np.empty(len(points), dtype=float)
        for i, timestamp in enumerate(raw):
            if timestamp is None:
                timestamp = now + 1.0 / rate if n_points else 0.0
            if timestamp > now:
                now = timestamp
            times[i] = now
            n_points += 1
        return times, labels

    def _chunk_plan(self, times: np.ndarray) -> List[Tuple[int, Optional[str]]]:
        """Split the batch where the sequential path would run boundary work.

        Returns ``(last_index, kind)`` pairs; ``kind`` is ``"init"`` when the
        initialisation threshold is reached at that point, ``"periodic"``
        when any maintenance / τ / snapshot trigger fires there, and ``None``
        for the trailing batch remainder.  The scan mirrors the trigger
        bookkeeping of ``learn_one`` so chunk boundaries land on exactly the
        points where the sequential path acts.
        """
        model = self.model
        config = model.config
        n_points = model._n_points
        initialized = model._initialized
        last_maintenance = model._last_maintenance
        last_tau = model._last_tau_opt
        last_snapshot = model._last_snapshot
        last_time = float(times[-1])
        if initialized and (
            last_time - last_maintenance < config.maintenance_interval
            and (not config.adaptive_tau or last_time - last_tau < config.tau_reoptimize_interval)
            and last_time - last_snapshot < config.snapshot_interval
        ):
            # Fast path: no trigger can fire anywhere in this batch.
            return [(times.shape[0] - 1, None)]
        plan: List[Tuple[int, Optional[str]]] = []
        for i in range(times.shape[0]):
            t = float(times[i])
            n_points += 1
            if not initialized:
                if n_points >= config.init_size:
                    plan.append((i, _INIT))
                    initialized = True
                    last_maintenance = last_tau = last_snapshot = t
                continue
            fired = False
            if t - last_maintenance >= config.maintenance_interval:
                last_maintenance = t
                fired = True
            if config.adaptive_tau and t - last_tau >= config.tau_reoptimize_interval:
                last_tau = t
                fired = True
            if t - last_snapshot >= config.snapshot_interval:
                last_snapshot = t
                fired = True
            if fired:
                plan.append((i, _PERIODIC))
        if not plan or plan[-1][0] != times.shape[0] - 1:
            plan.append((times.shape[0] - 1, None))
        return plan

    # ------------------------------------------------------------------ #
    # one chunk: assignment, absorption, activation, dependency repair
    # ------------------------------------------------------------------ #
    def _process_chunk(
        self,
        values: Any,
        times: np.ndarray,
        labels: List[Optional[int]],
        start: int,
        end: int,
        assigned: List[int],
    ) -> None:
        model = self.model
        chunk_values = values[start : end + 1]
        chunk_times = times[start : end + 1]
        model._n_points += len(chunk_values)
        model._now = float(chunk_times[-1])

        if model._bounded is not None:
            # Evict ahead of the chunk's worst-case allocation (every point
            # seeding a cell) so store membership never changes between the
            # assignment scan and the absorption pass.
            model._bounded.ensure_headroom(len(chunk_values), float(chunk_times[0]))
        self._revived.clear()

        obs = model.obs
        with obs.phase("assign"):
            groups = self._assign_chunk(chunk_values, chunk_times, labels, start, assigned)
        with obs.phase("absorb"):
            dirty = self._apply_absorptions(groups, chunk_times, labels, start)

        if self._revived and model._initialized:
            # Revived cells can come back above the active threshold without
            # absorbing another point; the sequential path activates them at
            # creation, the batch path at its usual chunk boundary.
            now = float(chunk_times[-1])
            threshold = model.active_threshold(now)
            for cell_id in self._revived:
                if cell_id not in model.reservoir:
                    continue  # already activated by an absorption crossing
                cell = model.reservoir.get(cell_id)
                if cell.density_at(now, model.decay) >= threshold:
                    model._activate_cell(cell_id, now)

        if model._initialized and dirty:
            started = _time.perf_counter()
            with obs.phase("dependency"):
                self._repair_dependencies(dirty, float(chunk_times[-1]))
            model.dependency_update_seconds += _time.perf_counter() - started

    def _assign_chunk(
        self,
        chunk_values: Any,
        chunk_times: np.ndarray,
        labels: List[Optional[int]],
        offset: int,
        assigned: List[int],
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Vectorised nearest-seed assignment for one chunk.

        Existing seeds are queried through one distance-matrix computation
        per store.  Each seed created inside the chunk updates the remaining
        points' best-new-seed distance with one vectorised pass, so later
        points of the same chunk can still be absorbed by it, exactly as in
        the sequential path.  Returns the absorbed points grouped by
        absorbing cell as ``(group_ids, starts, counts, order)`` arrays —
        ``order`` holds chunk-local point indices sorted by absorbing cell
        (ascending within each group), ``starts``/``counts`` delimit the
        groups — or ``None`` when no point was absorbed.
        """
        model = self.model
        radius = model.config.radius
        numeric = model._numeric
        metric = model._metric

        size = len(chunk_values)
        arena = model._cells
        if numeric and arena.seeds is not None:
            # One scan over the union of both populations: same distances,
            # same smallest-id tie rule as querying the stores separately
            # and combining, but with a single kernel invocation per block.
            slots = np.concatenate((model._active.slots(), model._inactive.slots()))
            if slots.size == 0:
                store_best = store_best_id = None
            else:
                ids = np.concatenate(
                    (model._active.ids_array(), model._inactive.ids_array())
                )
                queries = np.asarray(chunk_values, dtype=arena.seed_dtype)
                store_best, store_best_id = nearest_over_slots(
                    arena,
                    slots,
                    ids,
                    queries,
                    within=radius,
                    prune_threshold=model._active.prune_threshold,
                )
        else:
            active_best, active_best_id = model._active.nearest_many(
                chunk_values, within=radius
            )
            inactive_best, inactive_best_id = model._inactive.nearest_many(
                chunk_values, within=radius
            )
            # Canonical combine of the two stores, vectorised across the chunk.
            if active_best is None:
                store_best, store_best_id = inactive_best, inactive_best_id
            elif inactive_best is None:
                store_best, store_best_id = active_best, active_best_id
            else:
                take = (inactive_best < active_best) | (
                    (inactive_best == active_best)
                    & (inactive_best_id < active_best_id)
                )
                store_best = np.where(take, inactive_best, active_best)
                store_best_id = np.where(take, inactive_best_id, active_best_id)

        # Per-point absorbing cell id; points that seed a new cell instead are
        # flagged in ``created`` and excluded from the absorption groups.
        absorber = np.empty(size, dtype=np.int64)
        created = np.zeros(size, dtype=bool)
        # Up to the first point that seeds a new cell, assignments depend
        # only on the pre-chunk stores and resolve without a Python loop —
        # in steady state that is the entire chunk.
        if store_best is None:
            first_create = 0
        else:
            outside = store_best > radius
            first_create = int(np.argmax(outside)) if outside.any() else size
        if first_create:
            absorber[:first_create] = store_best_id[:first_create]

        if first_create < size:
            # Nearest chunk-created seed per point; strictly-smaller updates
            # keep the earliest-created (smallest-id) seed on exact ties, and
            # since chunk-created cells carry the largest ids overall, a tie
            # against a pre-existing seed also resolves canonically.
            fresh_best = np.full(size, math.inf)
            fresh_id = np.zeros(size, dtype=np.int64)
            if numeric:
                # Only points outside every pre-existing cell can create a
                # seed, so the Python loop visits just those; each created
                # seed updates the later points' best-fresh-seed distance
                # with one vectorised pass over its row of the (outside,
                # chunk) distance matrix — same shared kernel as the store
                # queries, for bit-identical distances.
                if store_best is None:
                    candidates = np.arange(size)
                else:
                    candidates = np.flatnonzero(outside)
                candidate_rows: Optional[np.ndarray] = None
                bounded = model._bounded
                for row, j in enumerate(candidates.tolist()):
                    if fresh_best[j] <= radius:
                        continue  # absorbed by a seed created earlier in the chunk
                    seed = tuple(float(v) for v in chunk_values[j])
                    density = 1.0
                    if bounded is not None:
                        density += bounded.revival_density(seed, float(chunk_times[j]))
                    cell = model._cells.create(
                        seed,
                        density=density,
                        created_at=float(chunk_times[j]),
                        last_update=float(chunk_times[j]),
                        last_absorb=float(chunk_times[j]),
                    )
                    if density > 1.0:
                        self._revived.append(cell.cell_id)
                    label = labels[offset + j]
                    if label is not None:
                        cell.label_votes[label] = 1
                    model.reservoir.add(cell)
                    model._inactive.add(cell)
                    absorber[j] = cell.cell_id
                    created[j] = True
                    if j + 1 >= size:
                        continue
                    if candidate_rows is None:
                        candidate_rows = pairwise_euclidean(
                            chunk_values[candidates], chunk_values
                        )
                    distances = candidate_rows[row, j + 1 :]
                    better = distances < fresh_best[j + 1 :]
                    fresh_best[j + 1 :][better] = distances[better]
                    fresh_id[j + 1 :][better] = cell.cell_id
                tail = np.arange(first_create, size)
                tail = tail[~created[first_create:]]
                if tail.size:
                    if store_best is None:
                        absorber[tail] = fresh_id[tail]
                    else:
                        use_fresh = fresh_best[tail] < store_best[tail]
                        absorber[tail] = np.where(
                            use_fresh, fresh_id[tail], store_best_id[tail]
                        )
            else:
                for j in range(first_create, size):
                    value = chunk_values[j]
                    best_id: Optional[int] = None
                    best_distance = math.inf
                    if store_best is not None:
                        best_id = int(store_best_id[j])
                        best_distance = float(store_best[j])
                    if fresh_best[j] < best_distance:
                        best_id = int(fresh_id[j])
                        best_distance = float(fresh_best[j])

                    if best_id is not None and best_distance <= radius:
                        absorber[j] = best_id
                        continue

                    cell = model._cells.create(
                        value,
                        density=1.0,
                        created_at=float(chunk_times[j]),
                        last_update=float(chunk_times[j]),
                        last_absorb=float(chunk_times[j]),
                    )
                    label = labels[offset + j]
                    if label is not None:
                        cell.label_votes[label] = 1
                    model.reservoir.add(cell)
                    model._inactive.add(cell)
                    absorber[j] = cell.cell_id
                    created[j] = True
                    if j + 1 >= size:
                        continue
                    distances = np.asarray(
                        [metric(chunk_values[i], value) for i in range(j + 1, size)],
                        dtype=float,
                    )
                    better = distances < fresh_best[j + 1 :]
                    fresh_best[j + 1 :][better] = distances[better]
                    fresh_id[j + 1 :][better] = cell.cell_id

        assigned[offset : offset + size] = absorber.tolist()
        # Group the absorbed points by absorbing cell with one stable sort;
        # within each group the chunk-local indices stay ascending (arrival
        # order), which the trajectory/threshold logic downstream relies on.
        if created.any():
            points = np.flatnonzero(~created)
            if points.size == 0:
                return None
            order = points[np.argsort(absorber[points], kind="stable")]
        else:
            order = np.argsort(absorber, kind="stable")
        gids = absorber[order]
        starts = np.concatenate(([0], np.flatnonzero(gids[1:] != gids[:-1]) + 1))
        counts = np.diff(np.append(starts, order.size))
        return gids[starts], starts, counts, order

    def _apply_absorptions(
        self,
        groups: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
        chunk_times: np.ndarray,
        labels: List[Optional[int]],
        offset: int,
    ) -> List[int]:
        """Apply per-(cell, chunk) density updates; returns the dirty cells.

        ``groups`` is the grouped-absorption output of :meth:`_assign_chunk`.
        Dirty cells are the active absorbers plus the inactive cells whose
        density trajectory crossed the activation threshold inside the chunk
        (activated here, in crossing order, mirroring the sequential path's
        emergence handling).
        """
        model = self.model
        decay = model.decay
        arena = model._cells
        tree = model.tree
        initialized = model._initialized
        if groups is None:
            return []

        # One row per absorbing cell, gathered straight from the arena
        # columns; everything below is whole-array arithmetic over these.
        group_ids, starts, counts, order = groups
        n = group_ids.shape[0]
        id_list = group_ids.tolist()
        slot_map = arena._slot_of
        slots = np.fromiter((slot_map[cid] for cid in id_list), dtype=np.int64, count=n)
        in_tree = np.fromiter((cid in tree for cid in id_list), dtype=bool, count=n)
        last_times = chunk_times[order[starts + counts - 1]]
        a, lam = decay.a, decay.lam
        density = arena.density
        last_update = arena.last_update
        crossings: Dict[int, int] = {}

        # Batched Equation 8 for every group at once: decayed old density
        # plus one grouped freshness sum (``np.add.reduceat`` over the
        # concatenated arrivals) — the closed form of
        # ``DecayModel.batch_absorb``; a single-point group contributes
        # ``a^0 = 1.0`` exactly, matching ``ClusterCell.absorb``.
        arrivals = chunk_times[order]
        fresh = a ** (lam * (np.repeat(last_times, counts) - arrivals))
        increments = np.add.reduceat(fresh, starts)

        # Inactive multi-absorption cells need their full density trajectory
        # (below) to find the first activation-threshold crossing; everything
        # else takes the closed form.
        trajectory_rows = (
            ~in_tree & (counts > 1) if initialized else np.zeros(n, dtype=bool)
        )
        if trajectory_rows.any():
            rows = np.flatnonzero(~trajectory_rows)
            s = slots[rows]
            elapsed = np.maximum(0.0, last_times[rows] - last_update[s])
            density[s] = density[s] * a ** (lam * elapsed) + increments[rows]
            traj = np.flatnonzero(trajectory_rows)
            t_slots = slots[traj]
            t_counts = counts[traj]
            sel = np.repeat(trajectory_rows, counts)
            t_arr = arrivals[sel]
            t_order = order[sel]
            seg_ends = np.cumsum(t_counts)
            seg_starts = seg_ends - t_counts
            t0 = t_arr[seg_starts]
            # Exponents relative to each segment's first arrival stay bounded
            # by the chunk's time span (see ``DecayModel.absorb_trajectory``);
            # a span wide enough to overflow falls back to the per-row path.
            rel = lam * (t_arr - np.repeat(t0, t_counts))
            if float(rel[seg_ends - 1].max()) * -math.log(a) > 600.0:
                for r in traj:
                    slot = int(slots[r])
                    indices = order[starts[r] : starts[r] + counts[r]]
                    arr = chunk_times[indices]
                    trajectory = decay.absorb_trajectory(
                        float(density[slot]), float(last_update[slot]), arr
                    )
                    crossed = np.flatnonzero(trajectory >= self._thresholds_at(arr))
                    if crossed.size:
                        crossings[id_list[r]] = int(indices[int(crossed[0])])
                    density[slot] = float(trajectory[-1])
            else:
                # Segmented form of ``absorb_trajectory``: one global cumsum
                # with per-segment offsets replaces the per-cell calls.
                decayed = density[t_slots] * a ** (
                    lam * np.maximum(0.0, t0 - last_update[t_slots])
                )
                forward = a**rel
                cs = np.cumsum(a ** (-rel))
                offsets = np.concatenate(([0.0], cs[seg_starts[1:] - 1]))
                prefix = forward * (cs - np.repeat(offsets, t_counts))
                traj_density = np.repeat(decayed, t_counts) * forward + prefix
                crossed = traj_density >= self._thresholds_at(t_arr)
                pos = np.where(crossed, np.arange(t_arr.size), t_arr.size)
                first = np.minimum.reduceat(pos, seg_starts)
                for r, f in zip(traj[first < seg_ends], first[first < seg_ends]):
                    crossings[id_list[r]] = int(t_order[f])
                density[t_slots] = traj_density[seg_ends - 1]
        else:
            elapsed = np.maximum(0.0, last_times - last_update[slots])
            density[slots] = density[slots] * a ** (lam * elapsed) + increments

        # Inactive single-absorption cells: vectorised threshold check.
        if initialized:
            watch = np.flatnonzero(~in_tree & (counts == 1))
            if watch.size:
                over = density[slots[watch]] >= self._thresholds_at(last_times[watch])
                for r in watch[over]:
                    crossings[id_list[r]] = int(order[starts[r]])

        last_update[slots] = last_times
        arena.last_absorb[slots] = last_times
        arena.points_absorbed[slots] += counts

        chunk_len = chunk_times.shape[0]
        chunk_labels = labels[offset : offset + chunk_len]
        if any(label is not None for label in chunk_labels):
            self._tally_votes(chunk_labels, group_ids, slots, starts, counts, order)

        dirty = [cid for cid, flag in zip(id_list, in_tree) if flag]
        to_activate = sorted((crossing, cid) for cid, crossing in crossings.items())
        for _, cell_id in to_activate:
            cell = model.reservoir.pop(cell_id)
            model._inactive.remove(cell_id)
            cell.dependency = None
            cell.delta = math.inf
            tree.insert(cell)
            model._active.add(cell)
            dirty.append(cell_id)
        return dirty

    def _tally_votes(
        self,
        chunk_labels: List[Optional[int]],
        group_ids: np.ndarray,
        slots: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
        order: np.ndarray,
    ) -> None:
        """Accumulate label votes for one chunk's absorptions.

        Integer labels aggregate through one ``np.unique`` over encoded
        (group, label) pairs — a handful of dictionary updates per chunk
        instead of one per labelled point; non-integer labels fall back to
        the per-point loop.
        """
        arena = self.model._cells
        n = group_ids.shape[0]
        # Fully labelled integer chunks (the common case) convert in one C
        # pass; chunks with ``None`` holes get an explicit mask, and anything
        # non-integer falls through to the per-point loop.
        codes = np.asarray(chunk_labels)
        has_label = None
        if codes.dtype.kind in "iub":
            codes = codes.astype(np.int64, copy=False)
        else:
            filled = np.asarray(
                [-1 if label is None else label for label in chunk_labels]
            )
            if filled.dtype.kind in "iu":
                codes = filled.astype(np.int64, copy=False)
                has_label = np.asarray(
                    [label is not None for label in chunk_labels], dtype=bool
                )
            else:
                codes = None
        if codes is not None:
            picked = codes[order]
            group_of = np.repeat(np.arange(n), counts)
            if has_label is not None:
                keep = has_label[order]
                if not keep.any():
                    return
                group_of = group_of[keep]
                picked = picked[keep]
            low = int(picked.min())
            span = int(picked.max()) - low + 1
            if n * span >= np.iinfo(np.int64).max:  # pragma: no cover - huge labels
                codes = None
        if codes is not None:
            combos, tallies = np.unique(group_of * span + (picked - low), return_counts=True)
            for combo, tally in zip(combos.tolist(), tallies.tolist()):
                group, label = divmod(combo, span)
                label += low
                votes = arena.label_votes_of(int(slots[group]))
                votes[label] = votes.get(label, 0) + tally
            return
        votes_cache: List[Optional[Dict[int, int]]] = [None] * n
        group_of = np.repeat(np.arange(n), counts)
        for k, point in enumerate(order.tolist()):
            label = chunk_labels[point]
            if label is None:
                continue
            g = int(group_of[k])
            votes = votes_cache[g]
            if votes is None:
                votes = arena.label_votes_of(int(slots[g]))
                votes_cache[g] = votes
            votes[label] = votes.get(label, 0) + 1

    def _thresholds_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`EDMStream.active_threshold` over several times."""
        model = self.model
        decay = model.decay
        steady = decay.active_threshold(model.config.beta, model.config.stream_rate)
        if model._start_time is None:
            return np.full(times.shape, max(1.0, steady))
        elapsed = np.maximum(0.0, times - model._start_time)
        warmup = 1.0 - decay.a ** (decay.lam * elapsed)
        return np.maximum(1.0 + 1e-12, steady * warmup)

    def _repair_dependencies(self, dirty: List[int], now: float) -> None:
        """Bring the DP-Tree to the sequential path's fixed point (Eq. 7/9).

        One distance matrix between the dirty seeds and every active seed
        serves both directions of the Section 4.2 update: each dirty cell's
        own dependency is recomputed exactly (row-wise argmin over the cells
        that dominate it), and every other active cell is repointed to the
        nearest dirty cell that newly dominates it (column-wise minimum,
        strict improvement only) — the batch-granular analogue of the
        Theorem 1 density filter, since only dirty cells can have entered
        anyone's higher-density set since the last boundary.
        """
        model = self.model
        store = model._active
        tree = model.tree
        size = len(store)
        if size == 0:
            return
        ids = store.ids_array()
        densities = store.densities_at(now, model.decay)
        deltas = store.deltas()
        position_of = store.position_of
        positions = np.fromiter(
            (position_of(cell_id) for cell_id in dirty),
            dtype=np.int64,
            count=len(dirty),
        )
        matrix = store.cross_distances(positions)
        model.filter.stats.distance_computations += int(matrix.size - len(dirty))

        dirty_rho = densities[positions]
        dirty_ids = ids[positions]
        same = densities[None, :] == dirty_rho[:, None]
        higher = (densities[None, :] > dirty_rho[:, None]) | (
            same & (ids[None, :] < dirty_ids[:, None])
        )

        # Own dependencies of the dirty cells: exact canonical argmin over
        # dominators — nearest first, smallest cell id among exact ties
        # (mirrors ``EDMStream._recompute_dependency``).  The tie-break is
        # one whole-matrix select: among entries at the row minimum, take
        # the smallest id.
        id_max = np.iinfo(np.int64).max
        candidates = np.where(higher, matrix, np.inf)
        best_distance = np.min(candidates, axis=1)
        best_finite = np.isfinite(best_distance)
        best_ids = np.min(
            np.where(candidates == best_distance[:, None], ids[None, :], id_max),
            axis=1,
        )
        # Whole-array write-back: dependency ids and distances go straight
        # into the arena columns; only links whose parent actually moved need
        # the per-cell children-set fix-up in the DP-Tree.
        arena = model._cells
        dirty_slots = store.slots()[positions]
        new_dep = np.where(best_finite, best_ids, -1)
        new_delta = best_distance
        old_dep = arena.dep[dirty_slots]
        old_delta = arena.delta[dirty_slots]
        model.filter.stats.dependency_changes += int(
            np.count_nonzero((new_dep != old_dep) | (new_delta != old_delta))
        )
        arena.dep[dirty_slots] = new_dep
        arena.delta[dirty_slots] = new_delta
        for row in np.flatnonzero(new_dep != old_dep):
            old = int(old_dep[row])
            new = int(new_dep[row])
            tree.relink_parent(
                dirty[row],
                None if old == -1 else old,
                None if new == -1 else new,
            )

        # Other active cells: the dirty cells are the only possible new
        # entrants to their higher-density sets, so the canonical column
        # minimum against the current (δ, dependency id) finds every
        # required repoint (mirrors ``EDMStream._lex_improves``).
        if size > 1:
            dominated = (densities[None, :] < dirty_rho[:, None]) | (
                same & (ids[None, :] > dirty_ids[:, None])
            )
            entrants = np.where(dominated, matrix, np.inf)
            entrant_distance = np.min(entrants, axis=0)
            improvable = entrant_distance <= deltas
            improvable &= np.isfinite(entrant_distance)
            improvable[positions] = False
            columns = np.flatnonzero(improvable)
            if columns.size:
                sub = entrants[:, columns]
                parents = np.min(
                    np.where(
                        sub == entrant_distance[columns][None, :],
                        dirty_ids[:, None],
                        id_max,
                    ),
                    axis=0,
                )
                # Vectorised ``EDMStream._lex_improves``: strictly closer, or
                # equally close with a smaller parent id than the current
                # dependency (no current dependency loses every tie).
                col_slots = store.slots()[columns]
                col_delta = entrant_distance[columns]
                cur_delta = deltas[columns]
                cur_dep = arena.dep[col_slots]
                improves = (col_delta < cur_delta) | (
                    (col_delta == cur_delta) & ((cur_dep == -1) | (parents < cur_dep))
                )
                winners = np.flatnonzero(improves)
                model.filter.stats.dependency_changes += int(winners.size)
                arena.dep[col_slots[winners]] = parents[winners]
                arena.delta[col_slots[winners]] = col_delta[winners]
                for w in winners:
                    old = int(cur_dep[w])
                    tree.relink_parent(
                        int(ids[columns[w]]),
                        None if old == -1 else old,
                        int(parents[w]),
                    )
