"""Micro-batch ingestion for EDMStream.

:class:`BatchIngestor` processes a stream in micro-batches while producing
the same cell populations and cluster partitions as the per-point
:meth:`~repro.core.edmstream.EDMStream.learn_one` loop.  The speed-up comes
from three observations about the per-point work of Section 4:

1. **Assignment is a pure nearest-seed query.**  Which cell absorbs a point
   depends only on the set of seeds (seeds never move, Definition 4), so the
   point→seed distances of a whole batch can be computed as one vectorised
   matrix operation against the :class:`~repro.core.cellstore.CellStore`
   seed matrix.  Points that fall outside every existing cell are replayed
   against the (few) seeds created earlier in the same batch.

2. **Density updates compose.**  A cell absorbing ``k`` points inside a
   batch ends at ``ρ·a^{λΔ} + Σ a^{λ(t_k - t_i)}`` (Equation 8 applied ``k``
   times), which :meth:`~repro.core.decay.DecayModel.batch_absorb` evaluates
   once per (cell, batch) — with the closed-form geometric sum for evenly
   spaced arrivals.

3. **Dependencies depend only on the final density order.**  Pure decay
   preserves the relative density order of any two cells (both shrink by
   the same factor per unit time), so within a batch the order changes only
   at absorptions and the set of higher-density cells seen by a non-absorbing
   cell can only gain members.  Deferring the Theorem 1 / Theorem 2 filtered
   updates to the batch boundary therefore reaches the same fixed point: the
   "dirty" cells (absorbers and newly activated cells) get one exact
   dependency recomputation each, and every other active cell only needs to
   be checked against the dirty cells that now dominate it — one distance
   matrix per batch instead of one filtered pass per point.

Periodic work (decay sweeps, τ re-optimisation, evolution snapshots) and the
initial DP-Tree construction fire at stream-time boundaries, so batches are
split into *chunks* at exactly the points where the sequential path would
have triggered them; the model's own maintenance code then runs on identical
state.

Equivalence caveats: (1) *tie-breaking* — both paths share the canonical
rules (nearest seed / dominator with the smallest cell id wins exact
distance ties, density ties order by id), so exact ties resolve
identically; (2) *float rounding* — a multi-absorption batch evaluates the
same Equation 8 quantity through one closed-form sum instead of per-point
steps, so densities agree to ~1e-12 relative rather than bit-for-bit, and
a density comparison sitting within one ulp of a threshold (activation,
dominance) can in principle resolve differently.  Away from such
knife-edges the two paths produce identical cell populations and
partitions, which ``tests/test_batch_ingest.py`` enforces on numeric,
drifting and Jaccard streams.
"""

from __future__ import annotations

import math
import time as _time
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cell import ClusterCell
from repro.distance.metrics import pairwise_euclidean
from repro.streams.point import StreamPoint

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.edmstream import EDMStream

#: Chunk boundary kinds produced by the trigger scan.
_INIT = "init"
_PERIODIC = "periodic"


class BatchIngestor:
    """Ingest micro-batches of stream points into an :class:`EDMStream`.

    Parameters
    ----------
    model:
        The model to feed.  The ingestor is a *friend* of the model: it
        manipulates the same stores, reservoir and DP-Tree the sequential
        path does, through the model's own maintenance entry points.
    batch_size:
        Number of points gathered before a micro-batch is flushed.
    """

    def __init__(self, model: "EDMStream", batch_size: int = 256) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.batch_size = batch_size

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def ingest(self, stream: Iterable[StreamPoint]) -> List[int]:
        """Ingest an iterable of stream points; returns absorbing cell ids."""
        assigned: List[int] = []
        batch: List[StreamPoint] = []
        for point in stream:
            batch.append(point)
            if len(batch) >= self.batch_size:
                assigned.extend(self.ingest_batch(batch))
                batch.clear()
        if batch:
            assigned.extend(self.ingest_batch(batch))
        return assigned

    def ingest_batch(self, points: Sequence[StreamPoint]) -> List[int]:
        """Ingest one micro-batch; returns the absorbing cell id per point."""
        if not points:
            return []
        model = self.model
        started = _time.perf_counter()

        if model._numeric:
            # One C-level conversion for the whole batch; cells created from
            # these rows get the same tuple-of-floats seeds the sequential
            # path builds via ``_prepare``.
            values: Any = np.asarray([point.values for point in points], dtype=float)
        else:
            values = [point.values for point in points]
        times, labels = self._timeline(points)
        if model._start_time is None:
            first = points[0].timestamp
            model._start_time = float(times[0] if first is None else first)

        assigned: List[int] = [0] * len(points)
        start = 0
        for end, kind in self._chunk_plan(times):
            self._process_chunk(values, times, labels, start, end, assigned)
            now = float(times[end])
            if kind == _INIT:
                model._initialize(now)
            elif model._initialized:
                model._periodic_work(now)
            start = end + 1

        model._epoch += 1  # invalidate published snapshots (serving side)
        model.total_learn_seconds += _time.perf_counter() - started
        return assigned

    # ------------------------------------------------------------------ #
    # timeline and chunk planning
    # ------------------------------------------------------------------ #
    def _timeline(self, points: Sequence[StreamPoint]) -> Tuple[np.ndarray, List[Optional[int]]]:
        """Per-point observation times (running max, as ``learn_one`` sees)."""
        model = self.model
        now = model._now
        labels = [point.label for point in points]
        raw = [point.timestamp for point in points]
        if None not in raw:
            times = np.asarray(raw, dtype=float)
            if times[0] <= now or np.any(np.diff(times) < 0.0):
                np.maximum.accumulate(np.maximum(times, now), out=times)
            return times, labels
        n_points = model._n_points
        rate = model.config.stream_rate
        times = np.empty(len(points), dtype=float)
        for i, timestamp in enumerate(raw):
            if timestamp is None:
                timestamp = now + 1.0 / rate if n_points else 0.0
            if timestamp > now:
                now = timestamp
            times[i] = now
            n_points += 1
        return times, labels

    def _chunk_plan(self, times: np.ndarray) -> List[Tuple[int, Optional[str]]]:
        """Split the batch where the sequential path would run boundary work.

        Returns ``(last_index, kind)`` pairs; ``kind`` is ``"init"`` when the
        initialisation threshold is reached at that point, ``"periodic"``
        when any maintenance / τ / snapshot trigger fires there, and ``None``
        for the trailing batch remainder.  The scan mirrors the trigger
        bookkeeping of ``learn_one`` so chunk boundaries land on exactly the
        points where the sequential path acts.
        """
        model = self.model
        config = model.config
        n_points = model._n_points
        initialized = model._initialized
        last_maintenance = model._last_maintenance
        last_tau = model._last_tau_opt
        last_snapshot = model._last_snapshot
        last_time = float(times[-1])
        if initialized and (
            last_time - last_maintenance < config.maintenance_interval
            and (not config.adaptive_tau or last_time - last_tau < config.tau_reoptimize_interval)
            and last_time - last_snapshot < config.snapshot_interval
        ):
            # Fast path: no trigger can fire anywhere in this batch.
            return [(times.shape[0] - 1, None)]
        plan: List[Tuple[int, Optional[str]]] = []
        for i in range(times.shape[0]):
            t = float(times[i])
            n_points += 1
            if not initialized:
                if n_points >= config.init_size:
                    plan.append((i, _INIT))
                    initialized = True
                    last_maintenance = last_tau = last_snapshot = t
                continue
            fired = False
            if t - last_maintenance >= config.maintenance_interval:
                last_maintenance = t
                fired = True
            if config.adaptive_tau and t - last_tau >= config.tau_reoptimize_interval:
                last_tau = t
                fired = True
            if t - last_snapshot >= config.snapshot_interval:
                last_snapshot = t
                fired = True
            if fired:
                plan.append((i, _PERIODIC))
        if not plan or plan[-1][0] != times.shape[0] - 1:
            plan.append((times.shape[0] - 1, None))
        return plan

    # ------------------------------------------------------------------ #
    # one chunk: assignment, absorption, activation, dependency repair
    # ------------------------------------------------------------------ #
    def _process_chunk(
        self,
        values: Any,
        times: np.ndarray,
        labels: List[Optional[int]],
        start: int,
        end: int,
        assigned: List[int],
    ) -> None:
        model = self.model
        chunk_values = values[start : end + 1]
        chunk_times = times[start : end + 1]
        model._n_points += len(chunk_values)
        model._now = float(chunk_times[-1])

        absorptions = self._assign_chunk(chunk_values, chunk_times, labels, start, assigned)
        dirty = self._apply_absorptions(absorptions, chunk_times, labels, start)
        if model._initialized and dirty:
            started = _time.perf_counter()
            self._repair_dependencies(dirty, float(chunk_times[-1]))
            model.dependency_update_seconds += _time.perf_counter() - started

    def _assign_chunk(
        self,
        chunk_values: Any,
        chunk_times: np.ndarray,
        labels: List[Optional[int]],
        offset: int,
        assigned: List[int],
    ) -> Dict[int, List[int]]:
        """Vectorised nearest-seed assignment for one chunk.

        Existing seeds are queried through one distance-matrix computation
        per store.  Each seed created inside the chunk updates the remaining
        points' best-new-seed distance with one vectorised pass, so later
        points of the same chunk can still be absorbed by it, exactly as in
        the sequential path.  Returns absorbed point indices (chunk-local)
        grouped per absorbing cell, in first-absorption order.
        """
        model = self.model
        radius = model.config.radius
        numeric = model._numeric
        metric = model._metric

        active_best, active_best_id = model._active.nearest_many(chunk_values, within=radius)
        inactive_best, inactive_best_id = model._inactive.nearest_many(chunk_values, within=radius)

        size = len(chunk_values)
        # Canonical combine of the two stores, vectorised across the chunk.
        if active_best is None:
            store_best, store_best_id = inactive_best, inactive_best_id
        elif inactive_best is None:
            store_best, store_best_id = active_best, active_best_id
        else:
            take = (inactive_best < active_best) | (
                (inactive_best == active_best) & (inactive_best_id < active_best_id)
            )
            store_best = np.where(take, inactive_best, active_best)
            store_best_id = np.where(take, inactive_best_id, active_best_id)

        absorptions: Dict[int, List[int]] = {}
        # Up to the first point that seeds a new cell, assignments depend
        # only on the pre-chunk stores and resolve without a Python loop —
        # in steady state that is the entire chunk.
        if store_best is None:
            first_create = 0
        else:
            outside = store_best > radius
            first_create = int(np.argmax(outside)) if outside.any() else size
        if first_create:
            prefix = store_best_id[:first_create]
            assigned[offset : offset + first_create] = prefix.tolist()
            unique_ids, inverse = np.unique(prefix, return_inverse=True)
            order = np.argsort(inverse, kind="stable")
            groups = np.split(order, np.cumsum(np.bincount(inverse))[:-1])
            for unique_id, group in zip(unique_ids, groups):
                absorptions[int(unique_id)] = group.tolist()
        if first_create >= size:
            return absorptions

        # Nearest chunk-created seed per point; strictly-smaller updates keep
        # the earliest-created (smallest-id) seed on exact ties, and since
        # chunk-created cells carry the largest ids overall, a tie against a
        # pre-existing seed also resolves canonically.  All chunk-internal
        # distances come from one lazily computed pairwise matrix.
        fresh_best = np.full(size, math.inf)
        fresh_id = np.zeros(size, dtype=np.int64)
        chunk_pairs: Optional[np.ndarray] = None

        for j in range(first_create, size):
            value = chunk_values[j]
            best_id: Optional[int] = None
            best_distance = math.inf
            if store_best is not None:
                best_id = int(store_best_id[j])
                best_distance = float(store_best[j])
            if fresh_best[j] < best_distance:
                best_id = int(fresh_id[j])
                best_distance = float(fresh_best[j])

            if best_id is not None and best_distance <= radius:
                absorptions.setdefault(best_id, []).append(j)
                assigned[offset + j] = best_id
                continue

            cell = ClusterCell(
                seed=tuple(float(v) for v in value) if numeric else value,
                density=1.0,
                created_at=float(chunk_times[j]),
                last_update=float(chunk_times[j]),
                last_absorb=float(chunk_times[j]),
            )
            label = labels[offset + j]
            if label is not None:
                cell.label_votes[label] = 1
            model.reservoir.add(cell)
            model._inactive.add(cell)
            assigned[offset + j] = cell.cell_id
            if j + 1 >= size:
                continue
            if numeric:
                # Same shared kernel as the stores, for bit-identical
                # distances to what later store queries will report.
                if chunk_pairs is None:
                    chunk_pairs = pairwise_euclidean(chunk_values, chunk_values)
                distances = chunk_pairs[j + 1 :, j]
            else:
                distances = np.asarray(
                    [metric(chunk_values[i], value) for i in range(j + 1, size)],
                    dtype=float,
                )
            better = distances < fresh_best[j + 1 :]
            fresh_best[j + 1 :][better] = distances[better]
            fresh_id[j + 1 :][better] = cell.cell_id
        return absorptions

    def _apply_absorptions(
        self,
        absorptions: Dict[int, List[int]],
        chunk_times: np.ndarray,
        labels: List[Optional[int]],
        offset: int,
    ) -> List[int]:
        """Apply per-(cell, chunk) density updates; returns the dirty cells.

        Dirty cells are the active absorbers plus the inactive cells whose
        density trajectory crossed the activation threshold inside the chunk
        (activated here, in crossing order, mirroring the sequential path's
        emergence handling).
        """
        model = self.model
        decay = model.decay
        initialized = model._initialized
        dirty: List[int] = []
        to_activate: List[Tuple[int, int]] = []
        for cell_id, indices in absorptions.items():
            in_tree = cell_id in model.tree
            crossing: Optional[int] = None
            if len(indices) == 1:
                # Scalar fast path: one absorption is exactly Equation 8 (and
                # bit-identical to ``ClusterCell.absorb``).
                last = float(chunk_times[indices[0]])
                cell = model.tree.get(cell_id) if in_tree else model.reservoir.get(cell_id)
                cell.density = (
                    decay.decay_density(cell.density, max(0.0, last - cell.last_update)) + 1.0
                )
                if not in_tree and initialized and cell.density >= model.active_threshold(last):
                    crossing = indices[0]
            else:
                arrivals = chunk_times[indices]
                last = float(arrivals[-1])
                if in_tree:
                    cell = model.tree.get(cell_id)
                    cell.density = float(
                        decay.batch_absorb(cell.density, cell.last_update, arrivals)
                    )
                else:
                    cell = model.reservoir.get(cell_id)
                    if initialized:
                        trajectory = decay.absorb_trajectory(
                            cell.density, cell.last_update, arrivals
                        )
                        crossed = np.flatnonzero(trajectory >= self._thresholds_at(arrivals))
                        if crossed.size:
                            crossing = indices[int(crossed[0])]
                        cell.density = float(trajectory[-1])
                    else:
                        cell.density = float(
                            decay.batch_absorb(cell.density, cell.last_update, arrivals)
                        )
            cell.last_update = last
            cell.last_absorb = last
            cell.points_absorbed += len(indices)
            for index in indices:
                label = labels[offset + index]
                if label is not None:
                    cell.label_votes[label] = cell.label_votes.get(label, 0) + 1
            if in_tree:
                model._active.update_density(cell_id, cell.density, cell.last_update)
                dirty.append(cell_id)
            else:
                model._inactive.update_density(cell_id, cell.density, cell.last_update)
                if crossing is not None:
                    to_activate.append((crossing, cell_id))

        to_activate.sort()
        for _, cell_id in to_activate:
            cell = model.reservoir.pop(cell_id)
            model._inactive.remove(cell_id)
            cell.dependency = None
            cell.delta = math.inf
            model.tree.insert(cell)
            model._active.add(cell)
            dirty.append(cell_id)
        return dirty

    def _thresholds_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`EDMStream.active_threshold` over several times."""
        model = self.model
        decay = model.decay
        steady = decay.active_threshold(model.config.beta, model.config.stream_rate)
        if model._start_time is None:
            return np.full(times.shape, max(1.0, steady))
        elapsed = np.maximum(0.0, times - model._start_time)
        warmup = 1.0 - decay.a ** (decay.lam * elapsed)
        return np.maximum(1.0 + 1e-12, steady * warmup)

    def _repair_dependencies(self, dirty: List[int], now: float) -> None:
        """Bring the DP-Tree to the sequential path's fixed point (Eq. 7/9).

        One distance matrix between the dirty seeds and every active seed
        serves both directions of the Section 4.2 update: each dirty cell's
        own dependency is recomputed exactly (row-wise argmin over the cells
        that dominate it), and every other active cell is repointed to the
        nearest dirty cell that newly dominates it (column-wise minimum,
        strict improvement only) — the batch-granular analogue of the
        Theorem 1 density filter, since only dirty cells can have entered
        anyone's higher-density set since the last boundary.
        """
        model = self.model
        store = model._active
        tree = model.tree
        size = len(store)
        if size == 0:
            return
        ids = np.asarray(store.ids())
        densities = store.densities_at(now, model.decay)
        deltas = store.deltas()
        positions = np.asarray([store.position_of(cell_id) for cell_id in dirty])
        matrix = store.cross_distances(positions)
        model.filter.stats.distance_computations += int(matrix.size - len(dirty))

        dirty_rho = densities[positions]
        dirty_ids = ids[positions]
        same = densities[None, :] == dirty_rho[:, None]
        higher = (densities[None, :] > dirty_rho[:, None]) | (
            same & (ids[None, :] < dirty_ids[:, None])
        )

        # Own dependencies of the dirty cells: exact canonical argmin over
        # dominators — nearest first, smallest cell id among exact ties
        # (mirrors ``EDMStream._recompute_dependency``).
        candidates = np.where(higher, matrix, np.inf)
        best_distance = np.min(candidates, axis=1)
        for row, cell_id in enumerate(dirty):
            cell = tree.get(cell_id)
            if np.isinf(best_distance[row]):
                dependency, delta = None, math.inf
            else:
                delta = float(best_distance[row])
                tied = np.flatnonzero(candidates[row] == best_distance[row])
                dependency = int(np.min(ids[tied]))
            if dependency != cell.dependency or delta != cell.delta:
                model.filter.stats.dependency_changes += 1
            tree.set_dependency(cell_id, dependency, delta)
            store.update_delta(cell_id, delta)

        # Other active cells: the dirty cells are the only possible new
        # entrants to their higher-density sets, so the canonical column
        # minimum against the current (δ, dependency id) finds every
        # required repoint (mirrors ``EDMStream._lex_improves``).
        if size > 1:
            dominated = (densities[None, :] < dirty_rho[:, None]) | (
                same & (ids[None, :] > dirty_ids[:, None])
            )
            entrants = np.where(dominated, matrix, np.inf)
            entrant_distance = np.min(entrants, axis=0)
            improvable = entrant_distance <= deltas
            improvable &= np.isfinite(entrant_distance)
            improvable[positions] = False
            for column in np.flatnonzero(improvable):
                delta = float(entrant_distance[column])
                tied = np.flatnonzero(entrants[:, column] == entrant_distance[column])
                parent = int(np.min(dirty_ids[tied]))
                cell_id = int(ids[column])
                if not model._lex_improves(delta, parent, cell_id, float(deltas[column])):
                    continue
                tree.set_dependency(cell_id, parent, delta)
                store.update_delta(cell_id, delta)
                model.filter.stats.dependency_changes += 1
