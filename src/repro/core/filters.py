"""Dependency-update filtering (Section 4.2, Theorems 1 and 2).

When a cluster-cell ``c'`` absorbs a point, in principle every other cell's
dependency could change.  The two theorems give cheap sufficient conditions
under which a cell ``c``'s dependency provably does not change, so the
update can be skipped:

* **Density filter (Theorem 1)** — if ``ρ_c < ρ_c'`` before the absorption,
  or ``ρ_c ≥ ρ_c'`` after it, the set of higher-density cells seen by ``c``
  is unchanged with respect to ``c'``, hence its dependency is unchanged.
* **Triangle-inequality filter (Theorem 2)** — if
  ``| |p, s_c| − |p, s_c'| | > δ_c`` then ``|s_c, s_c'| > δ_c`` and ``c'``
  cannot replace ``c``'s current dependency.  The two point-to-seed
  distances are already known from the assignment step, so this check is
  almost free.

:class:`FilterStatistics` counts how many updates each filter avoided, which
feeds the ablation experiment of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FilterStatistics:
    """Counters describing the work done (and avoided) during dependency updates."""

    candidates: int = 0
    density_filtered: int = 0
    triangle_filtered: int = 0
    distance_computations: int = 0
    dependency_changes: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.candidates = 0
        self.density_filtered = 0
        self.triangle_filtered = 0
        self.distance_computations = 0
        self.dependency_changes = 0

    @property
    def filtered(self) -> int:
        """Total number of candidate updates skipped by either filter."""
        return self.density_filtered + self.triangle_filtered

    @property
    def filter_rate(self) -> float:
        """Fraction of candidate updates that were skipped (0 when no candidates)."""
        if self.candidates == 0:
            return 0.0
        return self.filtered / self.candidates

    def as_dict(self) -> dict:
        """Plain-dict view for reporting."""
        return {
            "candidates": self.candidates,
            "density_filtered": self.density_filtered,
            "triangle_filtered": self.triangle_filtered,
            "distance_computations": self.distance_computations,
            "dependency_changes": self.dependency_changes,
            "filter_rate": self.filter_rate,
        }


@dataclass
class DependencyFilter:
    """Applies the Theorem 1 / Theorem 2 checks for one absorption event.

    A fresh instance (or :meth:`begin_event`) is used per absorption because
    the checks depend on the absorbing cell's density before and after the
    event and on the absorbed point's distances to the candidate seeds.
    """

    enable_density_filter: bool = True
    enable_triangle_filter: bool = True
    stats: FilterStatistics = field(default_factory=FilterStatistics)

    # Densities of the absorbing cell before/after the absorption, set per event.
    _rho_absorber_before: float = 0.0
    _rho_absorber_after: float = 0.0
    _point_to_absorber: float = 0.0

    def begin_event(
        self,
        rho_absorber_before: float,
        rho_absorber_after: float,
        point_to_absorber_distance: float,
    ) -> None:
        """Record the state of the absorbing cell ``c'`` for this event."""
        self._rho_absorber_before = rho_absorber_before
        self._rho_absorber_after = rho_absorber_after
        self._point_to_absorber = point_to_absorber_distance

    def skip_by_density(self, rho_candidate: float) -> bool:
        """Theorem 1: True if the candidate's dependency provably cannot change."""
        if not self.enable_density_filter:
            return False
        return (
            rho_candidate < self._rho_absorber_before
            or rho_candidate >= self._rho_absorber_after
        )

    def skip_by_triangle(self, point_to_candidate: float, candidate_delta: float) -> bool:
        """Theorem 2: True if ``c'`` provably cannot become the candidate's dependency."""
        if not self.enable_triangle_filter:
            return False
        if candidate_delta == float("inf"):
            # A root has no dependent distance to protect; never filter it out.
            return False
        return abs(point_to_candidate - self._point_to_absorber) > candidate_delta

    def should_update(
        self,
        rho_candidate: float,
        point_to_candidate: float,
        candidate_delta: float,
    ) -> bool:
        """Combined check; updates the statistics counters.

        Returns True when the candidate's dependency must be re-examined
        (i.e. neither filter could rule the change out).
        """
        self.stats.candidates += 1
        if self.skip_by_density(rho_candidate):
            self.stats.density_filtered += 1
            return False
        if self.skip_by_triangle(point_to_candidate, candidate_delta):
            self.stats.triangle_filtered += 1
            return False
        return True
