"""Vectorised cache over a set of cluster-cells.

EDMStream's per-point work — nearest-seed assignment and the (filtered)
dependency update — touches every cell of one of the two populations
(active cells in the DP-Tree, inactive cells in the outlier reservoir).
Doing that with per-cell Python calls is prohibitively slow for streams of
hundreds of thousands of points, so :class:`CellStore` keeps the seeds,
densities, last-update times and dependent distances of a population in
parallel ``numpy`` arrays and answers the bulk queries vectorised.

The canonical state always lives on the :class:`~repro.core.cell.ClusterCell`
objects; the store is a write-through cache.  For non-numeric data (token
sets under the Jaccard metric) the store transparently falls back to pure
Python loops over the same API.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cell import ClusterCell
from repro.core.decay import DecayModel

_INITIAL_CAPACITY = 64


class CellStore:
    """Append-friendly vectorised view over a population of cluster-cells."""

    def __init__(self, numeric: bool = True, metric: Optional[Callable[[Any, Any], float]] = None) -> None:
        if not numeric and metric is None:
            raise ValueError("a pairwise metric is required for non-numeric stores")
        self._numeric = numeric
        self._metric = metric
        self._cells: Dict[int, ClusterCell] = {}
        self._index: Dict[int, int] = {}
        self._ids: List[int] = []
        self._dimension: Optional[int] = None
        self._capacity = _INITIAL_CAPACITY
        self._size = 0
        self._seeds: Optional[np.ndarray] = None
        self._density = np.zeros(self._capacity, dtype=float)
        self._last_update = np.zeros(self._capacity, dtype=float)
        self._delta = np.full(self._capacity, np.inf, dtype=float)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    def __contains__(self, cell_id: int) -> bool:
        return cell_id in self._index

    def cells(self) -> Iterable[ClusterCell]:
        """Iterate over the stored cells in insertion (array) order."""
        return (self._cells[cid] for cid in self._ids)

    def ids(self) -> List[int]:
        """Cell ids in array order (a copy)."""
        return list(self._ids)

    def get(self, cell_id: int) -> ClusterCell:
        """Return a stored cell by id."""
        return self._cells[cell_id]

    @property
    def numeric(self) -> bool:
        """Whether the store holds numeric seeds (and can vectorise queries)."""
        return self._numeric

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def _grow(self, minimum: int) -> None:
        new_capacity = max(self._capacity * 2, minimum)
        if self._numeric and self._seeds is not None:
            seeds = np.zeros((new_capacity, self._seeds.shape[1]), dtype=float)
            seeds[: self._size] = self._seeds[: self._size]
            self._seeds = seeds
        for name in ("_density", "_last_update", "_delta"):
            old = getattr(self, name)
            new = np.full(new_capacity, np.inf if name == "_delta" else 0.0, dtype=float)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)
        self._capacity = new_capacity

    def add(self, cell: ClusterCell) -> None:
        """Add a cell; raises ``KeyError`` if its id is already stored."""
        if cell.cell_id in self._index:
            raise KeyError(f"cell {cell.cell_id} already in store")
        if self._size >= self._capacity:
            self._grow(self._size + 1)
        position = self._size
        if self._numeric:
            seed = np.asarray(cell.seed, dtype=float)
            if self._dimension is None:
                self._dimension = seed.shape[0]
                self._seeds = np.zeros((self._capacity, self._dimension), dtype=float)
            elif seed.shape[0] != self._dimension:
                raise ValueError(
                    f"seed dimension {seed.shape[0]} does not match store dimension {self._dimension}"
                )
            if self._seeds.shape[0] < self._capacity:
                grown = np.zeros((self._capacity, self._dimension), dtype=float)
                grown[: self._size] = self._seeds[: self._size]
                self._seeds = grown
            self._seeds[position] = seed
        self._cells[cell.cell_id] = cell
        self._index[cell.cell_id] = position
        self._ids.append(cell.cell_id)
        self._density[position] = cell.density
        self._last_update[position] = cell.last_update
        self._delta[position] = cell.delta
        self._size += 1

    def remove(self, cell_id: int) -> ClusterCell:
        """Remove a cell by id (swap-with-last compaction); returns the cell."""
        if cell_id not in self._index:
            raise KeyError(f"cell {cell_id} not in store")
        position = self._index.pop(cell_id)
        cell = self._cells.pop(cell_id)
        last = self._size - 1
        if position != last:
            moved_id = self._ids[last]
            self._ids[position] = moved_id
            self._index[moved_id] = position
            self._density[position] = self._density[last]
            self._last_update[position] = self._last_update[last]
            self._delta[position] = self._delta[last]
            if self._numeric and self._seeds is not None:
                self._seeds[position] = self._seeds[last]
        self._ids.pop()
        self._size -= 1
        return cell

    # ------------------------------------------------------------------ #
    # write-through updates
    # ------------------------------------------------------------------ #
    def update_density(self, cell_id: int, density: float, last_update: float) -> None:
        """Mirror a cell's density/last-update change into the arrays."""
        position = self._index[cell_id]
        self._density[position] = density
        self._last_update[position] = last_update

    def update_delta(self, cell_id: int, delta: float) -> None:
        """Mirror a cell's dependent-distance change into the arrays."""
        position = self._index[cell_id]
        self._delta[position] = delta

    def sync(self, cell: ClusterCell) -> None:
        """Mirror all cached fields of a cell into the arrays."""
        position = self._index[cell.cell_id]
        self._density[position] = cell.density
        self._last_update[position] = cell.last_update
        self._delta[position] = cell.delta

    # ------------------------------------------------------------------ #
    # bulk queries
    # ------------------------------------------------------------------ #
    def densities_at(self, now: float, decay: DecayModel) -> np.ndarray:
        """Timely densities of every stored cell at time ``now`` (array order)."""
        if self._size == 0:
            return np.empty(0, dtype=float)
        elapsed = np.maximum(0.0, now - self._last_update[: self._size])
        factor = decay.rate ** elapsed
        return self._density[: self._size] * factor

    def deltas(self) -> np.ndarray:
        """Dependent distances of every stored cell (array order)."""
        return self._delta[: self._size].copy()

    def distances_to(self, point: Any) -> np.ndarray:
        """Distances from ``point`` to every stored seed (array order)."""
        if self._size == 0:
            return np.empty(0, dtype=float)
        if self._numeric and self._seeds is not None:
            query = np.asarray(point, dtype=float)
            diffs = self._seeds[: self._size] - query
            return np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        metric = self._metric
        return np.asarray(
            [metric(point, self._cells[cid].seed) for cid in self._ids], dtype=float
        )

    def seed_distances(self, cell_id: int) -> np.ndarray:
        """Distances from one stored cell's seed to every stored seed."""
        return self.distances_to(self._cells[cell_id].seed)

    def distances_to_subset(self, point: Any, positions: np.ndarray) -> np.ndarray:
        """Distances from ``point`` to the seeds at the given array positions.

        Computing only the needed rows keeps the cost of a dependency update
        proportional to the number of candidates that survived the filters,
        which is what makes the Figure 11 ablation meaningful.
        """
        if len(positions) == 0:
            return np.empty(0, dtype=float)
        if self._numeric and self._seeds is not None:
            query = np.asarray(point, dtype=float)
            rows = self._seeds[positions]
            diffs = rows - query
            return np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        metric = self._metric
        return np.asarray(
            [metric(point, self._cells[self._ids[int(p)]].seed) for p in positions],
            dtype=float,
        )

    def nearest(self, point: Any) -> Optional[Tuple[int, float]]:
        """Nearest stored cell to ``point`` as ``(cell_id, distance)``."""
        if self._size == 0:
            return None
        distances = self.distances_to(point)
        position = int(np.argmin(distances))
        return self._ids[position], float(distances[position])

    def position_of(self, cell_id: int) -> int:
        """Array position of a cell id (valid until the next add/remove)."""
        return self._index[cell_id]

    def id_at(self, position: int) -> int:
        """Cell id stored at an array position."""
        return self._ids[position]

    def validate(self, decay: Optional[DecayModel] = None) -> None:
        """Check cache coherence against the canonical cell objects (tests only)."""
        assert self._size == len(self._ids) == len(self._index) == len(self._cells)
        for cid, position in self._index.items():
            cell = self._cells[cid]
            assert self._ids[position] == cid
            assert self._density[position] == cell.density, (
                f"density cache stale for cell {cid}"
            )
            assert self._last_update[position] == cell.last_update
            cached_delta = self._delta[position]
            assert cached_delta == cell.delta or (
                np.isinf(cached_delta) and np.isinf(cell.delta)
            ), f"delta cache stale for cell {cid}"
