"""Vectorised cache over a set of cluster-cells.

EDMStream's per-point work — nearest-seed assignment and the (filtered)
dependency update — touches every cell of one of the two populations
(active cells in the DP-Tree, inactive cells in the outlier reservoir).
Doing that with per-cell Python calls is prohibitively slow for streams of
hundreds of thousands of points, so :class:`CellStore` keeps the seeds,
densities, last-update times and dependent distances of a population in
parallel ``numpy`` arrays and answers the bulk queries vectorised.

The canonical state always lives on the :class:`~repro.core.cell.ClusterCell`
objects; the store is a write-through cache.  For non-numeric data (token
sets under the Jaccard metric) the store transparently falls back to pure
Python loops over the same API.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cell import ClusterCell
from repro.core.decay import DecayModel
from repro.distance.metrics import pairwise_euclidean

_INITIAL_CAPACITY = 64


class CellStore:
    """Append-friendly vectorised view over a population of cluster-cells."""

    #: Store size above which :meth:`nearest_many` with ``within`` switches
    #: to the norm-window pruned scan (class attribute so tests can lower it
    #: and exercise the pruned path on small streams).
    prune_threshold = 512

    def __init__(self, numeric: bool = True, metric: Optional[Callable[[Any, Any], float]] = None) -> None:
        if not numeric and metric is None:
            raise ValueError("a pairwise metric is required for non-numeric stores")
        self._numeric = numeric
        self._metric = metric
        self._cells: Dict[int, ClusterCell] = {}
        self._index: Dict[int, int] = {}
        self._ids: List[int] = []
        self._dimension: Optional[int] = None
        self._capacity = _INITIAL_CAPACITY
        self._size = 0
        self._seeds: Optional[np.ndarray] = None
        self._norms = np.zeros(self._capacity, dtype=float)
        self._density = np.zeros(self._capacity, dtype=float)
        self._last_update = np.zeros(self._capacity, dtype=float)
        self._delta = np.full(self._capacity, np.inf, dtype=float)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    def __contains__(self, cell_id: int) -> bool:
        return cell_id in self._index

    def cells(self) -> Iterable[ClusterCell]:
        """Iterate over the stored cells in insertion (array) order."""
        return (self._cells[cid] for cid in self._ids)

    def ids(self) -> List[int]:
        """Cell ids in array order (a copy)."""
        return list(self._ids)

    def get(self, cell_id: int) -> ClusterCell:
        """Return a stored cell by id."""
        return self._cells[cell_id]

    @property
    def numeric(self) -> bool:
        """Whether the store holds numeric seeds (and can vectorise queries)."""
        return self._numeric

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def _grow(self, minimum: int) -> None:
        new_capacity = max(self._capacity * 2, minimum)
        if self._numeric and self._seeds is not None:
            seeds = np.zeros((new_capacity, self._seeds.shape[1]), dtype=float)
            seeds[: self._size] = self._seeds[: self._size]
            self._seeds = seeds
        for name in ("_norms", "_density", "_last_update", "_delta"):
            old = getattr(self, name)
            new = np.full(new_capacity, np.inf if name == "_delta" else 0.0, dtype=float)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)
        self._capacity = new_capacity

    def add(self, cell: ClusterCell) -> None:
        """Add a cell; raises ``KeyError`` if its id is already stored."""
        if cell.cell_id in self._index:
            raise KeyError(f"cell {cell.cell_id} already in store")
        if self._size >= self._capacity:
            self._grow(self._size + 1)
        position = self._size
        if self._numeric:
            seed = np.asarray(cell.seed, dtype=float)
            if self._dimension is None:
                self._dimension = seed.shape[0]
                self._seeds = np.zeros((self._capacity, self._dimension), dtype=float)
            elif seed.shape[0] != self._dimension:
                raise ValueError(
                    f"seed dimension {seed.shape[0]} does not match store dimension {self._dimension}"
                )
            if self._seeds.shape[0] < self._capacity:
                grown = np.zeros((self._capacity, self._dimension), dtype=float)
                grown[: self._size] = self._seeds[: self._size]
                self._seeds = grown
            self._seeds[position] = seed
            self._norms[position] = np.einsum("i,i->", seed, seed)
        self._cells[cell.cell_id] = cell
        self._index[cell.cell_id] = position
        self._ids.append(cell.cell_id)
        self._density[position] = cell.density
        self._last_update[position] = cell.last_update
        self._delta[position] = cell.delta
        self._size += 1

    def remove(self, cell_id: int) -> ClusterCell:
        """Remove a cell by id (swap-with-last compaction); returns the cell."""
        if cell_id not in self._index:
            raise KeyError(f"cell {cell_id} not in store")
        position = self._index.pop(cell_id)
        cell = self._cells.pop(cell_id)
        last = self._size - 1
        if position != last:
            moved_id = self._ids[last]
            self._ids[position] = moved_id
            self._index[moved_id] = position
            self._density[position] = self._density[last]
            self._last_update[position] = self._last_update[last]
            self._delta[position] = self._delta[last]
            if self._numeric and self._seeds is not None:
                self._seeds[position] = self._seeds[last]
                self._norms[position] = self._norms[last]
        self._ids.pop()
        self._size -= 1
        return cell

    # ------------------------------------------------------------------ #
    # write-through updates
    # ------------------------------------------------------------------ #
    def update_density(self, cell_id: int, density: float, last_update: float) -> None:
        """Mirror a cell's density/last-update change into the arrays."""
        position = self._index[cell_id]
        self._density[position] = density
        self._last_update[position] = last_update

    def update_delta(self, cell_id: int, delta: float) -> None:
        """Mirror a cell's dependent-distance change into the arrays."""
        position = self._index[cell_id]
        self._delta[position] = delta

    def sync(self, cell: ClusterCell) -> None:
        """Mirror all cached fields of a cell into the arrays."""
        position = self._index[cell.cell_id]
        self._density[position] = cell.density
        self._last_update[position] = cell.last_update
        self._delta[position] = cell.delta

    # ------------------------------------------------------------------ #
    # bulk queries
    # ------------------------------------------------------------------ #
    def densities_at(self, now: float, decay: DecayModel) -> np.ndarray:
        """Timely densities of every stored cell at time ``now`` (array order)."""
        if self._size == 0:
            return np.empty(0, dtype=float)
        elapsed = np.maximum(0.0, now - self._last_update[: self._size])
        factor = decay.rate ** elapsed
        return self._density[: self._size] * factor

    def deltas(self) -> np.ndarray:
        """Dependent distances of every stored cell (array order)."""
        return self._delta[: self._size].copy()

    def seed_matrix(self) -> Optional[np.ndarray]:
        """A copy of the numeric seed matrix in array order.

        ``None`` for non-numeric stores; an empty ``(0, 0)`` matrix when no
        cells are stored yet.  This is what snapshot publication freezes, so
        the serving side never aliases the live arrays.
        """
        if not self._numeric:
            return None
        if self._seeds is None or self._size == 0:
            return np.empty((0, self._dimension or 0), dtype=float)
        return self._seeds[: self._size].copy()

    def distances_to(self, point: Any) -> np.ndarray:
        """Distances from ``point`` to every stored seed (array order)."""
        if self._size == 0:
            return np.empty(0, dtype=float)
        if self._numeric and self._seeds is not None:
            query = np.asarray(point, dtype=float).reshape(1, -1)
            return pairwise_euclidean(query, self._seeds[: self._size])[0]
        metric = self._metric
        return np.asarray(
            [metric(point, self._cells[cid].seed) for cid in self._ids], dtype=float
        )

    def seed_distances(self, cell_id: int) -> np.ndarray:
        """Distances from one stored cell's seed to every stored seed."""
        return self.distances_to(self._cells[cell_id].seed)

    def distances_to_subset(self, point: Any, positions: np.ndarray) -> np.ndarray:
        """Distances from ``point`` to the seeds at the given array positions.

        Computing only the needed rows keeps the cost of a dependency update
        proportional to the number of candidates that survived the filters,
        which is what makes the Figure 11 ablation meaningful.
        """
        if len(positions) == 0:
            return np.empty(0, dtype=float)
        if self._numeric and self._seeds is not None:
            query = np.asarray(point, dtype=float).reshape(1, -1)
            return pairwise_euclidean(query, self._seeds[positions])[0]
        metric = self._metric
        return np.asarray(
            [metric(point, self._cells[self._ids[int(p)]].seed) for p in positions],
            dtype=float,
        )

    def distances_to_many(self, points: Sequence[Any]) -> np.ndarray:
        """Distance matrix from several query points to every stored seed.

        Returns an array of shape ``(len(points), len(self))`` whose rows are
        bit-identical to what :meth:`distances_to` returns for each query —
        both run through the shared row-consistent kernel, so the batch
        ingestion path sees exactly the distances the sequential path sees.
        """
        n = len(points)
        if n == 0 or self._size == 0:
            return np.empty((n, self._size), dtype=float)
        if self._numeric and self._seeds is not None:
            queries = np.asarray(points, dtype=float)
            return pairwise_euclidean(queries, self._seeds[: self._size])
        metric = self._metric
        return np.asarray(
            [[metric(point, self._cells[cid].seed) for cid in self._ids] for point in points],
            dtype=float,
        )

    def cross_distances(self, positions: np.ndarray) -> np.ndarray:
        """Distances from the seeds at ``positions`` to every stored seed.

        Shape ``(len(positions), len(self))``; row ``i`` equals
        ``seed_distances(id_at(positions[i]))``.  One call serves a whole
        batch of dependency updates: row ``i`` answers "who could cell i
        depend on" while column ``j`` answers "could cell j now depend on one
        of these".
        """
        if len(positions) == 0:
            return np.empty((0, self._size), dtype=float)
        if self._numeric and self._seeds is not None:
            return pairwise_euclidean(
                self._seeds[np.asarray(positions, dtype=int)], self._seeds[: self._size]
            )
        return self.distances_to_many(
            [self._cells[self._ids[int(p)]].seed for p in positions]
        )

    def nearest_many(
        self, points: Sequence[Any], within: Optional[float] = None
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Per-query nearest seed as ``(distances, cell_ids)`` arrays.

        Equivalent to taking the row minima of :meth:`distances_to_many`
        (same per-element arithmetic, same canonical smallest-id rule on
        exact distance ties) but computed over seed blocks sized to stay
        cache-resident, so the full ``(queries, cells)`` matrix never has to
        round-trip through memory.  Returns ``(None, None)`` when the store
        is empty.

        When ``within`` is given, seeds provably farther than ``within`` from
        a query (by the norm bound ``|‖q‖ - ‖s‖| ≤ ‖q - s‖``) may be skipped:
        any result at most ``within`` away is still the exact global nearest
        with exact tie-breaking, while a result beyond ``within`` only
        promises that *no* seed lies within ``within`` (its distance/id may
        be those of a non-nearest seed, or ``inf``/-1).  Sorting the seeds by
        norm is amortised over the whole query batch — this is the
        micro-batch ingestion path's assignment query, where only coverage
        within the cell radius matters.
        """
        n = len(points)
        if n == 0 or self._size == 0:
            return None, None
        if not (self._numeric and self._seeds is not None):
            return self._merge_minima(
                self.distances_to_many(points), np.asarray(self._ids), None, None
            )
        queries = np.asarray(points, dtype=float)
        ids = np.asarray(self._ids)
        if within is not None and self._size > self.prune_threshold:
            return self._nearest_many_pruned(queries, ids, within)
        block = max(1, 2_000_000 // max(1, 8 * n))
        best = best_id = None
        for start in range(0, self._size, block):
            stop = min(self._size, start + block)
            distances = pairwise_euclidean(queries, self._seeds[start:stop])
            best, best_id = self._merge_minima(distances, ids[start:stop], best, best_id)
        return best, best_id

    def _nearest_many_pruned(
        self, queries: np.ndarray, ids: np.ndarray, within: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Norm-windowed nearest query (see :meth:`nearest_many`).

        Queries are processed in norm-sorted groups; each group only scans
        the seeds whose norm falls inside the group's ``± within`` window
        (padded by a relative epsilon so float rounding of the norms can
        never exclude a seed that is genuinely within ``within``).
        """
        n = queries.shape[0]
        seed_norm = np.sqrt(self._norms[: self._size])
        seed_order = np.argsort(seed_norm, kind="stable")
        seed_norm_sorted = seed_norm[seed_order]
        query_norm = np.sqrt(np.einsum("ij,ij->i", queries, queries))
        query_order = np.argsort(query_norm, kind="stable")
        best = np.full(n, np.inf)
        best_id = np.full(n, -1, dtype=np.int64)
        for start in range(0, n, 64):
            rows = query_order[start : start + 64]
            low = float(query_norm[rows[0]])
            high = float(query_norm[rows[-1]])
            margin = within + 1e-9 * (high + within)
            first = int(np.searchsorted(seed_norm_sorted, low - margin, side="left"))
            last = int(np.searchsorted(seed_norm_sorted, high + margin, side="right"))
            if first >= last:
                continue
            candidates = seed_order[first:last]
            distances = pairwise_euclidean(queries[rows], self._seeds[candidates])
            group_best, group_id = self._merge_minima(distances, ids[candidates], None, None)
            best[rows] = group_best
            best_id[rows] = group_id
        return best, best_id

    @staticmethod
    def _merge_minima(
        distances: np.ndarray,
        ids: np.ndarray,
        best: Optional[np.ndarray],
        best_id: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold one distance block into running per-row ``(min, min id)``.

        Exact distance ties resolve to the smallest cell id, both inside a
        block and across blocks — the canonical rule shared with
        ``EDMStream._nearest_seed``.
        """
        positions = np.argmin(distances, axis=1)
        rows = np.arange(distances.shape[0])
        block_best = distances[rows, positions]
        block_id = ids[positions]
        tie_rows = np.flatnonzero(
            np.count_nonzero(distances == block_best[:, None], axis=1) > 1
        )
        for row in tie_rows:
            tied = np.flatnonzero(distances[row] == block_best[row])
            block_id[row] = ids[tied].min()
        if best is None:
            return block_best, block_id
        closer = block_best < best
        tied = (block_best == best) & (block_id < best_id)
        take = closer | tied
        best[take] = block_best[take]
        best_id[take] = block_id[take]
        return best, best_id

    def nearest(self, point: Any) -> Optional[Tuple[int, float]]:
        """Nearest stored cell to ``point`` as ``(cell_id, distance)``."""
        if self._size == 0:
            return None
        distances = self.distances_to(point)
        position = int(np.argmin(distances))
        return self._ids[position], float(distances[position])

    def position_of(self, cell_id: int) -> int:
        """Array position of a cell id (valid until the next add/remove)."""
        return self._index[cell_id]

    def id_at(self, position: int) -> int:
        """Cell id stored at an array position."""
        return self._ids[position]

    def validate(self, decay: Optional[DecayModel] = None) -> None:
        """Check cache coherence against the canonical cell objects (tests only)."""
        assert self._size == len(self._ids) == len(self._index) == len(self._cells)
        for cid, position in self._index.items():
            cell = self._cells[cid]
            assert self._ids[position] == cid
            assert self._density[position] == cell.density, (
                f"density cache stale for cell {cid}"
            )
            assert self._last_update[position] == cell.last_update
            cached_delta = self._delta[position]
            assert cached_delta == cell.delta or (
                np.isinf(cached_delta) and np.isinf(cell.delta)
            ), f"delta cache stale for cell {cid}"
