"""Population views over the structure-of-arrays cell backbone.

EDMStream's per-point work — nearest-seed assignment and the (filtered)
dependency update — touches every cell of one of the two populations
(active cells in the DP-Tree, inactive cells in the outlier reservoir).
:class:`CellStore` answers those bulk queries vectorised: it keeps a dense
array of *slots* into a shared :class:`~repro.core.soa.CellArrays` arena
and gathers the relevant columns (seeds, densities, timestamps, dependent
distances) straight out of the arena's contiguous storage.

Since the SoA refactor the store holds no cell state of its own — the
arena is canonical — so there is nothing to keep coherent: moving a cell
between the active and inactive populations is pure position bookkeeping,
and the historical write-through hooks (:meth:`CellStore.update_density`,
:meth:`CellStore.update_delta`, :meth:`CellStore.sync`) are retained as
no-ops for API compatibility.  For non-numeric data (token sets under the
Jaccard metric) the store transparently falls back to pure Python loops
over the same API.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cell import ClusterCell
from repro.core.decay import DecayModel
from repro.core.soa import DETACHED, MEMBER, CellArrays
from repro.distance.metrics import pairwise_euclidean

_INITIAL_CAPACITY = 64


class CellStore:
    """A vectorised population view over a shared :class:`CellArrays` arena.

    Parameters
    ----------
    numeric:
        Whether seeds are numeric vectors (enables the matrix query paths).
    metric:
        Pairwise distance for non-numeric seeds; required when ``numeric``
        is false.
    arrays:
        The backing arena.  When omitted the store creates a private one,
        which is how standalone stores in tests behave; a model passes the
        same arena to both of its stores so that activating or deactivating
        a cell never copies cell state.
    """

    #: Store size above which :meth:`nearest_many` with ``within`` switches
    #: to the norm-window pruned scan (class attribute so tests can lower it
    #: and exercise the pruned path on small streams).
    prune_threshold = 512

    def __init__(
        self,
        numeric: bool = True,
        metric: Optional[Callable[[Any, Any], float]] = None,
        arrays: Optional[CellArrays] = None,
    ) -> None:
        if not numeric and metric is None:
            raise ValueError("a pairwise metric is required for non-numeric stores")
        if arrays is None:
            arrays = CellArrays(numeric=numeric)
        elif arrays.numeric != numeric:
            raise ValueError("store numeric flag does not match its backing arrays")
        self._numeric = numeric
        self._metric = metric
        self._arrays = arrays
        self._slots = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._pos: Dict[int, int] = {}
        self._ids: List[int] = []
        self._ids_cache: Optional[np.ndarray] = None
        self._seed_cache: Optional[np.ndarray] = None
        self._size = 0

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of cells in this population."""
        return self._size

    def __contains__(self, cell_id: int) -> bool:
        """Whether a cell id belongs to this population."""
        return cell_id in self._pos

    def cells(self) -> Iterable[ClusterCell]:
        """Iterate over the stored cells in insertion (array) order."""
        return (self._arrays.view(cid) for cid in self._ids)

    def ids(self) -> List[int]:
        """Cell ids in array order (a copy)."""
        return list(self._ids)

    def get(self, cell_id: int) -> ClusterCell:
        """Return a stored cell by id."""
        if cell_id not in self._pos:
            raise KeyError(f"cell {cell_id} not in store")
        return self._arrays.view(cell_id)

    @property
    def numeric(self) -> bool:
        """Whether the store holds numeric seeds (and can vectorise queries)."""
        return self._numeric

    @property
    def arrays(self) -> CellArrays:
        """The backing structure-of-arrays arena (shared, canonical state)."""
        return self._arrays

    def slots(self) -> np.ndarray:
        """Arena slots of this population in array order (live, do not mutate)."""
        return self._slots[: self._size]

    def ids_array(self) -> np.ndarray:
        """Cell ids in array order as an int64 array (cached between changes).

        The cache is invalidated by :meth:`add` / :meth:`remove`, so between
        membership changes — i.e. across the thousands of absorbs a stable
        population sees — repeated callers share one array instead of
        re-converting the id list per point.  Treat the result as read-only.
        """
        if self._ids_cache is None:
            self._ids_cache = np.asarray(self._ids, dtype=np.int64)
        return self._ids_cache

    # Backwards-compatible private alias (pre-dates the public cache).
    _ids_array = ids_array

    def seed_view(self) -> Optional[np.ndarray]:
        """The population's seed matrix in array order (cached, read-only).

        Seeds are written only when a cell is allocated or adopted — never
        while it sits in a store — so the gather out of the arena is a pure
        function of the membership and can be cached until the next
        :meth:`add` / :meth:`remove`.  This is the sequential ingestion
        path's hottest access: caching it turns the per-point
        ``seeds[slots]`` fancy-gather in :meth:`distances_to` into a reuse
        of one contiguous matrix.  ``None`` for non-numeric stores.
        """
        if not self._numeric or self._arrays.seeds is None:
            return None
        if self._seed_cache is None or self._seed_cache.shape[0] != self._size:
            gathered = self._arrays.seeds[self._slots[: self._size]]
            gathered.flags.writeable = False
            self._seed_cache = gathered
        return self._seed_cache

    def memory_footprint(self) -> int:
        """Bytes held by the store's own position bookkeeping.

        Covers the slot array, the id list and position map entries, and
        whichever query caches are currently materialised.  Cell state
        itself lives in the shared arena (see
        :meth:`CellArrays.nbytes <repro.core.soa.CellArrays.nbytes>`), so
        the two never double-count.
        """
        total = int(self._slots.nbytes)
        # dict entry + list slot + two small ints, per member (estimate).
        total += self._size * 120
        if self._ids_cache is not None:
            total += int(self._ids_cache.nbytes)
        if self._seed_cache is not None:
            total += int(self._seed_cache.nbytes)
        return total

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def add(self, cell: ClusterCell) -> None:
        """Add a cell; raises ``KeyError`` if its id is already stored.

        A cell backed by a different arena (e.g. a standalone cell in the
        detached arena) is first adopted into this store's arena; the view
        object keeps its identity, so ``store.get(cell.cell_id) is cell``.
        """
        cell_id = cell.cell_id
        if cell_id in self._pos:
            raise KeyError(f"cell {cell_id} already in store")
        if cell._arrays is not self._arrays:
            self._arrays.adopt(cell)
        if self._size >= self._slots.shape[0]:
            grown = np.empty(self._slots.shape[0] * 2, dtype=np.int64)
            grown[: self._size] = self._slots[: self._size]
            self._slots = grown
        position = self._size
        self._slots[position] = cell._slot
        self._pos[cell_id] = position
        self._ids.append(cell_id)
        self._ids_cache = None
        self._seed_cache = None
        self._arrays.status[cell._slot] = MEMBER
        self._size += 1

    def remove(self, cell_id: int) -> ClusterCell:
        """Remove a cell by id (swap-with-last compaction); returns the cell.

        The cell's arena slot is *not* released — the cell usually moves to
        the other population.  Callers that are deleting the cell for good
        release the slot through the arena afterwards.
        """
        if cell_id not in self._pos:
            raise KeyError(f"cell {cell_id} not in store")
        position = self._pos.pop(cell_id)
        slot = int(self._slots[position])
        last = self._size - 1
        if position != last:
            moved_id = self._ids[last]
            self._ids[position] = moved_id
            self._pos[moved_id] = position
            self._slots[position] = self._slots[last]
        self._ids.pop()
        self._ids_cache = None
        self._seed_cache = None
        self._size -= 1
        self._arrays.status[slot] = DETACHED
        return self._arrays.view(cell_id)

    # ------------------------------------------------------------------ #
    # write-through compatibility no-ops
    # ------------------------------------------------------------------ #
    def update_density(self, cell_id: int, density: float, last_update: float) -> None:
        """No-op retained for API compatibility (the arena is canonical)."""

    def update_delta(self, cell_id: int, delta: float) -> None:
        """No-op retained for API compatibility (the arena is canonical)."""

    def sync(self, cell: ClusterCell) -> None:
        """No-op retained for API compatibility (the arena is canonical)."""

    # ------------------------------------------------------------------ #
    # bulk queries
    # ------------------------------------------------------------------ #
    def densities_at(self, now: float, decay: DecayModel) -> np.ndarray:
        """Timely densities of every stored cell at time ``now`` (array order)."""
        if self._size == 0:
            return np.empty(0, dtype=float)
        slots = self._slots[: self._size]
        elapsed = np.maximum(0.0, now - self._arrays.last_update[slots])
        return self._arrays.density[slots] * decay.rate**elapsed

    def deltas(self) -> np.ndarray:
        """Dependent distances of every stored cell (array order; a copy)."""
        return self._arrays.delta[self._slots[: self._size]]

    def last_updates(self) -> np.ndarray:
        """Last-update timestamps of every stored cell (array order; a copy)."""
        return self._arrays.last_update[self._slots[: self._size]]

    def raw_densities(self) -> np.ndarray:
        """Stored (undecayed) densities of every cell (array order; a copy)."""
        return self._arrays.density[self._slots[: self._size]]

    def seed_matrix(self) -> Optional[np.ndarray]:
        """A copy of the numeric seed matrix in array order.

        ``None`` for non-numeric stores; an empty ``(0, 0)`` matrix when no
        cells are stored yet.  This is what snapshot publication freezes —
        the gather out of the arena is itself a fresh array, so the serving
        side never aliases the live columns.
        """
        if not self._numeric:
            return None
        if self._arrays.seeds is None or self._size == 0:
            return np.empty((0, self._arrays.dim or 0), dtype=self._arrays.seed_dtype)
        return self.seed_view()

    def distances_to(self, point: Any) -> np.ndarray:
        """Distances from ``point`` to every stored seed (array order)."""
        if self._size == 0:
            return np.empty(0, dtype=float)
        if self._numeric and self._arrays.seeds is not None:
            query = np.asarray(point, dtype=self._arrays.seed_dtype).reshape(1, -1)
            return pairwise_euclidean(query, self.seed_view())[0]
        metric = self._metric
        return np.asarray(
            [
                metric(point, self._arrays.seed_of(int(slot)))
                for slot in self._slots[: self._size]
            ],
            dtype=float,
        )

    def seed_distances(self, cell_id: int) -> np.ndarray:
        """Distances from one stored cell's seed to every stored seed."""
        return self.distances_to(self.get(cell_id).seed)

    def distances_to_subset(self, point: Any, positions: np.ndarray) -> np.ndarray:
        """Distances from ``point`` to the seeds at the given array positions.

        Computing only the needed rows keeps the cost of a dependency update
        proportional to the number of candidates that survived the filters,
        which is what makes the Figure 11 ablation meaningful.
        """
        if len(positions) == 0:
            return np.empty(0, dtype=float)
        if self._numeric and self._arrays.seeds is not None:
            query = np.asarray(point, dtype=self._arrays.seed_dtype).reshape(1, -1)
            rows = self.seed_view()[np.asarray(positions, dtype=int)]
            return pairwise_euclidean(query, rows)[0]
        slots = self._slots[np.asarray(positions, dtype=int)]
        metric = self._metric
        return np.asarray(
            [metric(point, self._arrays.seed_of(int(slot))) for slot in slots],
            dtype=float,
        )

    def distances_to_many(self, points: Sequence[Any]) -> np.ndarray:
        """Distance matrix from several query points to every stored seed.

        Returns an array of shape ``(len(points), len(self))`` whose rows are
        bit-identical to what :meth:`distances_to` returns for each query —
        both run through the shared row-consistent kernel, so the batch
        ingestion path sees exactly the distances the sequential path sees.
        """
        n = len(points)
        if n == 0 or self._size == 0:
            return np.empty((n, self._size), dtype=float)
        if self._numeric and self._arrays.seeds is not None:
            queries = np.asarray(points, dtype=self._arrays.seed_dtype)
            return pairwise_euclidean(queries, self.seed_view())
        metric = self._metric
        seeds = [self._arrays.seed_of(int(slot)) for slot in self._slots[: self._size]]
        return np.asarray(
            [[metric(point, seed) for seed in seeds] for point in points], dtype=float
        )

    def cross_distances(self, positions: np.ndarray) -> np.ndarray:
        """Distances from the seeds at ``positions`` to every stored seed.

        Shape ``(len(positions), len(self))``; row ``i`` equals
        ``seed_distances(id_at(positions[i]))``.  One call serves a whole
        batch of dependency updates: row ``i`` answers "who could cell i
        depend on" while column ``j`` answers "could cell j now depend on one
        of these".
        """
        if len(positions) == 0:
            return np.empty((0, self._size), dtype=float)
        if self._numeric and self._arrays.seeds is not None:
            seeds = self.seed_view()
            return pairwise_euclidean(
                seeds[np.asarray(positions, dtype=int)], seeds
            )
        return self.distances_to_many(
            [self._arrays.seed_of(int(self._slots[int(p)])) for p in positions]
        )

    def nearest_many(
        self, points: Sequence[Any], within: Optional[float] = None
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Per-query nearest seed as ``(distances, cell_ids)`` arrays.

        Equivalent to taking the row minima of :meth:`distances_to_many`
        (same per-element arithmetic, same canonical smallest-id rule on
        exact distance ties) but computed over seed blocks sized to stay
        cache-resident, so the full ``(queries, cells)`` matrix never has to
        round-trip through memory.  Returns ``(None, None)`` when the store
        is empty.

        When ``within`` is given, seeds provably farther than ``within`` from
        a query (by the norm bound ``|‖q‖ - ‖s‖| ≤ ‖q - s‖``) may be skipped:
        any result at most ``within`` away is still the exact global nearest
        with exact tie-breaking, while a result beyond ``within`` only
        promises that *no* seed lies within ``within`` (its distance/id may
        be those of a non-nearest seed, or ``inf``/-1).  Sorting the seeds by
        norm is amortised over the whole query batch — this is the
        micro-batch ingestion path's assignment query, where only coverage
        within the cell radius matters.
        """
        n = len(points)
        if n == 0 or self._size == 0:
            return None, None
        ids = self.ids_array()
        if not (self._numeric and self._arrays.seeds is not None):
            return _merge_minima(self.distances_to_many(points), ids, None, None)
        queries = np.asarray(points, dtype=self._arrays.seed_dtype)
        return nearest_over_slots(
            self._arrays,
            self.slots(),
            ids,
            queries,
            within,
            self.prune_threshold,
            seeds=self.seed_view(),
        )

    @staticmethod
    def _merge_minima(
        distances: np.ndarray,
        ids: np.ndarray,
        best: Optional[np.ndarray],
        best_id: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold one distance block into running per-row minima (module impl)."""
        return _merge_minima(distances, ids, best, best_id)

    def nearest(self, point: Any) -> Optional[Tuple[int, float]]:
        """Nearest stored cell to ``point`` as ``(cell_id, distance)``."""
        if self._size == 0:
            return None
        distances = self.distances_to(point)
        position = int(np.argmin(distances))
        return self._ids[position], float(distances[position])

    def position_of(self, cell_id: int) -> int:
        """Array position of a cell id (valid until the next add/remove)."""
        return self._pos[cell_id]

    def id_at(self, position: int) -> int:
        """Cell id stored at an array position."""
        return self._ids[position]

    def validate(self, decay: Optional[DecayModel] = None) -> None:
        """Check position bookkeeping against the arena (tests only).

        The ``decay`` parameter is accepted for backwards compatibility with
        the write-through-cache era; there is no cached state left to check
        against it.
        """
        assert self._size == len(self._ids) == len(self._pos)
        for cell_id, position in self._pos.items():
            assert self._ids[position] == cell_id
            slot = int(self._slots[position])
            assert self._arrays.slot_of(cell_id) == slot, (
                f"store slot stale for cell {cell_id}"
            )
            assert int(self._arrays.cell_ids[slot]) == cell_id
            assert self._arrays.status[slot] == MEMBER, (
                f"cell {cell_id} tracked by a store but not marked MEMBER"
            )
        self._arrays.validate()


def nearest_over_slots(
    arrays: CellArrays,
    slots: np.ndarray,
    ids: np.ndarray,
    queries: np.ndarray,
    within: Optional[float] = None,
    prune_threshold: int = 512,
    seeds: Optional[np.ndarray] = None,
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Per-query nearest seed over arbitrary arena ``slots`` (numeric only).

    The arena-level core behind :meth:`CellStore.nearest_many`, usable over
    any slot selection — in particular the *union* of the active and
    inactive populations, which is how micro-batch assignment resolves both
    stores with a single scan.  Ties resolve to the smallest cell id, the
    canonical rule shared with ``EDMStream._nearest_seed``.

    When ``within`` is given and the selection is larger than
    ``prune_threshold``, the norm-windowed pruned scan is used: any result
    at most ``within`` away is the exact global nearest (with exact
    tie-breaking), while a result beyond ``within`` only promises that *no*
    seed lies within ``within``.

    ``seeds`` optionally supplies the already-gathered ``(size, dim)`` seed
    matrix for ``slots`` (e.g. :meth:`CellStore.seed_view`), skipping the
    arena gather entirely.
    """
    size = int(slots.shape[0])
    if size == 0 or queries.shape[0] == 0:
        return None, None
    if seeds is None:
        seeds = arrays.seeds[slots]
    if within is not None and size > prune_threshold:
        return _nearest_pruned(arrays, slots, seeds, ids, queries, within)
    block = max(1, 8_000_000 // max(1, 8 * queries.shape[0]))
    best = best_id = None
    for start in range(0, size, block):
        stop = min(size, start + block)
        distances = pairwise_euclidean(queries, seeds[start:stop])
        best, best_id = _merge_minima(distances, ids[start:stop], best, best_id)
    return best, best_id


def _nearest_pruned(
    arrays: CellArrays,
    slots: np.ndarray,
    seeds: np.ndarray,
    ids: np.ndarray,
    queries: np.ndarray,
    within: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Norm-windowed nearest query (see :func:`nearest_over_slots`).

    Queries are processed in norm-sorted groups; each group only scans the
    seeds whose norm falls inside the group's ``± within`` window (padded by
    a relative epsilon so float rounding of the norms can never exclude a
    seed that is genuinely within ``within``).
    """
    n = queries.shape[0]
    seed_norm = np.sqrt(arrays.seed_norm2[slots])
    seed_order = np.argsort(seed_norm, kind="stable")
    seed_norm_sorted = seed_norm[seed_order]
    query_norm = np.sqrt(np.einsum("ij,ij->i", queries, queries, dtype=np.float64))
    query_order = np.argsort(query_norm, kind="stable")
    best = np.full(n, np.inf)
    best_id = np.full(n, -1, dtype=np.int64)
    for start in range(0, n, 64):
        rows = query_order[start : start + 64]
        low = float(query_norm[rows[0]])
        high = float(query_norm[rows[-1]])
        margin = within + 1e-9 * (high + within)
        first = int(np.searchsorted(seed_norm_sorted, low - margin, side="left"))
        last = int(np.searchsorted(seed_norm_sorted, high + margin, side="right"))
        if first >= last:
            continue
        candidates = seed_order[first:last]
        distances = pairwise_euclidean(queries[rows], seeds[candidates])
        group_best, group_id = _merge_minima(distances, ids[candidates], None, None)
        best[rows] = group_best
        best_id[rows] = group_id
    return best, best_id


def _merge_minima(
    distances: np.ndarray,
    ids: np.ndarray,
    best: Optional[np.ndarray],
    best_id: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold one distance block into running per-row ``(min, min id)``.

    Exact distance ties resolve to the smallest cell id, both inside a block
    and across blocks — the canonical rule shared with
    ``EDMStream._nearest_seed``.
    """
    positions = np.argmin(distances, axis=1)
    rows = np.arange(distances.shape[0])
    block_best = distances[rows, positions]
    block_id = ids[positions]
    tie_rows = np.flatnonzero(
        np.count_nonzero(distances == block_best[:, None], axis=1) > 1
    )
    for row in tie_rows:
        tied = np.flatnonzero(distances[row] == block_best[row])
        block_id[row] = ids[tied].min()
    if best is None:
        return block_best, block_id
    closer = block_best < best
    tied = (block_best == best) & (block_id < best_id)
    take = closer | tied
    best[take] = block_best[take]
    best_id[take] = block_id[take]
    return best, best_id
