"""Cluster-evolution tracking (Table 1, Sections 3.3 and 6.2).

The paper tracks five evolution types — *emerge*, *disappear*, *split*,
*merge* and *adjust* — by monitoring how the DP-Tree (and therefore the
MSDSubTree partition) changes over time.  :class:`EvolutionTracker` receives
the cluster partition at successive observation times (each partition maps a
cluster identifier to the set of member cluster-cell ids) and classifies the
transition between consecutive partitions into typed
:class:`ClusterEvent` records.

Matching between old and new clusters uses member overlap, in the spirit of
MONIC [Spiliopoulou et al. 2006]: an old cluster *survives into* the new
cluster that contains the largest share of its members, provided that share
reaches ``overlap_threshold``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple


class EvolutionType(enum.Enum):
    """The five cluster-evolution types of Table 1."""

    EMERGE = "emerge"
    DISAPPEAR = "disappear"
    SPLIT = "split"
    MERGE = "merge"
    ADJUST = "adjust"
    SURVIVE = "survive"


@dataclass(frozen=True)
class ClusterEvent:
    """A single evolution event.

    ``old_clusters`` and ``new_clusters`` hold the cluster identifiers
    involved on each side of the transition (e.g. a merge lists several old
    clusters and one new cluster).  ``moved_cells`` lists the cluster-cells
    whose assignment changed, when meaningful (adjust events).
    """

    event_type: EvolutionType
    time: float
    old_clusters: Tuple[int, ...] = ()
    new_clusters: Tuple[int, ...] = ()
    moved_cells: Tuple[int, ...] = ()
    description: str = ""

    def __str__(self) -> str:
        olds = ",".join(str(c) for c in self.old_clusters) or "-"
        news = ",".join(str(c) for c in self.new_clusters) or "-"
        return f"[t={self.time:.2f}] {self.event_type.value}: {olds} -> {news} {self.description}"


Partition = Mapping[int, FrozenSet[int]]


@dataclass
class _Snapshot:
    time: float
    partition: Dict[int, FrozenSet[int]]


class EvolutionTracker:
    """Tracks cluster evolution between successive partition snapshots.

    Parameters
    ----------
    overlap_threshold:
        Minimum fraction of an old cluster's members that must land in a new
        cluster for the new cluster to count as a continuation of the old
        one.  The complementary direction (share of the new cluster made of
        the old cluster's members) uses the same threshold for merge
        detection.
    record_survivals:
        When True, SURVIVE events (a cluster continued essentially unchanged)
        are also recorded; by default only genuine evolution activity is kept
        so that the log matches Figure 7.
    """

    def __init__(self, overlap_threshold: float = 0.5, record_survivals: bool = False) -> None:
        if not 0.0 < overlap_threshold <= 1.0:
            raise ValueError(
                f"overlap_threshold must be in (0, 1], got {overlap_threshold}"
            )
        self.overlap_threshold = overlap_threshold
        self.record_survivals = record_survivals
        self.events: List[ClusterEvent] = []
        self._previous: Optional[_Snapshot] = None
        #: Lifespan bookkeeping: cluster id -> (first_seen, last_seen).
        self.lifespans: Dict[int, Tuple[float, float]] = {}
        #: Incremental per-type tallies so :meth:`counts` is O(#types) even
        #: on long event logs (snapshot publication embeds it every time).
        self._counts: Dict[str, int] = {t.value: 0 for t in EvolutionType}

    # ------------------------------------------------------------------ #
    # observation API
    # ------------------------------------------------------------------ #
    def observe(self, time: float, partition: Partition) -> List[ClusterEvent]:
        """Record a partition snapshot and return the events it triggered."""
        snapshot = _Snapshot(
            time=time,
            partition={cid: frozenset(members) for cid, members in partition.items()},
        )
        for cid in snapshot.partition:
            first, _ = self.lifespans.get(cid, (time, time))
            self.lifespans[cid] = (first, time)

        if self._previous is None:
            events = [
                ClusterEvent(
                    event_type=EvolutionType.EMERGE,
                    time=time,
                    new_clusters=(cid,),
                    description="initial cluster",
                )
                for cid in sorted(snapshot.partition)
            ]
        else:
            events = self._diff(self._previous, snapshot)
        self.events.extend(events)
        for event in events:
            self._counts[event.event_type.value] += 1
        self._previous = snapshot
        return events

    # ------------------------------------------------------------------ #
    # diffing logic
    # ------------------------------------------------------------------ #
    def _diff(self, old: _Snapshot, new: _Snapshot) -> List[ClusterEvent]:
        events: List[ClusterEvent] = []
        time = new.time

        old_partition = old.partition
        new_partition = new.partition

        # For each old cluster: which new clusters received its members?
        forward: Dict[int, Dict[int, int]] = {}
        for old_id, old_members in old_partition.items():
            counts: Dict[int, int] = {}
            for new_id, new_members in new_partition.items():
                shared = len(old_members & new_members)
                if shared:
                    counts[new_id] = shared
            forward[old_id] = counts

        # Reverse map: for each new cluster, which old clusters contributed?
        backward: Dict[int, Dict[int, int]] = {new_id: {} for new_id in new_partition}
        for old_id, counts in forward.items():
            for new_id, shared in counts.items():
                backward[new_id][old_id] = shared

        matched_new: Set[int] = set()
        survived_old: Set[int] = set()

        # --- splits and survivals -------------------------------------- #
        for old_id, old_members in old_partition.items():
            counts = forward[old_id]
            if not counts:
                continue
            significant = [
                new_id
                for new_id, shared in counts.items()
                if shared / max(1, len(old_members)) >= self.overlap_threshold
                or shared / max(1, len(new_partition[new_id])) >= self.overlap_threshold
            ]
            if len(significant) >= 2:
                events.append(
                    ClusterEvent(
                        event_type=EvolutionType.SPLIT,
                        time=time,
                        old_clusters=(old_id,),
                        new_clusters=tuple(sorted(significant)),
                        description=f"cluster {old_id} split into {len(significant)} clusters",
                    )
                )
                survived_old.add(old_id)
                matched_new.update(significant)
            elif len(significant) == 1:
                survived_old.add(old_id)
                matched_new.add(significant[0])

        # --- merges ----------------------------------------------------- #
        for new_id, new_members in new_partition.items():
            contributors = [
                old_id
                for old_id, shared in backward[new_id].items()
                if shared / max(1, len(old_partition[old_id])) >= self.overlap_threshold
            ]
            if len(contributors) >= 2:
                events.append(
                    ClusterEvent(
                        event_type=EvolutionType.MERGE,
                        time=time,
                        old_clusters=tuple(sorted(contributors)),
                        new_clusters=(new_id,),
                        description=f"{len(contributors)} clusters merged into {new_id}",
                    )
                )
                matched_new.add(new_id)
                survived_old.update(contributors)

        # --- disappearances --------------------------------------------- #
        for old_id in old_partition:
            if old_id in survived_old:
                continue
            if forward[old_id]:
                # Members ended up somewhere but below the overlap threshold:
                # treat as an adjustment (points drifting between clusters).
                moved = tuple(
                    sorted(
                        set().union(
                            *[
                                old_partition[old_id] & new_partition[new_id]
                                for new_id in forward[old_id]
                            ]
                        )
                    )
                )
                events.append(
                    ClusterEvent(
                        event_type=EvolutionType.ADJUST,
                        time=time,
                        old_clusters=(old_id,),
                        new_clusters=tuple(sorted(forward[old_id])),
                        moved_cells=moved,
                        description=f"cells of cluster {old_id} redistributed",
                    )
                )
            else:
                events.append(
                    ClusterEvent(
                        event_type=EvolutionType.DISAPPEAR,
                        time=time,
                        old_clusters=(old_id,),
                        description=f"cluster {old_id} disappeared",
                    )
                )

        # --- emergences -------------------------------------------------- #
        for new_id in new_partition:
            if new_id in matched_new:
                continue
            if not backward[new_id]:
                events.append(
                    ClusterEvent(
                        event_type=EvolutionType.EMERGE,
                        time=time,
                        new_clusters=(new_id,),
                        description=f"cluster {new_id} emerged",
                    )
                )

        # --- fine-grained adjustments ------------------------------------ #
        adjust_moves = self._cell_movements(old_partition, new_partition)
        if adjust_moves:
            events.append(
                ClusterEvent(
                    event_type=EvolutionType.ADJUST,
                    time=time,
                    moved_cells=tuple(sorted(adjust_moves)),
                    description=f"{len(adjust_moves)} cells changed cluster",
                )
            )

        if self.record_survivals:
            for old_id in survived_old:
                events.append(
                    ClusterEvent(
                        event_type=EvolutionType.SURVIVE,
                        time=time,
                        old_clusters=(old_id,),
                        description=f"cluster {old_id} survived",
                    )
                )
        return events

    @staticmethod
    def _cell_movements(
        old_partition: Partition, new_partition: Partition
    ) -> Set[int]:
        """Cells present in both snapshots whose cluster assignment changed.

        A cell counts as moved when its old cluster's best-matching successor
        is not the cluster it now belongs to.
        """
        old_assignment: Dict[int, int] = {}
        for cid, members in old_partition.items():
            for m in members:
                old_assignment[m] = cid
        new_assignment: Dict[int, int] = {}
        for cid, members in new_partition.items():
            for m in members:
                new_assignment[m] = cid

        # Map old cluster -> the new cluster holding most of its members.
        successor: Dict[int, Optional[int]] = {}
        for old_id, members in old_partition.items():
            counts: Dict[int, int] = {}
            for m in members:
                if m in new_assignment:
                    counts[new_assignment[m]] = counts.get(new_assignment[m], 0) + 1
            successor[old_id] = max(counts, key=counts.get) if counts else None

        moved: Set[int] = set()
        for cell, old_cluster in old_assignment.items():
            if cell not in new_assignment:
                continue
            expected = successor.get(old_cluster)
            if expected is not None and new_assignment[cell] != expected:
                moved.add(cell)
        return moved

    # ------------------------------------------------------------------ #
    # reporting helpers
    # ------------------------------------------------------------------ #
    def events_of_type(self, event_type: EvolutionType) -> List[ClusterEvent]:
        """All recorded events of a given type, in time order."""
        return [e for e in self.events if e.event_type == event_type]

    def counts(self) -> Dict[str, int]:
        """Number of recorded events per type (O(#types), kept incrementally)."""
        return dict(self._counts)

    def timeline(self) -> List[Tuple[float, str, str]]:
        """A flat (time, type, description) view of the event log, for printing."""
        return [(e.time, e.event_type.value, e.description) for e in self.events]
