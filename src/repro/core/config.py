"""Configuration for the EDMStream algorithm.

All tunables of Sections 4-6 are gathered in :class:`EDMStreamConfig` so that
experiments (and the ablation benches) can toggle individual design choices
without touching algorithm code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class EDMStreamConfig:
    """Parameters of EDMStream.

    Parameters
    ----------
    radius:
        Cluster-cell radius ``r`` (Definition 4).  The paper chooses it like
        the cut-off distance ``dc`` of Density Peaks clustering: a small
        percentile (0.5%-2%) of the pairwise-distance distribution.
    beta:
        Active/inactive density threshold multiplier β (Section 4.3).  A cell
        is active when its timely density is at least ``β·v / (1 - a^λ)``.
        The paper uses β = 0.0021.
    decay_a, decay_lambda:
        Parameters of the exponential decay model (Equation 3).  Defaults
        match the paper (a = 0.998, λ = 1).
    stream_rate:
        Expected point-arrival rate ``v`` in points per second, used for the
        active threshold and the safe-deletion interval.  The paper fixes
        1,000 pt/s unless stated otherwise.
    tau:
        Initial cluster-separation threshold τ.  ``None`` means it is chosen
        automatically from the initial decision graph (the stand-in for the
        paper's user-interaction step).
    alpha:
        Balance parameter α of the τ objective (Equation 15).  ``None`` means
        it is learned from the initial τ as described in Section 5.
    adaptive_tau:
        Whether τ is re-optimised as the stream evolves (Section 5).  When
        False the initial τ is kept fixed (the "static τ" baseline of
        Table 4 / Figure 15).
    metric:
        Distance metric name (``euclidean`` for numeric data, ``jaccard`` for
        token-set data).
    init_size:
        Number of points buffered before the DP-Tree is first built
        (the initialisation phase of Section 4.1).
    enable_density_filter, enable_triangle_filter:
        Toggles for Theorem 1 and Theorem 2 (the "wf"/"df"/"df+tif" variants
        of Figure 11).
    maintenance_interval:
        Stream-time interval (seconds) between decay sweeps that move
        low-density cells to the outlier reservoir and delete outdated ones.
    snapshot_interval:
        Stream-time interval (seconds) between evolution-tracking snapshots.
    delete_outdated:
        Whether outdated inactive cells are deleted (memory recycling,
        Section 4.4).
    tau_reoptimize_interval:
        Stream-time interval (seconds) between τ re-optimisations when
        ``adaptive_tau`` is on.
    outlier_label:
        Label returned by ``predict_one`` for points not covered by any
        active cluster-cell.
    dtype:
        Seed-matrix dtype of the structure-of-arrays cell store:
        ``"float64"`` (default; distances bit-identical to the scalar
        reference path) or ``"float32"`` (half the memory traffic for the
        distance kernels, at ~1e-7 relative distance error — see
        ``docs/ARCHITECTURE.md``).  Densities, timestamps and dependent
        distances stay float64 either way.
    memory_cap_bytes:
        Hard byte budget for the cell state (arena columns + per-cell side
        state + population views + sketch tier).  ``None`` (default) keeps
        the classic unbounded behavior, bit-identical to builds without the
        tier.  When set, the coldest inactive cells are evicted to an
        approximate sketch tier instead of letting the arena grow past the
        cap, and re-arriving neighborhoods revive with their sketched
        density — see ``docs/ARCHITECTURE.md`` "Bounded-memory tier".
        Numeric metrics only.
    sketch_width, sketch_depth:
        Geometry of the count-min sketch holding evicted densities (only
        used when ``memory_cap_bytes`` is set).
    sketch_bloom_capacity, sketch_bloom_error_rate:
        Sizing of the bloom filter that gates revival (distinct evicted
        neighborhoods the filter is dimensioned for, and its target
        false-positive rate at that load).
    sketch_revive_min:
        Smallest sketch estimate that revives a new cell; aged-out residue
        below it is ignored.
    telemetry:
        Observability knob (``repro.obs``).  ``None``/``False`` (default)
        keeps telemetry off: the model holds the shared null facade, pays
        one attribute lookup per (chunk-granularity) instrumentation point,
        and is bit-identical to builds without the subsystem.  ``True``
        attaches a fresh :class:`repro.obs.Telemetry`; an existing
        :class:`~repro.obs.Telemetry` instance is used as-is (so a serving
        publisher can share one facade across subsystems).  Telemetry only
        observes — it never changes clustering behavior.
    """

    radius: float = 0.3
    beta: float = 0.0021
    decay_a: float = 0.998
    decay_lambda: float = 1.0
    stream_rate: float = 1000.0
    tau: Optional[float] = None
    alpha: Optional[float] = None
    adaptive_tau: bool = True
    metric: str = "euclidean"
    init_size: int = 500
    enable_density_filter: bool = True
    enable_triangle_filter: bool = True
    maintenance_interval: float = 1.0
    snapshot_interval: float = 1.0
    delete_outdated: bool = True
    tau_reoptimize_interval: float = 1.0
    outlier_label: int = -1
    dtype: str = "float64"
    memory_cap_bytes: Optional[int] = None
    sketch_width: int = 4096
    sketch_depth: int = 4
    sketch_bloom_capacity: int = 100_000
    sketch_bloom_error_rate: float = 0.01
    sketch_revive_min: float = 0.05
    telemetry: object = None

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"radius must be positive, got {self.radius}")
        if not 0.0 < self.beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {self.beta}")
        if not 0.0 < self.decay_a < 1.0:
            raise ValueError(f"decay_a must be in (0, 1), got {self.decay_a}")
        if self.decay_lambda <= 0:
            raise ValueError(f"decay_lambda must be positive, got {self.decay_lambda}")
        if self.stream_rate <= 0:
            raise ValueError(f"stream_rate must be positive, got {self.stream_rate}")
        if self.tau is not None and self.tau <= 0:
            raise ValueError(f"tau must be positive when given, got {self.tau}")
        if self.alpha is not None and not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1) when given, got {self.alpha}")
        if self.init_size < 2:
            raise ValueError(f"init_size must be at least 2, got {self.init_size}")
        if self.maintenance_interval <= 0:
            raise ValueError(
                f"maintenance_interval must be positive, got {self.maintenance_interval}"
            )
        if self.snapshot_interval <= 0:
            raise ValueError(
                f"snapshot_interval must be positive, got {self.snapshot_interval}"
            )
        if self.tau_reoptimize_interval <= 0:
            raise ValueError(
                f"tau_reoptimize_interval must be positive, got {self.tau_reoptimize_interval}"
            )
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be 'float32' or 'float64', got {self.dtype!r}")
        if self.memory_cap_bytes is not None and self.memory_cap_bytes <= 0:
            raise ValueError(
                f"memory_cap_bytes must be positive when given, got {self.memory_cap_bytes}"
            )
        if self.sketch_width < 1 or self.sketch_depth < 1:
            raise ValueError(
                f"sketch geometry must be positive, got width={self.sketch_width}, "
                f"depth={self.sketch_depth}"
            )
        if self.sketch_bloom_capacity < 1:
            raise ValueError(
                f"sketch_bloom_capacity must be >= 1, got {self.sketch_bloom_capacity}"
            )
        if not 0.0 < self.sketch_bloom_error_rate < 1.0:
            raise ValueError(
                "sketch_bloom_error_rate must be in (0, 1), got "
                f"{self.sketch_bloom_error_rate}"
            )
        if self.sketch_revive_min < 0.0:
            raise ValueError(
                f"sketch_revive_min must be non-negative, got {self.sketch_revive_min}"
            )
        if (
            self.telemetry is not None
            and not isinstance(self.telemetry, bool)
            and not hasattr(self.telemetry, "phase")
        ):
            raise ValueError(
                "telemetry must be None, a bool, or a Telemetry-like object "
                f"with a phase() method, got {self.telemetry!r}"
            )

    def validate_beta_range(self) -> None:
        """Check β against its admissible range ``(1 - a^λ)/v < β < 1`` (Section 4.3)."""
        lower = (1.0 - self.decay_a ** self.decay_lambda) / self.stream_rate
        if not lower < self.beta < 1.0:
            raise ValueError(
                f"beta={self.beta} outside admissible range ({lower}, 1) "
                f"for rate={self.stream_rate}, a={self.decay_a}, lambda={self.decay_lambda}"
            )
