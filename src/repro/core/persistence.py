"""Saving and restoring EDMStream model state.

A long-running stream clusterer needs to survive process restarts without
replaying the whole stream.  This module serialises everything EDMStream
needs to continue exactly where it left off — the configuration, the active
cells with their DP-Tree dependencies, the outlier reservoir, the learned α
and the current τ — into a plain JSON-compatible dictionary:

* :func:`model_to_dict` / :func:`model_from_dict` — in-memory round trip,
* :func:`save_model` / :func:`load_model` — JSON file round trip.

Cell seeds are stored as coordinate lists for numeric metrics and as token
lists for the Jaccard metric; evolution history and performance counters are
intentionally *not* persisted (they describe the past run, not the state
needed to continue clustering).
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, List, Union

from repro.core.cell import ClusterCell, ensure_cell_id_floor
from repro.core.config import EDMStreamConfig
from repro.core.edmstream import EDMStream
from repro.distance.text import TokenSetPoint

#: Format version written into every snapshot, checked on load.
FORMAT_VERSION = 1

__all__ = [
    "FORMAT_VERSION",
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
]


def _encode_value(value: float) -> Union[float, str]:
    """JSON-safe encoding of a float (infinity is not valid JSON)."""
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


def _decode_value(value: Union[float, str]) -> float:
    return float("inf") if value == "inf" else float(value)


def _encode_seed(seed: Any, numeric: bool) -> Any:
    if numeric:
        return [float(v) for v in seed]
    if isinstance(seed, TokenSetPoint):
        return {"tokens": sorted(seed.tokens), "text": seed.text}
    if isinstance(seed, (frozenset, set)):
        return {"tokens": sorted(seed), "text": None}
    raise TypeError(f"cannot serialise seed of type {type(seed).__name__}")


def _decode_seed(data: Any, numeric: bool) -> Any:
    if numeric:
        return tuple(float(v) for v in data)
    return TokenSetPoint(tokens=frozenset(data["tokens"]), text=data.get("text"))


def _encode_cell(cell: ClusterCell, numeric: bool) -> Dict[str, Any]:
    return {
        "cell_id": cell.cell_id,
        "seed": _encode_seed(cell.seed, numeric),
        "density": cell.density,
        "created_at": cell.created_at,
        "last_update": cell.last_update,
        "last_absorb": cell.last_absorb,
        "dependency": cell.dependency,
        "delta": _encode_value(cell.delta),
        "points_absorbed": cell.points_absorbed,
        "label_votes": {str(k): v for k, v in cell.label_votes.items()},
    }


def _decode_cell(data: Dict[str, Any], numeric: bool) -> ClusterCell:
    return ClusterCell(
        seed=_decode_seed(data["seed"], numeric),
        density=float(data["density"]),
        created_at=float(data["created_at"]),
        last_update=float(data["last_update"]),
        last_absorb=float(data["last_absorb"]),
        dependency=data["dependency"],
        delta=_decode_value(data["delta"]),
        points_absorbed=int(data["points_absorbed"]),
        cell_id=int(data["cell_id"]),
        label_votes={int(k): int(v) for k, v in data.get("label_votes", {}).items()},
    )


def model_to_dict(model: EDMStream) -> Dict[str, Any]:
    """Serialise an EDMStream model into a JSON-compatible dictionary."""
    numeric = model._numeric
    active = [_encode_cell(cell, numeric) for cell in model.tree.cells()]
    inactive = [_encode_cell(cell, numeric) for cell in model.reservoir.cells()]
    return {
        "format_version": FORMAT_VERSION,
        "config": dict(model.config.__dict__),
        "state": {
            "tau": model._tau,
            "alpha": model.tau_optimizer.alpha,
            "now": model._now,
            "start_time": model._start_time,
            "n_points": model._n_points,
            "initialized": model._initialized,
            "last_maintenance": model._last_maintenance,
            "last_snapshot": model._last_snapshot,
            "last_tau_opt": model._last_tau_opt,
        },
        "active_cells": active,
        "inactive_cells": inactive,
    }


def model_from_dict(data: Dict[str, Any]) -> EDMStream:
    """Rebuild an EDMStream model from :func:`model_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported snapshot format version {version!r} (expected {FORMAT_VERSION})"
        )
    config = EDMStreamConfig(**data["config"])
    model = EDMStream(config)
    numeric = model._numeric

    # Restore active cells first (without dependencies), then wire the
    # dependency links once every node exists.
    dependencies: List[Dict[str, Any]] = []
    max_id = 0
    for cell_data in data["active_cells"]:
        cell = _decode_cell(cell_data, numeric)
        max_id = max(max_id, cell.cell_id)
        dependencies.append(
            {"cell_id": cell.cell_id, "dependency": cell.dependency, "delta": cell.delta}
        )
        cell.dependency = None
        cell.delta = float("inf")
        model.tree.insert(cell)
        model._active.add(cell)
    for link in dependencies:
        if link["dependency"] is not None and link["dependency"] in model.tree:
            model.tree.set_dependency(link["cell_id"], link["dependency"], link["delta"])

    for cell_data in data["inactive_cells"]:
        cell = _decode_cell(cell_data, numeric)
        max_id = max(max_id, cell.cell_id)
        model.reservoir.add(cell)
        model._inactive.add(cell)

    state = data["state"]
    model._tau = state["tau"]
    model.tau_optimizer.alpha = state["alpha"]
    model._now = float(state["now"])
    model._start_time = state["start_time"]
    model._n_points = int(state["n_points"])
    model._initialized = bool(state["initialized"])
    model._last_maintenance = float(state["last_maintenance"])
    model._last_snapshot = float(state["last_snapshot"])
    model._last_tau_opt = float(state["last_tau_opt"])
    if model._tau is not None:
        model.tau_history.append((model._now, model._tau))

    ensure_cell_id_floor(max_id)
    return model


def save_model(model: EDMStream, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a model snapshot to a JSON file and return its path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(model_to_dict(model), handle)
    return target


def load_model(path: Union[str, pathlib.Path]) -> EDMStream:
    """Load a model snapshot written by :func:`save_model`."""
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        data = json.load(handle)
    return model_from_dict(data)
