"""The EDMStream online clustering algorithm (Section 4).

EDMStream summarises the stream into cluster-cells, keeps the dense
("active") cells in a DP-Tree whose weak links (dependent distance > τ)
separate the density mountains, caches sparse ("inactive") cells in an
outlier reservoir, and tracks cluster evolution by observing how the
MSDSubTree partition changes over time.

The per-point work is:

1. *Assignment* — the point is absorbed by the nearest cell whose seed is
   within the radius ``r``; otherwise it seeds a new inactive cell.
2. *Density update* — the absorbing cell's timely density is decayed to the
   current time and incremented (Equation 8).
3. *Activation* — an inactive cell whose density reaches the active
   threshold is inserted into the DP-Tree.
4. *Dependency update* — the absorbing cell's own dependency is refreshed
   and other active cells are re-examined, with the Theorem 1 / Theorem 2
   filters skipping the vast majority of candidates.
5. *Maintenance* (periodic) — decayed cells move to the outlier reservoir,
   outdated reservoir cells are deleted (Theorem 3), τ is re-optimised
   (Section 5) and an evolution snapshot is taken.
"""

from __future__ import annotations

import math
import time as _time
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import ClusterSnapshot, ServingView, StreamClusterer, as_stream_points
from repro.core.adaptive_tau import TauOptimizer, suggest_initial_tau
from repro.core.cell import ClusterCell
from repro.core.cellstore import CellStore
from repro.core.config import EDMStreamConfig
from repro.core.decay import DecayModel
from repro.core.dptree import DPTree
from repro.core.evolution import EvolutionTracker
from repro.core.filters import DependencyFilter, FilterStatistics
from repro.core.reservoir import OutlierReservoir
from repro.core.soa import CellArrays
from repro.distance import get_metric
from repro.obs.timing import NULL_TELEMETRY, Telemetry


class EDMStream(StreamClusterer):
    """Online density-mountain stream clustering.

    Implements the :class:`~repro.api.StreamClusterer` protocol: ingestion
    through :meth:`learn_one` / :meth:`learn_many`, serving through
    immutable :class:`~repro.api.ClusterSnapshot` views published at batch
    boundaries and on :meth:`request_clustering` (queries never walk the
    live DP-Tree).

    Parameters
    ----------
    config:
        An :class:`~repro.core.config.EDMStreamConfig`; ``None`` uses the
        defaults (which match the paper's parameter choices).
    **overrides:
        Convenience keyword overrides applied on top of ``config``
        (e.g. ``EDMStream(radius=0.5, beta=0.001)``).
    """

    name = "EDMStream"

    def __init__(self, config: Optional[EDMStreamConfig] = None, **overrides: Any) -> None:
        if config is None:
            config = EDMStreamConfig(**overrides)
        elif overrides:
            params = {**config.__dict__, **overrides}
            config = EDMStreamConfig(**params)
        self.config = config
        self.decay = DecayModel(a=config.decay_a, lam=config.decay_lambda)
        self.tree = DPTree()
        self.reservoir = OutlierReservoir(
            decay=self.decay,
            beta=config.beta,
            stream_rate=config.stream_rate,
            delete_outdated=config.delete_outdated,
        )
        self.evolution = EvolutionTracker()
        self.tau_optimizer = TauOptimizer(alpha=config.alpha)
        self.filter = DependencyFilter(
            enable_density_filter=config.enable_density_filter,
            enable_triangle_filter=config.enable_triangle_filter,
        )

        # Telemetry (repro.obs).  Off by default: the null facade makes
        # every instrumentation point a no-op and the clustering path is
        # bit-identical to an un-instrumented build — telemetry only
        # observes, it never steers (enforced by tests/test_obs.py).
        if config.telemetry is None or config.telemetry is False:
            self.obs = NULL_TELEMETRY
        elif config.telemetry is True:
            self.obs = Telemetry()
        else:
            self.obs = config.telemetry
        self._obs_points = self.obs.counter("ingest_points_total")

        self._numeric = config.metric not in ("jaccard",)
        self._metric = get_metric(config.metric)
        # One structure-of-arrays arena holds every cell the model owns;
        # the two stores are population views over it, so activation and
        # deactivation move positions, never cell state.
        self._cells = CellArrays(
            numeric=self._numeric,
            dtype=np.float32 if config.dtype == "float32" else np.float64,
        )
        self._active = CellStore(
            numeric=self._numeric, metric=self._metric, arrays=self._cells
        )
        self._inactive = CellStore(
            numeric=self._numeric, metric=self._metric, arrays=self._cells
        )

        # Bounded-memory tier (docs/ARCHITECTURE.md "Bounded-memory tier").
        # Constructed only when a cap is configured, so the default build
        # takes none of these code paths and stays bit-identical.
        self._bounded: Optional[Any] = None
        if config.memory_cap_bytes is not None:
            if not self._numeric:
                raise ValueError(
                    "memory_cap_bytes requires a numeric metric (grid keys "
                    f"quantise seed coordinates); metric={config.metric!r}"
                )
            from repro.sketch import BoundedCellStore, SketchTier

            tier = SketchTier.auto_sized(
                decay=self.decay,
                radius=config.radius,
                memory_cap_bytes=config.memory_cap_bytes,
                cms_width=config.sketch_width,
                cms_depth=config.sketch_depth,
                bloom_capacity=config.sketch_bloom_capacity,
                bloom_error_rate=config.sketch_bloom_error_rate,
                revive_min=config.sketch_revive_min,
            )
            self._bounded = BoundedCellStore(
                arena=self._cells,
                active=self._active,
                inactive=self._inactive,
                reservoir=self.reservoir,
                tier=tier,
                memory_cap_bytes=config.memory_cap_bytes,
            )
            self._bounded.obs = self.obs

        self._tau: Optional[float] = config.tau
        self._now: float = 0.0
        self._start_time: Optional[float] = None
        self._n_points = 0
        self._initialized = False
        self._last_maintenance = 0.0
        self._last_snapshot = 0.0
        self._last_tau_opt = 0.0

        # Serving side: published snapshots are rebuilt only when the live
        # state has mutated since the last publication (epoch counter).
        self._epoch = 0
        self._published_epoch = -1
        self._latest_snapshot: Optional[ClusterSnapshot] = None

        #: Wall-clock seconds spent in dependency updates (Figure 11).
        self.dependency_update_seconds = 0.0
        #: Wall-clock seconds spent in learn_one overall.
        self.total_learn_seconds = 0.0
        #: History of (time, reservoir size) samples, one per maintenance sweep.
        self.reservoir_size_history: List[Tuple[float, int]] = []
        #: History of (time, tau) values after each re-optimisation.
        self.tau_history: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------ #
    # public properties
    # ------------------------------------------------------------------ #
    @property
    def tau(self) -> Optional[float]:
        """Current cluster-separation threshold τ (None before initialisation)."""
        return self._tau

    @property
    def alpha(self) -> Optional[float]:
        """Learned balance parameter α of the τ objective."""
        return self.tau_optimizer.alpha

    @property
    def now(self) -> float:
        """Latest stream timestamp seen."""
        return self._now

    @property
    def n_points(self) -> int:
        """Number of points ingested."""
        return self._n_points

    @property
    def n_active_cells(self) -> int:
        """Number of cluster-cells currently in the DP-Tree."""
        return len(self.tree)

    @property
    def n_inactive_cells(self) -> int:
        """Number of cluster-cells currently in the outlier reservoir."""
        return len(self.reservoir)

    @property
    def n_clusters(self) -> int:
        """Number of MSDSubTrees under the current τ."""
        if self._tau is None or len(self.tree) == 0:
            return 0
        return self.tree.num_clusters(self._tau)

    @property
    def filter_stats(self) -> FilterStatistics:
        """Counters of filtered / performed dependency updates."""
        return self.filter.stats

    @property
    def initialized(self) -> bool:
        """Whether the initial DP-Tree has been built."""
        return self._initialized

    @property
    def outlier_label(self) -> int:
        """Label returned by the query surface for uncovered points."""
        return self.config.outlier_label

    # ------------------------------------------------------------------ #
    # thresholds
    # ------------------------------------------------------------------ #
    def active_threshold(self, now: Optional[float] = None) -> float:
        """Density threshold separating active from inactive cells.

        Asymptotically this is the paper's ``β·v / (1 - a^λ)``.  Before the
        stream has run long enough for the total freshness to reach its
        steady state, the threshold is scaled by the fraction of the steady
        state actually attainable — otherwise nothing could be active during
        the first seconds of the stream (Figure 7 shows clusters from t = 1 s
        onwards).  The threshold never drops below 1 so that a brand-new cell
        (density exactly 1) is always inactive, as required in Section 4.3.
        """
        if now is None:
            now = self._now
        steady = self.decay.active_threshold(self.config.beta, self.config.stream_rate)
        if self._start_time is None:
            return max(1.0, steady)
        elapsed = max(0.0, now - self._start_time)
        warmup_fraction = 1.0 - self.decay.decay_factor(elapsed)
        return max(1.0 + 1e-12, steady * warmup_fraction)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def learn_one(
        self, values: Any, timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> int:
        """Ingest one point; returns the id of the cell that absorbed it."""
        started = _time.perf_counter()
        point = self._prepare(values)
        if timestamp is None:
            timestamp = self._now + 1.0 / self.config.stream_rate if self._n_points else 0.0
        if self._start_time is None:
            self._start_time = timestamp
        self._now = max(self._now, timestamp)
        self._n_points += 1
        self._obs_points.inc()

        cell_id = self._assign(point, self._now, label)

        if not self._initialized:
            if self._n_points >= self.config.init_size:
                self._initialize(self._now)
        else:
            self._periodic_work(self._now)

        self._epoch += 1
        self.total_learn_seconds += _time.perf_counter() - started
        return cell_id

    def learn_many(
        self,
        stream: Iterable[Any],
        batch_size: Optional[int] = 256,
    ) -> List[int]:
        """Ingest an iterable of stream points or raw value vectors.

        Accepts :class:`~repro.streams.point.StreamPoint` instances and raw
        value vectors interchangeably (raw values get auto-assigned arrival
        timestamps), per the :class:`~repro.api.StreamClusterer` protocol.

        By default the stream is processed in micro-batches of ``batch_size``
        points through :class:`~repro.core.batch.BatchIngestor`: assignment is
        one vectorised distance computation per batch, density increments are
        applied once per (cell, batch), and activation checks, dependency
        refreshes and periodic maintenance run at batch boundaries.  The
        result (cell populations, partitions, return value) is identical to
        the sequential path up to the tie-breaking and float-rounding
        caveats documented in :mod:`repro.core.batch`.

        Pass ``batch_size=None`` to force the paper-faithful per-point loop
        over :meth:`learn_one`.

        Either way the call ends by refreshing the published
        :class:`~repro.api.ClusterSnapshot` (a batch-boundary publication,
        O(active cells)), so concurrent readers holding :meth:`snapshot`
        observe at most one call's worth of staleness.
        """
        points = as_stream_points(stream)
        if batch_size is None:
            assigned = []
            for point in points:
                assigned.append(
                    self.learn_one(point.values, timestamp=point.timestamp, label=point.label)
                )
        else:
            from repro.core.batch import BatchIngestor

            assigned = BatchIngestor(self, batch_size=batch_size).ingest(points)
        self.request_clustering()
        return assigned

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def clusters(self) -> Dict[int, List[int]]:
        """Current MSDSubTree partition: cluster root id -> member cell ids."""
        if len(self.tree) == 0:
            return {}
        tau = self._effective_tau()
        return self.tree.clusters(tau)

    def partition_snapshot(self) -> Dict[int, FrozenSet[int]]:
        """Partition with frozen member sets, suitable for evolution tracking."""
        return {root: frozenset(members) for root, members in self.clusters().items()}

    def cluster_label_of_cell(self, cell_id: int) -> int:
        """Cluster root id of a cell, or the outlier label if it is not active."""
        if cell_id not in self.tree:
            return self.config.outlier_label
        tau = self._effective_tau()
        assignment = self.tree.cluster_assignment(tau)
        return assignment.get(cell_id, self.config.outlier_label)

    def request_clustering(self) -> ClusterSnapshot:
        """Publish (or return) the up-to-date :class:`~repro.api.ClusterSnapshot`.

        EDMStream maintains its clustering incrementally, so this costs one
        O(active cells) publication when the live state changed since the
        last call and is free otherwise.  The returned snapshot is immutable
        and versioned; all queries (:meth:`predict_one`,
        :meth:`predict_many`) are served from it.
        """
        if self._latest_snapshot is None or self._published_epoch != self._epoch:
            with self.obs.phase("snapshot_publish"):
                snapshot = self._publish_snapshot()
            self._published_epoch = self._epoch
            if self.obs.enabled:
                self.obs.record_event(
                    "snapshot_publish", time=self._now, version=snapshot.version
                )
            return snapshot
        return self._latest_snapshot

    def _serving_view(self) -> ServingView:
        """Serving state for snapshot publication (see :class:`ServingView`).

        Coverage extends to twice the cell radius: a point can legitimately
        sit in an inactive border cell whose own seed is up to ``r`` away
        from the nearest active seed, so the cluster footprint reaches
        ``2r`` beyond the active seeds (points farther are halos/outliers).
        """
        now = self._now
        view = ServingView(
            time=now,
            n_points=self._n_points,
            tau=self._tau,
            coverage=2.0 * self.config.radius,
            metadata={
                "active_cells": self.n_active_cells,
                "inactive_cells": self.n_inactive_cells,
                "alpha": self.alpha,
                "evolution": self.evolution.counts(),
            },
        )
        if self._bounded is not None:
            # Sketch-tier accounting; hot (active) cells in the snapshot
            # stay exact — only the cold tail is approximate.
            view.metadata["memory"] = self._bounded.stats()
        if len(self.tree) == 0:
            return view
        tau = self._effective_tau()
        view.tau = tau
        assignment = self.tree.cluster_assignment(tau)
        ids = self._active.ids()
        outlier = self.config.outlier_label
        view.cell_ids = ids
        view.labels = [assignment.get(cell_id, outlier) for cell_id in ids]
        view.densities = self._active.densities_at(now, self.decay)
        if self._numeric:
            view.seeds = self._active.seed_matrix()
        else:
            view.seed_objects = [self._active.get(cell_id).seed for cell_id in ids]
            view.metric = self._metric
        return view

    def predict_one(self, values: Any) -> int:
        """Cluster label for a point under the current model (no learning).

        Returns the root cell id of the cluster whose nearest active cell
        covers the point (within ``2r``, see :meth:`_serving_view`), or
        ``config.outlier_label``.  Served off the published snapshot — the
        snapshot is rebuilt at most once per mutation epoch, so repeated
        queries between ingestions share one frozen view.
        """
        return int(self.request_clustering().predict_one(self._prepare(values)))

    def predict_many(self, points: Sequence[Any]) -> np.ndarray:
        """Vectorised :meth:`predict_one` for a batch of query points.

        One call into the snapshot's blocked
        :func:`~repro.distance.metrics.pairwise_euclidean` kernel instead of
        one Python-level scan per point; row ``i`` equals
        ``predict_one(points[i])``.
        """
        if not hasattr(points, "__len__"):
            points = list(points)
        return self.request_clustering().predict_many(points)

    def decision_graph(self) -> List[Tuple[float, float, int]]:
        """(ρ, δ, cell id) triples of the active cells — the decision graph of Fig. 2b."""
        now = self._now
        graph = []
        for cell in self.tree.cells():
            graph.append((cell.density_at(now, self.decay), cell.delta, cell.cell_id))
        graph.sort(key=lambda item: (-item[0], item[1]))
        return graph

    def summary(self) -> Dict[str, Any]:
        """A snapshot of the main state variables, for logging and reports."""
        summary = {
            "points": self._n_points,
            "time": self._now,
            "active_cells": self.n_active_cells,
            "inactive_cells": self.n_inactive_cells,
            "clusters": self.n_clusters,
            "tau": self._tau,
            "alpha": self.alpha,
            "active_threshold": self.active_threshold(),
            "filter_stats": self.filter.stats.as_dict(),
            "dependency_update_seconds": self.dependency_update_seconds,
        }
        if self._bounded is not None:
            summary["memory"] = self._bounded.stats()
        if self.obs.enabled:
            summary["telemetry"] = {
                "phases": self.obs.phase_totals(),
                "event_counts": self.obs.events.counts(),
            }
        return summary

    @property
    def bounded_store(self) -> Optional[Any]:
        """The bounded-memory tier, or ``None`` when no cap is configured."""
        return self._bounded

    def memory_footprint(self) -> Dict[str, int]:
        """Byte accounting of the cell state, by component (see the tier docs).

        Available in both modes: in exact (uncapped) mode the ``sketch``
        component is zero; in bounded mode the total is what the cap is
        enforced against.
        """
        from repro.sketch.bounded import cell_state_footprint

        sketch_bytes = 0 if self._bounded is None else self._bounded.tier.nbytes()
        return cell_state_footprint(
            self._cells, self._active, self._inactive, sketch_bytes=sketch_bytes
        )

    # ------------------------------------------------------------------ #
    # internals: assignment
    # ------------------------------------------------------------------ #
    def _prepare(self, values: Any) -> Any:
        if self._numeric:
            return tuple(float(v) for v in values)
        return values

    def _effective_tau(self) -> float:
        if self._tau is not None:
            return self._tau
        deltas = self.tree.deltas()
        return suggest_initial_tau(deltas) if deltas else 1.0

    def _assign(self, point: Any, now: float, label: Optional[int]) -> int:
        active_distances = self._active.distances_to(point)
        inactive_distances = self._inactive.distances_to(point)

        best_id, best_distance, best_in_tree = self._nearest_seed(
            active_distances, inactive_distances
        )
        if best_id is None or best_distance > self.config.radius:
            return self._create_cell(point, now, label)

        if best_in_tree:
            self._absorb_active(best_id, point, now, label, active_distances)
        else:
            self._absorb_inactive(best_id, now, label)
        return best_id

    def _nearest_seed(
        self, active_distances: np.ndarray, inactive_distances: np.ndarray
    ) -> Tuple[Optional[int], float, bool]:
        """Nearest cell over both populations as ``(id, distance, is_active)``.

        Canonical tie-breaking: among seeds at exactly the same distance the
        smallest (i.e. earliest-created) cell id wins, regardless of which
        store holds it or of the stores' internal array order.  Exact ties
        are routine under the Jaccard metric, and an order-free rule is what
        lets the micro-batch path (:mod:`repro.core.batch`) reproduce the
        sequential results point for point.
        """
        best_distance = math.inf
        if active_distances.size:
            best_distance = float(np.min(active_distances))
        if inactive_distances.size:
            best_distance = min(best_distance, float(np.min(inactive_distances)))
        if not math.isfinite(best_distance):
            return None, math.inf, False
        best_id: Optional[int] = None
        best_in_tree = False
        if active_distances.size:
            tied = np.flatnonzero(active_distances == best_distance)
            if tied.size:
                best_id = min(self._active.id_at(int(p)) for p in tied)
                best_in_tree = True
        if inactive_distances.size:
            tied = np.flatnonzero(inactive_distances == best_distance)
            if tied.size:
                inactive_best = min(self._inactive.id_at(int(p)) for p in tied)
                if best_id is None or inactive_best < best_id:
                    best_id = inactive_best
                    best_in_tree = False
        return best_id, best_distance, best_in_tree

    def _create_cell(self, point: Any, now: float, label: Optional[int]) -> int:
        density = 1.0
        if self._bounded is not None:
            # Evict before allocating so the arena never doubles past the
            # cap, and revive the neighborhood's sketched density if this
            # point re-enters a region whose cells were evicted.
            self._bounded.ensure_headroom(1, now)
            density += self._bounded.revival_density(point, now)
        cell = self._cells.create(
            point,
            density=density,
            created_at=now,
            last_update=now,
            last_absorb=now,
        )
        if label is not None:
            cell.label_votes[label] = 1
        self.reservoir.add(cell)
        self._inactive.add(cell)
        cell_id = cell.cell_id
        if (
            self._bounded is not None
            and self._initialized
            and density >= self.active_threshold(now)
        ):
            # A revived cell can come back above the active threshold; give
            # it back its place in the DP-Tree immediately, mirroring the
            # activation check of `_absorb_inactive`.
            self._activate_cell(cell_id, now)
        return cell_id

    def _absorb_inactive(self, cell_id: int, now: float, label: Optional[int]) -> None:
        cell = self.reservoir.get(cell_id)
        cell.absorb(now, self.decay, label=label)
        if self._initialized and cell.density >= self.active_threshold(now):
            self._activate_cell(cell_id, now)

    # ------------------------------------------------------------------ #
    # internals: dependency maintenance
    # ------------------------------------------------------------------ #
    def _absorb_active(
        self,
        cell_id: int,
        point: Any,
        now: float,
        label: Optional[int],
        active_distances: np.ndarray,
    ) -> None:
        cell = self.tree.get(cell_id)
        rho_before = cell.density_at(now, self.decay)
        cell.absorb(now, self.decay, label=label)
        rho_after = cell.density

        if not self._initialized:
            return

        started = _time.perf_counter()
        point_to_absorber = float(active_distances[self._active.position_of(cell_id)])
        self.filter.begin_event(rho_before, rho_after, point_to_absorber)
        self._refresh_own_dependency(cell, now)
        self._update_candidate_dependencies(cell, now, rho_before, rho_after, active_distances)
        self.dependency_update_seconds += _time.perf_counter() - started

    def _refresh_own_dependency(self, cell: ClusterCell, now: float) -> None:
        """Refresh the absorbing cell's own dependency after its density rose.

        If its current dependency still has strictly higher density the set
        of higher-density cells it sees (F) still contains the previous
        argmin, so δ is unchanged and the recomputation can be skipped.
        """
        dependency = cell.dependency
        if dependency is not None and dependency in self.tree:
            parent = self.tree.get(dependency)
            if self._is_higher(
                parent.density_at(now, self.decay), parent.cell_id, cell.density, cell.cell_id
            ):
                return
        self._recompute_dependency(cell, now)

    def _recompute_dependency(self, cell: ClusterCell, now: float) -> None:
        """Recompute a cell's nearest higher-density cell from scratch (Eq. 7/9)."""
        densities = self._active.densities_at(now, self.decay)
        if densities.size == 0:
            self.tree.set_dependency(cell.cell_id, None, math.inf)
            return
        ids = self._active.ids_array()
        rho = cell.density_at(now, self.decay)
        higher = (densities > rho) | ((densities == rho) & (ids < cell.cell_id))
        higher &= ids != cell.cell_id
        if not np.any(higher):
            self.tree.set_dependency(cell.cell_id, None, math.inf)
            return
        positions = np.flatnonzero(higher)
        distances = self._active.distances_to_subset(cell.seed, positions)
        self.filter.stats.distance_computations += int(positions.size)
        best_distance = float(np.min(distances))
        # Canonical tie-breaking: among equidistant dominators the smallest
        # cell id wins, so the dependency graph is a pure function of the
        # (density order, distances) state, not of the processing order —
        # exact distance ties are routine under the Jaccard metric, and the
        # micro-batch path relies on this rule to reproduce the sequential
        # results.
        tied = np.flatnonzero(distances == best_distance)
        best_id = int(np.min(ids[positions[tied]]))
        if best_id != cell.dependency or best_distance != cell.delta:
            self.filter.stats.dependency_changes += 1
        self.tree.set_dependency(cell.cell_id, best_id, best_distance)

    def _update_candidate_dependencies(
        self,
        absorber: ClusterCell,
        now: float,
        rho_before: float,
        rho_after: float,
        active_distances: np.ndarray,
    ) -> None:
        """Re-examine other active cells whose dependency may now be the absorber.

        Implements the filtered update of Section 4.2: a candidate cell c
        needs re-examination only if the absorber newly entered c's set of
        higher-density cells (density filter, Theorem 1) and could be closer
        than c's current dependency (triangle-inequality filter, Theorem 2).
        """
        size = len(self._active)
        if size <= 1:
            return
        ids = self._active.ids_array()
        densities = self._active.densities_at(now, self.decay)
        deltas = self._active.deltas()
        absorber_position = self._active.position_of(absorber.cell_id)
        point_to_absorber = float(active_distances[absorber_position])

        candidate = ids != absorber.cell_id
        n_candidates = int(np.count_nonzero(candidate))
        self.filter.stats.candidates += n_candidates

        # Only cells the absorber now dominates can ever point at it; this is
        # part of the dependency definition (Eq. 7), not an optional filter.
        dominated = (densities < rho_after) | (
            (densities == rho_after) & (ids > absorber.cell_id)
        )

        survivors = candidate.copy()
        if self.config.enable_density_filter:
            # Theorem 1: only cells for which the absorber *newly* entered the
            # higher-density set need re-examination, i.e. previously not
            # dominated (rho_c >= rho_before) and now dominated (rho_c < rho_after).
            survivors &= dominated & (densities >= rho_before)
            self.filter.stats.density_filtered += n_candidates - int(
                np.count_nonzero(survivors)
            )

        if self.config.enable_triangle_filter and np.any(survivors):
            before_triangle = int(np.count_nonzero(survivors))
            triangle_ok = np.abs(active_distances - point_to_absorber) <= deltas
            survivors &= triangle_ok
            self.filter.stats.triangle_filtered += before_triangle - int(
                np.count_nonzero(survivors)
            )

        positions = np.flatnonzero(survivors)
        if positions.size == 0:
            return

        seed_distances = self._active.distances_to_subset(absorber.seed, positions)
        self.filter.stats.distance_computations += int(positions.size)
        for offset, position in enumerate(positions):
            if not dominated[position]:
                continue
            distance = float(seed_distances[offset])
            candidate_id = int(ids[position])
            if not self._lex_improves(distance, absorber.cell_id, candidate_id, deltas[position]):
                continue
            self.tree.set_dependency(candidate_id, absorber.cell_id, distance)
            self.filter.stats.dependency_changes += 1

    @staticmethod
    def _is_higher(rho_a: float, id_a: int, rho_b: float, id_b: int) -> bool:
        """Strict total order on (density, id) used to break density ties."""
        if rho_a != rho_b:
            return rho_a > rho_b
        return id_a < id_b

    def _lex_improves(
        self, distance: float, parent_id: int, candidate_id: int, current_delta: float
    ) -> bool:
        """Whether ``parent_id`` should replace the candidate's dependency.

        Canonical rule: a new dominator wins when it is strictly closer, or
        equally close with a smaller cell id than the current dependency.
        Together with the tie-breaking in :meth:`_recompute_dependency` this
        makes the dependency graph a pure function of the current densities
        and (static) seed distances, independent of update order.
        """
        if distance != current_delta:
            return distance < current_delta
        current = self.tree.get(candidate_id).dependency
        return current is None or parent_id < current

    # ------------------------------------------------------------------ #
    # internals: activation / deactivation
    # ------------------------------------------------------------------ #
    def _activate_cell(self, cell_id: int, now: float) -> None:
        """Move a cell from the outlier reservoir into the DP-Tree (emergence)."""
        cell = self.reservoir.pop(cell_id)
        self._inactive.remove(cell_id)
        cell.refresh(now, self.decay)
        cell.dependency = None
        cell.delta = math.inf
        self.tree.insert(cell)
        self._active.add(cell)

        started = _time.perf_counter()
        self._recompute_dependency(cell, now)
        self._repoint_lower_cells_to(cell, now)
        self.dependency_update_seconds += _time.perf_counter() - started

    def _repoint_lower_cells_to(self, new_cell: ClusterCell, now: float) -> None:
        """Lower-density active cells may now be closer to the newly active cell."""
        size = len(self._active)
        if size <= 1:
            return
        ids = self._active.ids_array()
        densities = self._active.densities_at(now, self.decay)
        deltas = self._active.deltas()
        rho_new = new_cell.density
        dominated = (densities < rho_new) | ((densities == rho_new) & (ids > new_cell.cell_id))
        dominated &= ids != new_cell.cell_id
        positions = np.flatnonzero(dominated)
        if positions.size == 0:
            return
        distances = self._active.distances_to_subset(new_cell.seed, positions)
        self.filter.stats.distance_computations += int(positions.size)
        for offset, position in enumerate(positions):
            distance = float(distances[offset])
            candidate_id = int(ids[position])
            if not self._lex_improves(distance, new_cell.cell_id, candidate_id, deltas[position]):
                continue
            self.tree.set_dependency(candidate_id, new_cell.cell_id, distance)
            self.filter.stats.dependency_changes += 1

    def _deactivate_cells(self, cell_ids: Sequence[int], now: float) -> None:
        """Move decayed cells from the DP-Tree to the outlier reservoir."""
        removal = set(cell_ids)
        if not removal:
            return
        # Cells whose dependency is being removed but which themselves stay
        # active need a fresh dependency afterwards.  The dependency column
        # of the arena answers this in one vectorised membership test.
        ids = self._active.ids_array()
        deps = self._cells.dep[self._active.slots()]
        removal_ids = np.fromiter(removal, dtype=np.int64, count=len(removal))
        orphan_mask = np.isin(deps, removal_ids) & ~np.isin(ids, removal_ids)
        orphans = [int(cid) for cid in ids[orphan_mask]]
        for cell_id in removal:
            cell = self.tree.remove(cell_id)
            self._active.remove(cell_id)
            cell.dependency = None
            cell.delta = math.inf
            self.reservoir.add(cell)
            self._inactive.add(cell)
        for cell_id in orphans:
            if cell_id in self.tree:
                self._recompute_dependency(self.tree.get(cell_id), now)

    # ------------------------------------------------------------------ #
    # internals: initialisation and periodic work
    # ------------------------------------------------------------------ #
    def _initialize(self, now: float) -> None:
        """Build the initial DP-Tree from the cached cells (Section 4.1)."""
        threshold = self.active_threshold(now)
        promotable = [
            cell.cell_id
            for cell in self.reservoir.cells()
            if cell.density_at(now, self.decay) >= threshold
        ]
        if len(promotable) < 2:
            # Not enough dense cells yet: promote every cached cell so that a
            # primary clustering exists, mirroring the paper's initialisation
            # over all cached cluster-cells.
            promotable = [cell.cell_id for cell in self.reservoir.cells()]
        for cell_id in promotable:
            cell = self.reservoir.pop(cell_id)
            self._inactive.remove(cell_id)
            cell.refresh(now, self.decay)
            cell.dependency = None
            cell.delta = math.inf
            self.tree.insert(cell)
            self._active.add(cell)

        # Dependencies: process cells from the densest downwards.
        ordered = sorted(
            self.tree.cells(),
            key=lambda c: (-c.density, c.cell_id),
        )
        for cell in ordered:
            self._recompute_dependency(cell, now)

        deltas = self.tree.deltas()
        if self._tau is None:
            self._tau = suggest_initial_tau(deltas) if deltas else 1.0
        if self.config.adaptive_tau and self.tau_optimizer.alpha is None:
            tau_deltas = self._tau_deltas(now)
            if tau_deltas:
                self.tau_optimizer.learn_alpha(self._tau, tau_deltas)
            else:
                self.tau_optimizer.alpha = 0.5
        self._initialized = True
        self._last_maintenance = now
        self._last_snapshot = now
        self._last_tau_opt = now
        self.tau_history.append((now, self._tau))
        self._record_evolution(self.evolution.observe(now, self.partition_snapshot()))

    def _record_evolution(self, events: List[Any]) -> None:
        """Mirror MONIC evolution transitions into the telemetry event ring."""
        if not events or not self.obs.enabled:
            return
        for event in events:
            self.obs.record_event(
                f"cluster_{event.event_type.value}",
                time=event.time,
                old_clusters=list(event.old_clusters),
                new_clusters=list(event.new_clusters),
            )

    def _periodic_work(self, now: float) -> None:
        if now - self._last_maintenance >= self.config.maintenance_interval:
            with self.obs.phase("maintenance"):
                self._maintenance(now)
            self._last_maintenance = now
        if (
            self.config.adaptive_tau
            and now - self._last_tau_opt >= self.config.tau_reoptimize_interval
        ):
            with self.obs.phase("tau_search"):
                self._reoptimize_tau(now)
            self._last_tau_opt = now
        if now - self._last_snapshot >= self.config.snapshot_interval:
            self._record_evolution(self.evolution.observe(now, self.partition_snapshot()))
            self._last_snapshot = now

    def _maintenance(self, now: float) -> None:
        """Decay sweep: deactivate sparse cells, prune outdated reservoir cells."""
        threshold = self.active_threshold(now)
        densities = self._active.densities_at(now, self.decay)
        ids = self._active.ids()
        to_deactivate = [ids[int(i)] for i in np.flatnonzero(densities < threshold)]
        # Never empty the tree completely: keep at least the densest cell so
        # that the clustering remains defined while the stream is sparse
        # (smallest id among exactly tied densities, canonically).
        if to_deactivate and len(to_deactivate) == len(ids):
            top = float(np.max(densities))
            keep = min(ids[int(i)] for i in np.flatnonzero(densities == top))
            to_deactivate = [cid for cid in to_deactivate if cid != keep]
        started = _time.perf_counter()
        self._deactivate_cells(to_deactivate, now)
        self.dependency_update_seconds += _time.perf_counter() - started

        removed = self.reservoir.prune_outdated(now)
        for cell in removed:
            cell_id = cell.cell_id
            self._inactive.remove(cell_id)
            # The cell is gone for good: recycle its arena slot so
            # steady-state ingestion allocates nothing new.
            self._cells.release(cell_id)
        if self._bounded is not None:
            self._bounded.enforce(now)
        self.reservoir_size_history.append((now, len(self.reservoir)))

    def _tau_deltas(self, now: float) -> List[float]:
        """Dependent distances used by the τ objective.

        DP-Tree roots have δ = inf, which would make "one single cluster"
        unrepresentable in the objective (the inter set could never be empty
        of real links).  Following the original DP paper — where the global
        density peak is assigned the maximum distance as its δ — each root
        contributes the distance to the farthest active seed instead.
        """
        slots = self._active.slots()
        if slots.size == 0:
            return []
        dep = self._cells.dep[slots]
        delta = self._cells.delta[slots]
        ids = self._active.ids_array()
        linked = (dep != -1) & np.isfinite(delta)
        deltas = delta[linked].tolist()
        roots = (dep == -1) | ~np.isin(dep, ids)
        for cell_id in ids[roots].tolist():
            distances = self._active.seed_distances(cell_id)
            if distances.size > 1:
                deltas.append(float(np.max(distances)))
        return deltas

    def _reoptimize_tau(self, now: float) -> None:
        if self.tau_optimizer.alpha is None:
            return
        deltas = self._tau_deltas(now)
        if len(deltas) < 2:
            return
        self._tau = self.tau_optimizer.optimize(deltas, time=now, fallback=self._tau)
        self.tau_history.append((now, self._tau))
