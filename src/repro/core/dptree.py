"""The Dependency Tree (DP-Tree) over cluster-cells (Section 2.2).

Every active cluster-cell depends on exactly one other active cell — its
nearest higher-density cell — except for the absolute density peak, which is
the tree root.  A *strongly dependent* link has dependent distance δ ≤ τ;
the clusters are the Maximal Strongly Dependent SubTrees (MSDSubTrees,
Definition 2), i.e. the connected components obtained after cutting every
weak link.

This module stores only the tree structure (parent/children pointers keyed
by cell id); density maintenance lives in :class:`~repro.core.cell.ClusterCell`
and dependency *selection* lives in the EDMStream driver.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.core.cell import ClusterCell


class DPTree:
    """Dependency tree over active cluster-cells.

    The tree may transiently be a forest (several cells with no dependency)
    while densities shift; cluster extraction treats every dependency-less
    cell as a subtree root, so the structure is always well defined.
    """

    def __init__(self) -> None:
        self._cells: Dict[int, ClusterCell] = {}
        self._children: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, cell_id: int) -> bool:
        return cell_id in self._cells

    def __iter__(self) -> Iterator[ClusterCell]:
        return iter(self._cells.values())

    def cells(self) -> Iterable[ClusterCell]:
        """Iterate over the active cells."""
        return self._cells.values()

    def cell_ids(self) -> Iterable[int]:
        """Iterate over the active cell ids."""
        return self._cells.keys()

    def get(self, cell_id: int) -> ClusterCell:
        """Return the cell with the given id; raises ``KeyError`` if absent."""
        return self._cells[cell_id]

    def children_of(self, cell_id: int) -> Set[int]:
        """Ids of the cells that currently depend on ``cell_id``."""
        return set(self._children.get(cell_id, ()))

    # ------------------------------------------------------------------ #
    # structural updates
    # ------------------------------------------------------------------ #
    def insert(self, cell: ClusterCell) -> None:
        """Add an active cell to the tree (initially with no dependency link)."""
        if cell.cell_id in self._cells:
            raise KeyError(f"cell {cell.cell_id} already in DP-Tree")
        self._cells[cell.cell_id] = cell
        self._children.setdefault(cell.cell_id, set())
        if cell.dependency is not None:
            if cell.dependency not in self._cells:
                # Dangling dependency (e.g. the parent was deactivated while
                # this cell sat in the reservoir): treat the cell as a root
                # until the driver recomputes its dependency.
                cell.dependency = None
                cell.delta = float("inf")
            else:
                self._children.setdefault(cell.dependency, set()).add(cell.cell_id)

    def remove(self, cell_id: int) -> ClusterCell:
        """Remove a cell, detaching it from its parent and orphaning its children.

        Children keep their ``dependency`` field pointing at the removed cell
        only if the caller does not fix it; EDMStream always either removes
        whole subtrees (decay) or immediately recomputes the children's
        dependencies, so the tree never exposes dangling links to cluster
        extraction (``_roots`` treats unknown parents as missing).
        """
        if cell_id not in self._cells:
            raise KeyError(f"cell {cell_id} not in DP-Tree")
        cell = self._cells.pop(cell_id)
        if cell.dependency is not None:
            siblings = self._children.get(cell.dependency)
            if siblings is not None:
                siblings.discard(cell_id)
        for child_id in self._children.pop(cell_id, set()):
            child = self._cells.get(child_id)
            if child is not None and child.dependency == cell_id:
                child.dependency = None
                child.delta = float("inf")
        return cell

    def set_dependency(
        self, cell_id: int, dependency: Optional[int], delta: float
    ) -> None:
        """Point ``cell_id`` at a new dependency with dependent distance ``delta``."""
        cell = self._cells[cell_id]
        if dependency is not None:
            if dependency not in self._cells:
                raise KeyError(f"dependency {dependency} not in DP-Tree")
            if dependency == cell_id:
                raise ValueError(f"cell {cell_id} cannot depend on itself")
        if cell.dependency is not None:
            siblings = self._children.get(cell.dependency)
            if siblings is not None:
                siblings.discard(cell_id)
        cell.dependency = dependency
        cell.delta = delta if dependency is not None else float("inf")
        if dependency is not None:
            self._children.setdefault(dependency, set()).add(cell_id)

    def relink_parent(
        self, cell_id: int, old: Optional[int], new: Optional[int]
    ) -> None:
        """Fix the children sets after a bulk dependency write.

        The batch ingestor updates ``dependency``/``delta`` for many cells at
        once through whole-array writes on the cell arena; this repairs only
        the reverse (parent -> children) pointers for one moved link.
        """
        if old is not None:
            siblings = self._children.get(old)
            if siblings is not None:
                siblings.discard(cell_id)
        if new is not None:
            self._children.setdefault(new, set()).add(cell_id)

    def subtree_ids(self, cell_id: int) -> List[int]:
        """All cell ids in the subtree rooted at ``cell_id`` (inclusive)."""
        if cell_id not in self._cells:
            raise KeyError(f"cell {cell_id} not in DP-Tree")
        result = []
        stack = [cell_id]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self._children.get(current, ()))
        return result

    # ------------------------------------------------------------------ #
    # cluster extraction
    # ------------------------------------------------------------------ #
    def _roots(self) -> List[int]:
        """Cells with no (valid) dependency — the density peaks of their mountains."""
        return [
            cid
            for cid, cell in self._cells.items()
            if cell.dependency is None or cell.dependency not in self._cells
        ]

    def clusters(self, tau: float) -> Dict[int, List[int]]:
        """Extract the MSDSubTrees for threshold ``tau``.

        Returns a mapping from cluster-root cell id to the sorted list of
        member cell ids.  A cell starts its own cluster when it has no
        dependency or its dependent distance exceeds ``tau`` (weak link);
        otherwise it joins its dependency's cluster.  Member lists are sorted
        so the result is a pure function of the tree's edges — the traversal
        order of the children sets (which depends on hash-table history) can
        never leak into the output.
        """
        assignment: Dict[int, int] = {}
        members: Dict[int, List[int]] = {}
        # Walk from every root downwards so parents are assigned before children.
        for root in self._roots():
            stack = [root]
            while stack:
                cid = stack.pop()
                cell = self._cells[cid]
                parent = cell.dependency
                if (
                    parent is None
                    or parent not in self._cells
                    or cell.delta > tau
                ):
                    cluster_root = cid
                else:
                    cluster_root = assignment[parent]
                assignment[cid] = cluster_root
                members.setdefault(cluster_root, []).append(cid)
                stack.extend(self._children.get(cid, ()))
        for member_ids in members.values():
            member_ids.sort()
        return members

    def cluster_assignment(self, tau: float) -> Dict[int, int]:
        """Mapping cell id -> cluster-root cell id for threshold ``tau``."""
        assignment: Dict[int, int] = {}
        for root, member_ids in self.clusters(tau).items():
            for cid in member_ids:
                assignment[cid] = root
        return assignment

    def num_clusters(self, tau: float) -> int:
        """Number of MSDSubTrees for threshold ``tau``."""
        return len(self.clusters(tau))

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        """Length of the longest dependency chain (0 for an empty tree)."""
        depths: Dict[int, int] = {}

        def _depth(cid: int) -> int:
            if cid in depths:
                return depths[cid]
            cell = self._cells[cid]
            parent = cell.dependency
            if parent is None or parent not in self._cells:
                depths[cid] = 1
            else:
                depths[cid] = 1 + _depth(parent)
            return depths[cid]

        best = 0
        for cid in self._cells:
            best = max(best, _depth(cid))
        return best

    def deltas(self) -> List[float]:
        """Dependent distances of all cells that have a dependency."""
        return [
            cell.delta
            for cell in self._cells.values()
            if cell.dependency is not None and cell.delta != float("inf")
        ]

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on violation.

        Used by tests and property-based checks:

        * parent/child pointers are mutually consistent,
        * no cell depends on itself,
        * the dependency relation is acyclic.
        """
        for cid, cell in self._cells.items():
            assert cell.dependency != cid, f"cell {cid} depends on itself"
            if cell.dependency is not None and cell.dependency in self._cells:
                assert cid in self._children.get(cell.dependency, set()), (
                    f"cell {cid} missing from children of {cell.dependency}"
                )
        for parent, kids in self._children.items():
            for kid in kids:
                assert kid in self._cells, f"child {kid} of {parent} not in tree"
                assert self._cells[kid].dependency == parent, (
                    f"child {kid} does not point back at {parent}"
                )
        # Acyclicity: follow parent pointers from every node.
        for cid in self._cells:
            seen = set()
            current: Optional[int] = cid
            while current is not None and current in self._cells:
                assert current not in seen, f"dependency cycle through cell {current}"
                seen.add(current)
                current = self._cells[current].dependency
