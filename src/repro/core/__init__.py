"""Core EDMStream implementation.

The sub-modules follow the structure of the paper:

* :mod:`repro.core.decay` — the exponential decay model (Section 3.1).
* :mod:`repro.core.cell` — the cluster-cell summary structure (Definition 4).
* :mod:`repro.core.dptree` — the Dependency Tree over cluster-cells
  (Section 2.2) and MSDSubTree extraction (Definition 2).
* :mod:`repro.core.reservoir` — the outlier reservoir holding inactive
  cluster-cells (Sections 4.1, 4.3 and 4.4).
* :mod:`repro.core.filters` — the density filter (Theorem 1) and the
  triangle-inequality filter (Theorem 2) used to skip dependency updates.
* :mod:`repro.core.evolution` — cluster-evolution tracking (Table 1).
* :mod:`repro.core.adaptive_tau` — adaptive tuning of τ (Section 5).
* :mod:`repro.core.edmstream` — the online EDMStream algorithm (Section 4).
* :mod:`repro.core.persistence` — saving/restoring model state as JSON.
"""

from repro.core.adaptive_tau import TauOptimizer
from repro.core.batch import BatchIngestor
from repro.core.cell import ClusterCell
from repro.core.config import EDMStreamConfig
from repro.core.decay import DecayModel
from repro.core.dptree import DPTree
from repro.core.edmstream import EDMStream
from repro.core.evolution import ClusterEvent, EvolutionTracker, EvolutionType
from repro.core.filters import DependencyFilter, FilterStatistics
from repro.core.reservoir import OutlierReservoir
from repro.core.persistence import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)

__all__ = [
    "BatchIngestor",
    "DecayModel",
    "ClusterCell",
    "DPTree",
    "OutlierReservoir",
    "DependencyFilter",
    "FilterStatistics",
    "EvolutionTracker",
    "EvolutionType",
    "ClusterEvent",
    "TauOptimizer",
    "EDMStreamConfig",
    "EDMStream",
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
]
