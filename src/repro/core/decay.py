"""Exponential time-decay model (Section 3.1 of the paper).

The freshness of a point that arrived at time ``ti`` observed at time ``t``
is ``f = a ** (lambda * (t - ti))`` (Equation 3).  The paper uses
``a = 0.998`` and ``lambda = 1`` so that freshness lies in ``(0, 1]``.

Densities of cluster-cells are sums of freshness values.  Because every
point decays at the same multiplicative rate, a cell's density can be
updated lazily: if a cell had density ``rho`` at time ``tj`` and absorbs a
point at ``tj+1``, its new density is ``a ** (lambda * (tj+1 - tj)) * rho + 1``
(Equation 8).  :class:`DecayModel` implements those primitives plus the
active-threshold and safe-deletion-interval formulas of Sections 4.3-4.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DecayModel:
    """Exponential decay model with base ``a`` and exponent scale ``lam``.

    Parameters
    ----------
    a:
        Decay base, must lie in (0, 1).  The paper uses 0.998.
    lam:
        Decay exponent multiplier λ, must be positive.  The paper uses 1.
    """

    a: float = 0.998
    lam: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.a < 1.0:
            raise ValueError(f"decay base a must be in (0, 1), got {self.a}")
        if self.lam <= 0.0:
            raise ValueError(f"decay exponent lam must be positive, got {self.lam}")

    @property
    def rate(self) -> float:
        """The per-unit-time multiplicative decay factor ``a ** lam``."""
        return self.a ** self.lam

    def freshness(self, arrival_time: float, now: float) -> float:
        """Freshness ``a ** (λ (now - arrival_time))`` of a single point (Eq. 3)."""
        if now < arrival_time:
            raise ValueError(
                f"observation time {now} precedes arrival time {arrival_time}"
            )
        return self.a ** (self.lam * (now - arrival_time))

    def decay_factor(self, elapsed: float) -> float:
        """Multiplicative factor applied to a density after ``elapsed`` time."""
        if elapsed < 0:
            raise ValueError(f"elapsed time must be non-negative, got {elapsed}")
        return self.a ** (self.lam * elapsed)

    def decay_density(self, density: float, elapsed: float) -> float:
        """Decay a density value by ``elapsed`` time units."""
        return density * self.decay_factor(elapsed)

    def absorb(self, density: float, elapsed: float, weight: float = 1.0) -> float:
        """Density after decaying ``elapsed`` time and absorbing one point (Eq. 8).

        ``weight`` allows fractional or weighted points; the paper uses 1.
        """
        return self.decay_density(density, elapsed) + weight

    def total_weight(self, rate: float) -> float:
        """Steady-state sum of freshness for a stream arriving at ``rate`` pt/s.

        The paper (Section 4.3) notes that for an unbounded stream with fixed
        arrival rate ``v`` the sum of all freshness values converges to
        ``v / (1 - a ** λ)``.
        """
        if rate <= 0:
            raise ValueError(f"stream rate must be positive, got {rate}")
        return rate / (1.0 - self.rate)

    def active_threshold(self, beta: float, rate: float) -> float:
        """Density threshold ``β·v / (1 - a^λ)`` separating active from inactive cells."""
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        return beta * self.total_weight(rate)

    def beta_lower_bound(self, rate: float) -> float:
        """Smallest admissible β, ``(1 - a^λ) / v`` (Section 4.3).

        A brand-new cell has density 1 and must be classified as inactive,
        which requires ``1 < β·v / (1 - a^λ)``, i.e. ``β > (1 - a^λ)/v``.
        """
        if rate <= 0:
            raise ValueError(f"stream rate must be positive, got {rate}")
        return (1.0 - self.rate) / rate

    def safe_deletion_interval(self, beta: float, rate: float) -> float:
        """Time ΔT_del after which an idle inactive cell can be deleted (Theorem 3).

        An inactive cell's density is below the active threshold
        ``T = β·v/(1 - a^λ)``; once it has decayed below 1 (the density of a
        brand-new cell) it can never out-compete a freshly created cell and
        is safe to delete.  Solving ``T · a^{λ·ΔT} < 1`` gives

        ``ΔT_del > (log_a(1 - a^λ) - log_a(β·v)) / λ``.

        Theorem 3 in the paper divides by ``λ·v`` because its proof decays
        densities by ``a^{λ·v·ΔT}`` (elapsed *points* rather than elapsed
        time); the expression above is the form consistent with the decay
        function of Equation 3 (``a^{λ·Δt}``) used throughout this library.
        Both agree when time is measured in points (v = 1).
        """
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        if rate <= 0:
            raise ValueError(f"stream rate must be positive, got {rate}")
        log_a = math.log(self.a)
        numerator = math.log(1.0 - self.rate) / log_a - math.log(beta * rate) / log_a
        return numerator / self.lam

    def half_life(self) -> float:
        """Time for freshness to halve; a convenience for choosing parameters."""
        return math.log(0.5) / (self.lam * math.log(self.a))


def equivalent_lambda(a_target: float, decay_rate: float) -> float:
    """Solve ``a_target ** λ == decay_rate`` for λ.

    The paper (Section 6.1) aligns competitors that hard-code a different
    base ``a`` by adjusting λ so that every algorithm decays at the same
    effective rate.  For example DenStream fixes ``a = 2`` and the paper sets
    ``λ = 0.0028`` so that ``2 ** -0.0028... ≈ 0.998``; MR-Stream fixes
    ``a = 1.002`` and uses ``λ = -1``.
    """
    if a_target <= 0 or a_target == 1.0:
        raise ValueError(f"decay base must be positive and != 1, got {a_target}")
    if decay_rate <= 0 or decay_rate >= 1.0:
        raise ValueError(f"target decay rate must be in (0, 1), got {decay_rate}")
    return math.log(decay_rate) / math.log(a_target)
