"""Exponential time-decay model (Section 3.1 of the paper).

The freshness of a point that arrived at time ``ti`` observed at time ``t``
is ``f = a ** (lambda * (t - ti))`` (Equation 3).  The paper uses
``a = 0.998`` and ``lambda = 1`` so that freshness lies in ``(0, 1]``.

Densities of cluster-cells are sums of freshness values.  Because every
point decays at the same multiplicative rate, a cell's density can be
updated lazily: if a cell had density ``rho`` at time ``tj`` and absorbs a
point at ``tj+1``, its new density is ``a ** (lambda * (tj+1 - tj)) * rho + 1``
(Equation 8).  :class:`DecayModel` implements those primitives plus the
active-threshold and safe-deletion-interval formulas of Sections 4.3-4.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Two timestamp gaps within a batch are considered equal (enabling the
#: closed-form geometric sum) when they differ by less than this.
_UNIFORM_SPACING_TOL = 1e-12


@dataclass(frozen=True)
class DecayModel:
    """Exponential decay model with base ``a`` and exponent scale ``lam``.

    Parameters
    ----------
    a:
        Decay base, must lie in (0, 1).  The paper uses 0.998.
    lam:
        Decay exponent multiplier λ, must be positive.  The paper uses 1.
    """

    a: float = 0.998
    lam: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.a < 1.0:
            raise ValueError(f"decay base a must be in (0, 1), got {self.a}")
        if self.lam <= 0.0:
            raise ValueError(f"decay exponent lam must be positive, got {self.lam}")

    @property
    def rate(self) -> float:
        """The per-unit-time multiplicative decay factor ``a ** lam``."""
        return self.a ** self.lam

    def freshness(self, arrival_time: float, now: float) -> float:
        """Freshness ``a ** (λ (now - arrival_time))`` of a single point (Eq. 3)."""
        if now < arrival_time:
            raise ValueError(
                f"observation time {now} precedes arrival time {arrival_time}"
            )
        return self.a ** (self.lam * (now - arrival_time))

    def decay_factor(self, elapsed: float) -> float:
        """Multiplicative factor applied to a density after ``elapsed`` time."""
        if elapsed < 0:
            raise ValueError(f"elapsed time must be non-negative, got {elapsed}")
        return self.a ** (self.lam * elapsed)

    def decay_density(self, density: float, elapsed: float) -> float:
        """Decay a density value by ``elapsed`` time units."""
        return density * self.decay_factor(elapsed)

    def absorb(self, density: float, elapsed: float, weight: float = 1.0) -> float:
        """Density after decaying ``elapsed`` time and absorbing one point (Eq. 8).

        ``weight`` allows fractional or weighted points; the paper uses 1.
        """
        return self.decay_density(density, elapsed) + weight

    # ------------------------------------------------------------------ #
    # batched primitives (micro-batch ingestion)
    # ------------------------------------------------------------------ #
    def decayed_weights(self, arrival_times: np.ndarray, now: float) -> np.ndarray:
        """Freshness ``a ** (λ (now - t_i))`` of several points at once (Eq. 3)."""
        times = np.asarray(arrival_times, dtype=float)
        return self.a ** (self.lam * (now - times))

    def geometric_decay_sum(self, count: int, spacing: float) -> float:
        """Closed-form total freshness of ``count`` evenly spaced points.

        For points arriving at ``now, now - Δ, now - 2Δ, …`` the sum of their
        freshness values at ``now`` is the geometric series

            Σ_{m=0}^{count-1} (a^{λΔ})^m  =  (1 - q^count) / (1 - q),

        with ``q = a^{λΔ}``.  This is the per-(cell, batch) density increment
        of the micro-batch ingestion path: one closed-form evaluation instead
        of ``count`` per-point decay calls.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if spacing < 0:
            raise ValueError(f"spacing must be non-negative, got {spacing}")
        if count == 0:
            return 0.0
        q = self.decay_factor(spacing)
        if q >= 1.0:
            return float(count)
        return (1.0 - q ** count) / (1.0 - q)

    def batch_absorb(
        self, density: float, last_update: float, arrival_times: np.ndarray
    ) -> float:
        """Density after absorbing a whole batch of points (batched Eq. 8).

        ``arrival_times`` must be sorted non-decreasing; the returned density
        is the value at ``arrival_times[-1]``.  Evenly spaced batches (the
        common case for rate-driven streams) use the closed-form geometric
        sum; irregular batches fall back to one vectorised freshness sum.
        """
        times = np.asarray(arrival_times, dtype=float)
        if times.size == 0:
            return density
        now = float(times[-1])
        decayed = self.decay_density(density, max(0.0, now - last_update))
        if times.size == 1:
            return decayed + 1.0
        gaps = np.diff(times)
        if float(np.ptp(gaps)) <= _UNIFORM_SPACING_TOL:
            increment = self.geometric_decay_sum(times.size, float(gaps[0]))
        else:
            increment = float(np.sum(self.decayed_weights(times, now)))
        return decayed + increment

    def absorb_trajectory(
        self, density: float, last_update: float, arrival_times: np.ndarray
    ) -> np.ndarray:
        """Density immediately after each absorption of a batch (batched Eq. 8).

        Returns an array ``d`` with ``d[j]`` equal to the cell's density right
        after absorbing the point at ``arrival_times[j]`` (sorted
        non-decreasing).  Used by the micro-batch path to detect the moment an
        inactive cell crosses the activation threshold without replaying the
        per-point update loop.
        """
        times = np.asarray(arrival_times, dtype=float)
        if times.size == 0:
            return np.empty(0, dtype=float)
        decayed = self.decay_density(density, max(0.0, float(times[0]) - last_update))
        # Work relative to the first arrival so the exponents stay bounded by
        # the batch's time span (a ** (-λ t) overflows for large absolute t);
        # a span so wide that even the relative exponent would overflow falls
        # back to the per-point recurrence (Equation 8 applied stepwise).
        rel = self.lam * (times - times[0])
        if float(rel[-1]) * -math.log(self.a) > 600.0:
            out = np.empty(times.size, dtype=float)
            running = decayed + 1.0
            out[0] = running
            for i in range(1, times.size):
                running = self.decay_density(running, float(times[i] - times[i - 1])) + 1.0
                out[i] = running
            return out
        forward = self.a ** rel
        prefix = forward * np.cumsum(self.a ** (-rel))
        return decayed * forward + prefix

    def total_weight(self, rate: float) -> float:
        """Steady-state sum of freshness for a stream arriving at ``rate`` pt/s.

        The paper (Section 4.3) notes that for an unbounded stream with fixed
        arrival rate ``v`` the sum of all freshness values converges to
        ``v / (1 - a ** λ)``.
        """
        if rate <= 0:
            raise ValueError(f"stream rate must be positive, got {rate}")
        return rate / (1.0 - self.rate)

    def active_threshold(self, beta: float, rate: float) -> float:
        """Density threshold ``β·v / (1 - a^λ)`` separating active from inactive cells."""
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        return beta * self.total_weight(rate)

    def beta_lower_bound(self, rate: float) -> float:
        """Smallest admissible β, ``(1 - a^λ) / v`` (Section 4.3).

        A brand-new cell has density 1 and must be classified as inactive,
        which requires ``1 < β·v / (1 - a^λ)``, i.e. ``β > (1 - a^λ)/v``.
        """
        if rate <= 0:
            raise ValueError(f"stream rate must be positive, got {rate}")
        return (1.0 - self.rate) / rate

    def safe_deletion_interval(self, beta: float, rate: float) -> float:
        """Time ΔT_del after which an idle inactive cell can be deleted (Theorem 3).

        An inactive cell's density is below the active threshold
        ``T = β·v/(1 - a^λ)``; once it has decayed below 1 (the density of a
        brand-new cell) it can never out-compete a freshly created cell and
        is safe to delete.  Solving ``T · a^{λ·ΔT} < 1`` gives

        ``ΔT_del > (log_a(1 - a^λ) - log_a(β·v)) / λ``.

        Theorem 3 in the paper divides by ``λ·v`` because its proof decays
        densities by ``a^{λ·v·ΔT}`` (elapsed *points* rather than elapsed
        time); the expression above is the form consistent with the decay
        function of Equation 3 (``a^{λ·Δt}``) used throughout this library.
        Both agree when time is measured in points (v = 1).
        """
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        if rate <= 0:
            raise ValueError(f"stream rate must be positive, got {rate}")
        log_a = math.log(self.a)
        numerator = math.log(1.0 - self.rate) / log_a - math.log(beta * rate) / log_a
        return numerator / self.lam

    def half_life(self) -> float:
        """Time for freshness to halve; a convenience for choosing parameters."""
        return math.log(0.5) / (self.lam * math.log(self.a))


def equivalent_lambda(a_target: float, decay_rate: float) -> float:
    """Solve ``a_target ** λ == decay_rate`` for λ.

    The paper (Section 6.1) aligns competitors that hard-code a different
    base ``a`` by adjusting λ so that every algorithm decays at the same
    effective rate.  For example DenStream fixes ``a = 2`` and the paper sets
    ``λ = 0.0028`` so that ``2 ** -0.0028... ≈ 0.998``; MR-Stream fixes
    ``a = 1.002`` and uses ``λ = -1``.
    """
    if a_target <= 0 or a_target == 1.0:
        raise ValueError(f"decay base must be positive and != 1, got {a_target}")
    if decay_rate <= 0 or decay_rate >= 1.0:
        raise ValueError(f"target decay rate must be in (0, 1), got {decay_rate}")
    return math.log(decay_rate) / math.log(a_target)
