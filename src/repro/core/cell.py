"""The cluster-cell summary structure (Definition 4).

A cluster-cell summarises a group of close points by a seed point, a timely
density ρ (sum of the member points' freshness) and a dependent distance δ
(distance from the seed to the nearest seed of a higher-density cell).  The
density is stored lazily: ``density`` is the value at ``last_update`` and is
decayed multiplicatively whenever it is read at a later time.

Since the structure-of-arrays refactor, :class:`ClusterCell` is a *thin
view*: all of its numeric state lives in the parallel columns of a
:class:`~repro.core.soa.CellArrays` arena, and the attributes below read and
write those columns in place.  Cells constructed standalone (tests,
deserialisation) are backed by the process-wide detached arena until a model
adopts them into its own; either way the object API — ``absorb``,
``density_at``, ``refresh``, plain attribute access — is unchanged.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.core.decay import DecayModel
from repro.core.soa import CellArrays, detached_arena

_cell_id_counter = itertools.count(1)


def _next_cell_id() -> int:
    return next(_cell_id_counter)


def ensure_cell_id_floor(minimum: int) -> None:
    """Advance the global cell-id counter so new ids start above ``minimum``.

    Used when restoring a persisted model (:mod:`repro.core.persistence`):
    cells created after the restore must not collide with the restored ids.
    """
    global _cell_id_counter
    current = next(_cell_id_counter)
    _cell_id_counter = itertools.count(max(current, minimum + 1))


class ClusterCell:
    """A cluster-cell: seed point + timely density + dependency information.

    Parameters
    ----------
    seed:
        The seed point.  A cell summarises the points whose nearest seed is
        this one and whose distance to it is at most the radius ``r``.  The
        seed never moves after creation.
    density:
        Timely density ρ at time ``last_update``.
    created_at:
        Time the cell was created (= arrival time of its seed point).
    last_update:
        Time at which ``density`` was last brought up to date.
    last_absorb:
        Time the cell last absorbed a point (used for outdated-cell deletion).
    dependency:
        Cell id of the nearest higher-density cell (``None`` for the absolute
        density peak, the root of the DP-Tree).
    delta:
        Dependent distance δ to the dependency (``inf`` for the root).
    points_absorbed:
        Total number of points ever absorbed (not decayed; bookkeeping only).
    cell_id:
        Unique id; auto-assigned from a process-global counter when omitted.
    label_votes:
        Optional ground-truth label histogram maintained by the evaluation
        harness; the clusterer itself never reads it.
    """

    __slots__ = ("_arrays", "_slot", "__weakref__")

    def __init__(
        self,
        seed: Any,
        density: float = 1.0,
        created_at: float = 0.0,
        last_update: float = 0.0,
        last_absorb: float = 0.0,
        dependency: Optional[int] = None,
        delta: float = float("inf"),
        points_absorbed: int = 1,
        cell_id: Optional[int] = None,
        label_votes: Optional[Dict[int, int]] = None,
        _arena: Optional[CellArrays] = None,
    ) -> None:
        arena = detached_arena() if _arena is None else _arena
        if cell_id is None:
            cell_id = _next_cell_id()
        self._arrays = arena
        self._slot = arena.allocate(
            cell_id,
            seed,
            density=density,
            created_at=created_at,
            last_update=last_update,
            last_absorb=last_absorb,
            dependency=dependency,
            delta=delta,
            points_absorbed=points_absorbed,
        )
        if label_votes:
            arena._label_votes[self._slot] = dict(label_votes)
        if _arena is not None:
            arena.register_view(cell_id, self)

    def __del__(self) -> None:
        # Standalone cells (detached arena, never registered) recycle their
        # slot when garbage-collected; model-owned cells are released
        # explicitly by the model.
        try:
            arrays = self._arrays
            if arrays is detached_arena() and self._slot >= 0:
                arrays.release(int(arrays.cell_ids[self._slot]))
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    # ------------------------------------------------------------------ #
    # column-backed attributes
    # ------------------------------------------------------------------ #
    @property
    def cell_id(self) -> int:
        """Unique id of this cell (process-global, never reused)."""
        return int(self._arrays.cell_ids[self._slot])

    @property
    def seed(self) -> Any:
        """The (immutable) seed point this cell was created from."""
        return self._arrays.seed_of(self._slot)

    @property
    def density(self) -> float:
        """Timely density ρ at time :attr:`last_update`."""
        return float(self._arrays.density[self._slot])

    @density.setter
    def density(self, value: float) -> None:
        """Overwrite the stored (undecayed) density column in place."""
        self._arrays.density[self._slot] = value

    @property
    def created_at(self) -> float:
        """Time the cell was created."""
        return float(self._arrays.created_at[self._slot])

    @created_at.setter
    def created_at(self, value: float) -> None:
        """Overwrite the creation-time column in place."""
        self._arrays.created_at[self._slot] = value

    @property
    def last_update(self) -> float:
        """Time at which :attr:`density` was last brought up to date."""
        return float(self._arrays.last_update[self._slot])

    @last_update.setter
    def last_update(self, value: float) -> None:
        """Overwrite the density-currency timestamp column in place."""
        self._arrays.last_update[self._slot] = value

    @property
    def last_absorb(self) -> float:
        """Time the cell last absorbed a point."""
        return float(self._arrays.last_absorb[self._slot])

    @last_absorb.setter
    def last_absorb(self, value: float) -> None:
        """Overwrite the last-absorption timestamp column in place."""
        self._arrays.last_absorb[self._slot] = value

    @property
    def dependency(self) -> Optional[int]:
        """Cell id of the nearest higher-density cell (``None`` for the root)."""
        dep = self._arrays.dep[self._slot]
        return None if dep < 0 else int(dep)

    @dependency.setter
    def dependency(self, value: Optional[int]) -> None:
        """Write the dependency id column (``None`` clears it to -1)."""
        self._arrays.dep[self._slot] = -1 if value is None else value

    @property
    def delta(self) -> float:
        """Dependent distance δ to the dependency (``inf`` for the root)."""
        return float(self._arrays.delta[self._slot])

    @delta.setter
    def delta(self, value: float) -> None:
        """Overwrite the dependent-distance column in place."""
        self._arrays.delta[self._slot] = value

    @property
    def points_absorbed(self) -> int:
        """Total number of points ever absorbed (bookkeeping only)."""
        return int(self._arrays.points_absorbed[self._slot])

    @points_absorbed.setter
    def points_absorbed(self, value: int) -> None:
        """Overwrite the lifetime absorption counter in place."""
        self._arrays.points_absorbed[self._slot] = value

    @property
    def label_votes(self) -> Dict[int, int]:
        """Ground-truth label histogram (evaluation bookkeeping only)."""
        return self._arrays.label_votes_of(self._slot)

    # ------------------------------------------------------------------ #
    # behaviour
    # ------------------------------------------------------------------ #
    def density_at(self, now: float, decay: DecayModel) -> float:
        """Timely density at time ``now`` (lazy decay of the stored value)."""
        density = float(self._arrays.density[self._slot])
        last_update = float(self._arrays.last_update[self._slot])
        if now < last_update:
            # Clock skew guard: never "undecay"; treat as current value.
            return density
        return decay.decay_density(density, now - last_update)

    def refresh(self, now: float, decay: DecayModel) -> float:
        """Decay the stored density up to ``now`` and return it."""
        density = self.density_at(now, decay)
        self._arrays.density[self._slot] = density
        self._arrays.last_update[self._slot] = now
        return density

    def absorb(self, now: float, decay: DecayModel, weight: float = 1.0,
               label: Optional[int] = None) -> float:
        """Absorb a point at time ``now`` (Equation 8) and return the new density."""
        density = self.density_at(now, decay) + weight
        arrays, slot = self._arrays, self._slot
        arrays.density[slot] = density
        arrays.last_update[slot] = now
        arrays.last_absorb[slot] = now
        arrays.points_absorbed[slot] += 1
        if label is not None:
            votes = arrays.label_votes_of(slot)
            votes[label] = votes.get(label, 0) + 1
        return density

    def majority_label(self) -> Optional[int]:
        """Most frequent ground-truth label among absorbed points, if tracked."""
        votes = self._arrays._label_votes.get(self._slot)
        if not votes:
            return None
        return max(votes.items(), key=lambda kv: kv[1])[0]

    def idle_time(self, now: float) -> float:
        """Time since the cell last absorbed a point."""
        return max(0.0, now - self.last_absorb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dep = self.dependency if self.dependency is not None else "root"
        return (
            f"ClusterCell(id={self.cell_id}, rho={self.density:.3f}, "
            f"delta={self.delta:.3f}, dep={dep})"
        )
