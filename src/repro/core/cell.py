"""The cluster-cell summary structure (Definition 4).

A cluster-cell summarises a group of close points by a seed point, a timely
density ρ (sum of the member points' freshness) and a dependent distance δ
(distance from the seed to the nearest seed of a higher-density cell).  The
density is stored lazily: ``density`` is the value at ``last_update`` and is
decayed multiplicatively whenever it is read at a later time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.decay import DecayModel

_cell_id_counter = itertools.count(1)


def _next_cell_id() -> int:
    return next(_cell_id_counter)


def ensure_cell_id_floor(minimum: int) -> None:
    """Advance the global cell-id counter so new ids start above ``minimum``.

    Used when restoring a persisted model (:mod:`repro.core.persistence`):
    cells created after the restore must not collide with the restored ids.
    """
    global _cell_id_counter
    current = next(_cell_id_counter)
    _cell_id_counter = itertools.count(max(current, minimum + 1))


@dataclass
class ClusterCell:
    """A cluster-cell: seed point + timely density + dependency information.

    Parameters
    ----------
    seed:
        The seed point.  A cell summarises the points whose nearest seed is
        this one and whose distance to it is at most the radius ``r``.  The
        seed never moves after creation.
    density:
        Timely density ρ at time ``last_update``.
    created_at:
        Time the cell was created (= arrival time of its seed point).
    last_update:
        Time at which ``density`` was last brought up to date.
    last_absorb:
        Time the cell last absorbed a point (used for outdated-cell deletion).
    dependency:
        Cell id of the nearest higher-density cell (``None`` for the absolute
        density peak, the root of the DP-Tree).
    delta:
        Dependent distance δ to the dependency (``inf`` for the root).
    points_absorbed:
        Total number of points ever absorbed (not decayed; bookkeeping only).
    label_votes:
        Optional ground-truth label histogram maintained by the evaluation
        harness; the clusterer itself never reads it.
    """

    seed: Any
    density: float = 1.0
    created_at: float = 0.0
    last_update: float = 0.0
    last_absorb: float = 0.0
    dependency: Optional[int] = None
    delta: float = float("inf")
    points_absorbed: int = 1
    cell_id: int = field(default_factory=_next_cell_id)
    label_votes: dict = field(default_factory=dict)

    def density_at(self, now: float, decay: DecayModel) -> float:
        """Timely density at time ``now`` (lazy decay of the stored value)."""
        if now < self.last_update:
            # Clock skew guard: never "undecay"; treat as current value.
            return self.density
        return decay.decay_density(self.density, now - self.last_update)

    def refresh(self, now: float, decay: DecayModel) -> float:
        """Decay the stored density up to ``now`` and return it."""
        self.density = self.density_at(now, decay)
        self.last_update = now
        return self.density

    def absorb(self, now: float, decay: DecayModel, weight: float = 1.0,
               label: Optional[int] = None) -> float:
        """Absorb a point at time ``now`` (Equation 8) and return the new density."""
        self.density = self.density_at(now, decay) + weight
        self.last_update = now
        self.last_absorb = now
        self.points_absorbed += 1
        if label is not None:
            self.label_votes[label] = self.label_votes.get(label, 0) + 1
        return self.density

    def majority_label(self) -> Optional[int]:
        """Most frequent ground-truth label among absorbed points, if tracked."""
        if not self.label_votes:
            return None
        return max(self.label_votes.items(), key=lambda kv: kv[1])[0]

    def idle_time(self, now: float) -> float:
        """Time since the cell last absorbed a point."""
        return max(0.0, now - self.last_absorb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dep = self.dependency if self.dependency is not None else "root"
        return (
            f"ClusterCell(id={self.cell_id}, rho={self.density:.3f}, "
            f"delta={self.delta:.3f}, dep={dep})"
        )
