"""The outlier reservoir (Sections 4.1, 4.3 and 4.4).

Cluster-cells with low timely density are *inactive*: they are not part of
the DP-Tree and do not participate in clustering, but they are kept in the
reservoir because they may absorb new points and become active again.  An
inactive cell that has not absorbed a point for the safe-deletion interval
ΔT_del (Theorem 3) is *outdated* and can be deleted without affecting future
results.  Section 4.4 bounds the reservoir size by ``ΔT_del · v + 1/β``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.cell import ClusterCell
from repro.core.decay import DecayModel


class OutlierReservoir:
    """Container for inactive cluster-cells with outdated-cell recycling."""

    def __init__(
        self,
        decay: DecayModel,
        beta: float,
        stream_rate: float,
        delete_outdated: bool = True,
        deletion_interval: Optional[float] = None,
    ) -> None:
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        if stream_rate <= 0:
            raise ValueError(f"stream_rate must be positive, got {stream_rate}")
        if deletion_interval is not None and deletion_interval <= 0:
            raise ValueError(
                f"deletion_interval must be positive when given, got {deletion_interval}"
            )
        self._decay = decay
        self._beta = beta
        self._rate = stream_rate
        self._delete_outdated = delete_outdated
        self._deletion_interval = deletion_interval
        self._cells: Dict[int, ClusterCell] = {}
        self.total_deleted = 0

    # ------------------------------------------------------------------ #
    # thresholds derived from the decay model
    # ------------------------------------------------------------------ #
    @property
    def active_threshold(self) -> float:
        """Density above which a cell is active: ``β·v / (1 - a^λ)``."""
        return self._decay.active_threshold(self._beta, self._rate)

    @property
    def deletion_interval(self) -> float:
        """Safe deletion interval ΔT_del (Theorem 3), unless overridden."""
        if self._deletion_interval is not None:
            return self._deletion_interval
        return self._decay.safe_deletion_interval(self._beta, self._rate)

    @property
    def size_upper_bound(self) -> float:
        """Theoretical maximum number of inactive cells, ``ΔT_del·v + 1/β``."""
        return self.deletion_interval * self._rate + 1.0 / self._beta

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, cell_id: int) -> bool:
        return cell_id in self._cells

    def __iter__(self) -> Iterator[ClusterCell]:
        return iter(self._cells.values())

    def cells(self) -> Iterable[ClusterCell]:
        """Iterate over the inactive cells."""
        return self._cells.values()

    def get(self, cell_id: int) -> ClusterCell:
        """Return an inactive cell by id; raises ``KeyError`` if absent."""
        return self._cells[cell_id]

    # ------------------------------------------------------------------ #
    # membership updates
    # ------------------------------------------------------------------ #
    def add(self, cell: ClusterCell) -> None:
        """Cache an inactive cell; raises ``KeyError`` if already present."""
        if cell.cell_id in self._cells:
            raise KeyError(f"cell {cell.cell_id} already in outlier reservoir")
        # Dependency information is meaningless outside the DP-Tree.
        cell.dependency = None
        cell.delta = float("inf")
        self._cells[cell.cell_id] = cell

    def pop(self, cell_id: int) -> ClusterCell:
        """Remove and return a cell (e.g. because it became active)."""
        if cell_id not in self._cells:
            raise KeyError(f"cell {cell_id} not in outlier reservoir")
        return self._cells.pop(cell_id)

    def is_active(self, cell: ClusterCell, now: float) -> bool:
        """Whether a cell's timely density reaches the active threshold."""
        return cell.density_at(now, self._decay) >= self.active_threshold

    def promotable(self, now: float) -> List[ClusterCell]:
        """Inactive cells whose density currently reaches the active threshold."""
        return [cell for cell in self._cells.values() if self.is_active(cell, now)]

    def prune_outdated(self, now: float) -> List[ClusterCell]:
        """Delete and return cells idle for longer than ΔT_del (Section 4.4)."""
        if not self._delete_outdated:
            return []
        horizon = self.deletion_interval
        removed = [
            cell for cell in self._cells.values() if cell.idle_time(now) > horizon
        ]
        for cell in removed:
            del self._cells[cell.cell_id]
        self.total_deleted += len(removed)
        return removed
