"""Classical external clustering-quality metrics.

All functions take two parallel label sequences — ground-truth labels and
predicted cluster labels — and ignore nothing by default: callers that want
to exclude outliers (label -1) should filter beforehand, except for
``purity`` and ``f_measure`` which accept an ``ignore_noise`` flag because
that is how they are conventionally reported for density-based clusterings.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Hashable, Sequence


def _check_lengths(true_labels: Sequence, predicted_labels: Sequence) -> None:
    if len(true_labels) != len(predicted_labels):
        raise ValueError(
            f"label sequences differ in length: {len(true_labels)} vs {len(predicted_labels)}"
        )


def contingency_table(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> Dict[Hashable, Counter]:
    """Contingency table: predicted cluster -> Counter of true labels."""
    _check_lengths(true_labels, predicted_labels)
    table: Dict[Hashable, Counter] = defaultdict(Counter)
    for truth, predicted in zip(true_labels, predicted_labels):
        table[predicted][truth] += 1
    return dict(table)


def purity(
    true_labels: Sequence[Hashable],
    predicted_labels: Sequence[Hashable],
    ignore_noise: bool = False,
    noise_label: Hashable = -1,
) -> float:
    """Fraction of points whose cluster's majority class matches their class."""
    _check_lengths(true_labels, predicted_labels)
    pairs = list(zip(true_labels, predicted_labels))
    if ignore_noise:
        pairs = [(t, p) for t, p in pairs if p != noise_label]
    if not pairs:
        return 0.0
    table: Dict[Hashable, Counter] = defaultdict(Counter)
    for truth, predicted in pairs:
        table[predicted][truth] += 1
    correct = sum(counter.most_common(1)[0][1] for counter in table.values())
    return correct / len(pairs)


def f_measure(
    true_labels: Sequence[Hashable],
    predicted_labels: Sequence[Hashable],
    beta: float = 1.0,
    ignore_noise: bool = False,
    noise_label: Hashable = -1,
) -> float:
    """Pairwise F-measure: harmonic mean of pairwise precision and recall."""
    _check_lengths(true_labels, predicted_labels)
    pairs = list(zip(true_labels, predicted_labels))
    if ignore_noise:
        pairs = [(t, p) for t, p in pairs if p != noise_label]
    n = len(pairs)
    if n < 2:
        return 0.0

    def _pair_count(counts: Counter) -> int:
        return sum(c * (c - 1) // 2 for c in counts.values())

    true_counts = Counter(t for t, _ in pairs)
    predicted_counts = Counter(p for _, p in pairs)
    joint_counts = Counter(pairs)

    same_both = _pair_count(joint_counts)
    same_true = _pair_count(true_counts)
    same_predicted = _pair_count(predicted_counts)

    precision = same_both / same_predicted if same_predicted else 0.0
    recall = same_both / same_true if same_true else 0.0
    if precision == 0.0 and recall == 0.0:
        return 0.0
    beta_sq = beta * beta
    return (1 + beta_sq) * precision * recall / (beta_sq * precision + recall)


def rand_index(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> float:
    """Rand index: fraction of point pairs on which the two labelings agree."""
    _check_lengths(true_labels, predicted_labels)
    n = len(true_labels)
    if n < 2:
        return 1.0

    def _pair_count(counts: Counter) -> int:
        return sum(c * (c - 1) // 2 for c in counts.values())

    total_pairs = n * (n - 1) // 2
    joint = Counter(zip(true_labels, predicted_labels))
    true_counts = Counter(true_labels)
    predicted_counts = Counter(predicted_labels)

    same_both = _pair_count(joint)
    same_true = _pair_count(true_counts)
    same_predicted = _pair_count(predicted_counts)
    agreements = total_pairs + 2 * same_both - same_true - same_predicted
    return agreements / total_pairs


def adjusted_rand_index(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> float:
    """Adjusted Rand index (chance-corrected)."""
    _check_lengths(true_labels, predicted_labels)
    n = len(true_labels)
    if n < 2:
        return 1.0

    def _comb2(value: int) -> float:
        return value * (value - 1) / 2.0

    joint = Counter(zip(true_labels, predicted_labels))
    true_counts = Counter(true_labels)
    predicted_counts = Counter(predicted_labels)

    sum_joint = sum(_comb2(c) for c in joint.values())
    sum_true = sum(_comb2(c) for c in true_counts.values())
    sum_predicted = sum(_comb2(c) for c in predicted_counts.values())
    total = _comb2(n)

    expected = sum_true * sum_predicted / total if total else 0.0
    maximum = (sum_true + sum_predicted) / 2.0
    denominator = maximum - expected
    if denominator == 0:
        return 1.0
    return (sum_joint - expected) / denominator


def normalized_mutual_information(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> float:
    """NMI with arithmetic-mean normalisation; in [0, 1]."""
    _check_lengths(true_labels, predicted_labels)
    n = len(true_labels)
    if n == 0:
        return 0.0
    joint = Counter(zip(true_labels, predicted_labels))
    true_counts = Counter(true_labels)
    predicted_counts = Counter(predicted_labels)

    mutual_information = 0.0
    for (truth, predicted), count in joint.items():
        p_joint = count / n
        p_true = true_counts[truth] / n
        p_predicted = predicted_counts[predicted] / n
        mutual_information += p_joint * math.log(p_joint / (p_true * p_predicted))

    def _entropy(counts: Counter) -> float:
        return -sum((c / n) * math.log(c / n) for c in counts.values() if c > 0)

    h_true = _entropy(true_counts)
    h_predicted = _entropy(predicted_counts)
    if h_true == 0.0 and h_predicted == 0.0:
        return 1.0
    denominator = (h_true + h_predicted) / 2.0
    if denominator == 0.0:
        return 0.0
    return max(0.0, mutual_information / denominator)
