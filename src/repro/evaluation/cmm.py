"""CMM — the Cluster Mapping Measure (Kremer et al., KDD 2011).

CMM is the external quality criterion used in Section 6.4.  Unlike purity or
the F-measure it is designed for *evolving* streams: objects are weighted by
their freshness, found clusters are mapped to ground-truth classes by
majority, and only *fault objects* contribute a penalty:

* **missed objects** — objects of a ground-truth class that the clustering
  left unassigned (outliers), although they are well connected to their class;
* **misplaced objects** — objects placed in a cluster that is mapped to a
  different class;
* **noise inclusion** — noise objects placed inside a cluster.

The penalty of a fault object is scaled by its *connectivity* to the classes
involved, where connectivity is defined through average k-nearest-neighbour
distances: an object far from its own class (low connectivity) is cheap to
miss, an object deeply embedded in a foreign cluster is expensive.

    CMM(C, CL) = 1 - Σ_{o ∈ F} w(o)·pen(o, C) / Σ_{o ∈ F} w(o)·con(o, Cl(o))

with CMM = 1 when there are no fault objects.  This implementation follows
the published definition with one simplification, documented in
EXPERIMENTS.md: ground-truth classes are used directly as the reference
clustering (the original optionally splits classes into sub-clusters first).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence

import numpy as np


@dataclass
class CMMResult:
    """Outcome of a CMM evaluation."""

    value: float
    n_objects: int
    n_faults: int
    n_missed: int
    n_misplaced: int
    n_noise_inclusion: int
    penalty: float
    normalisation: float

    def __float__(self) -> float:  # pragma: no cover - convenience
        return self.value


class CMM:
    """Cluster Mapping Measure for evolving data streams.

    Parameters
    ----------
    k:
        Neighbourhood size used by the connectivity computation.
    noise_label:
        Ground-truth label denoting noise objects.
    outlier_label:
        Predicted label denoting "not clustered".
    decay_a, decay_lambda:
        Weighting of objects by age: ``w(o) = a^(λ·(t_now - t_o))``.  The
        defaults match the paper's decay model.
    """

    def __init__(
        self,
        k: int = 5,
        noise_label: int = -1,
        outlier_label: int = -1,
        decay_a: float = 0.998,
        decay_lambda: float = 1.0,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.noise_label = noise_label
        self.outlier_label = outlier_label
        self.decay_a = decay_a
        self.decay_lambda = decay_lambda

    # ------------------------------------------------------------------ #
    # connectivity helpers
    # ------------------------------------------------------------------ #
    def _knn_distance(self, point: np.ndarray, members: np.ndarray) -> float:
        """Average distance from ``point`` to its k nearest members."""
        if members.shape[0] == 0:
            return math.inf
        diffs = members - point
        distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        distances.sort()
        k = min(self.k, distances.shape[0])
        return float(distances[:k].mean())

    def _group_knn_distance(self, members: np.ndarray) -> float:
        """Average of the members' average k-NN distances within the group."""
        n = members.shape[0]
        if n <= 1:
            return 0.0
        total = 0.0
        for i in range(n):
            others = np.delete(members, i, axis=0)
            total += self._knn_distance(members[i], others)
        return total / n

    def _connectivity(
        self, point: np.ndarray, members: np.ndarray, group_knn: float
    ) -> float:
        """Connectivity of ``point`` to the group (1 = well connected)."""
        if members.shape[0] == 0:
            return 0.0
        point_knn = self._knn_distance(point, members)
        if point_knn <= group_knn or point_knn == 0.0:
            return 1.0
        if group_knn == 0.0:
            return 0.0
        return group_knn / point_knn

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        points: Sequence[Sequence[float]],
        true_labels: Sequence[int],
        predicted_labels: Sequence[int],
        timestamps: Optional[Sequence[float]] = None,
        now: Optional[float] = None,
    ) -> CMMResult:
        """Evaluate CMM over a window of points.

        Parameters
        ----------
        points:
            Numeric attribute vectors of the window.
        true_labels:
            Ground-truth class per point (``noise_label`` for noise).
        predicted_labels:
            Found cluster per point (``outlier_label`` for unassigned).
        timestamps:
            Arrival times used for the freshness weights; ``None`` weights
            every object equally.
        now:
            Evaluation time; defaults to the latest timestamp.
        """
        matrix = np.asarray(points, dtype=float)
        n = matrix.shape[0] if matrix.ndim == 2 else 0
        if n == 0:
            return CMMResult(1.0, 0, 0, 0, 0, 0, 0.0, 0.0)
        if len(true_labels) != n or len(predicted_labels) != n:
            raise ValueError("points, true_labels and predicted_labels must have equal length")

        if timestamps is None:
            weights = np.ones(n, dtype=float)
        else:
            times = np.asarray(timestamps, dtype=float)
            current = float(times.max()) if now is None else now
            weights = self.decay_a ** (self.decay_lambda * np.maximum(0.0, current - times))

        true_arr = np.asarray(true_labels)
        predicted_arr = np.asarray(predicted_labels)

        # Members and group k-NN distance per ground-truth class (excluding noise).
        class_members: Dict[Hashable, np.ndarray] = {}
        class_knn: Dict[Hashable, float] = {}
        for label in set(true_arr.tolist()):
            if label == self.noise_label:
                continue
            members = matrix[true_arr == label]
            class_members[label] = members
            class_knn[label] = self._group_knn_distance(members)

        # Map each found cluster to the ground-truth class contributing most weight.
        cluster_to_class: Dict[Hashable, Hashable] = {}
        for cluster in set(predicted_arr.tolist()):
            if cluster == self.outlier_label:
                continue
            mask = predicted_arr == cluster
            best_class = None
            best_weight = -1.0
            for label in class_members:
                weight = float(weights[mask & (true_arr == label)].sum())
                if weight > best_weight:
                    best_weight = weight
                    best_class = label
            cluster_to_class[cluster] = best_class

        # The normalisation term accumulates every object's weighted
        # connectivity to its own class, so CMM expresses the fault penalty
        # as a fraction of the total "connectivity mass" in the window: a
        # single fault among many well-clustered objects costs little, while
        # missing everything drives CMM to 0.
        penalty = 0.0
        normalisation = 0.0
        n_missed = n_misplaced = n_noise = 0

        for i in range(n):
            truth = true_arr[i]
            predicted = predicted_arr[i]
            weight = float(weights[i])
            point = matrix[i]

            if truth == self.noise_label:
                normalisation += weight * 1.0
                if predicted == self.outlier_label:
                    continue  # correctly identified noise
                # Noise inclusion: penalise by connectivity to the mapped class.
                mapped = cluster_to_class.get(predicted)
                if mapped is None or mapped not in class_members:
                    continue
                connectivity = self._connectivity(
                    point, class_members[mapped], class_knn[mapped]
                )
                penalty += weight * connectivity
                n_noise += 1
                continue

            own_members = class_members.get(truth)
            own_knn = class_knn.get(truth, 0.0)
            own_connectivity = (
                self._connectivity(point, own_members, own_knn)
                if own_members is not None
                else 0.0
            )
            normalisation += weight * own_connectivity

            if predicted == self.outlier_label:
                # Missed object.
                penalty += weight * own_connectivity
                n_missed += 1
                continue

            mapped = cluster_to_class.get(predicted)
            if mapped == truth:
                continue  # correctly placed
            # Misplaced object: penalty grows with how connected the object is
            # to its own class and how poorly it fits the mapped class.
            if mapped is not None and mapped in class_members:
                foreign_connectivity = self._connectivity(
                    point, class_members[mapped], class_knn[mapped]
                )
            else:
                foreign_connectivity = 0.0
            penalty += weight * own_connectivity * (1.0 - foreign_connectivity)
            n_misplaced += 1

        n_faults = n_missed + n_misplaced + n_noise
        if n_faults == 0 or normalisation <= 0.0:
            value = 1.0
        else:
            value = max(0.0, min(1.0, 1.0 - penalty / normalisation))
        return CMMResult(
            value=value,
            n_objects=n,
            n_faults=n_faults,
            n_missed=n_missed,
            n_misplaced=n_misplaced,
            n_noise_inclusion=n_noise,
            penalty=penalty,
            normalisation=normalisation,
        )

    def __call__(self, *args, **kwargs) -> float:
        """Shorthand returning only the CMM value."""
        return self.evaluate(*args, **kwargs).value
