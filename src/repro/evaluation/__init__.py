"""Cluster-quality evaluation.

* :mod:`repro.evaluation.cmm` — the Cluster Mapping Measure (CMM) of Kremer
  et al. (KDD 2011), the external criterion used throughout Section 6.4: it
  weights objects by their freshness and penalises missed objects, misplaced
  objects and noise inclusion.
* :mod:`repro.evaluation.external` — classical external metrics (purity,
  F-measure, Rand index, adjusted Rand index, normalised mutual information)
  used as supporting measurements and in tests.
* :mod:`repro.evaluation.internal` — ground-truth-free metrics (silhouette,
  Davies–Bouldin, Dunn, SSQ, within/between ratio) used for unlabelled
  streams and the adaptive-τ ablation.
"""

from repro.evaluation.cmm import CMM, CMMResult
from repro.evaluation.external import (
    adjusted_rand_index,
    contingency_table,
    f_measure,
    normalized_mutual_information,
    purity,
    rand_index,
)
from repro.evaluation.internal import (
    cluster_centroids,
    davies_bouldin_index,
    dunn_index,
    silhouette_score,
    sum_of_squared_errors,
    within_between_ratio,
)

__all__ = [
    "CMM",
    "CMMResult",
    "purity",
    "f_measure",
    "rand_index",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "contingency_table",
    "silhouette_score",
    "davies_bouldin_index",
    "dunn_index",
    "sum_of_squared_errors",
    "within_between_ratio",
    "cluster_centroids",
]
