"""Internal (ground-truth-free) cluster quality metrics.

The paper evaluates quality with the external CMM criterion, which needs
ground-truth labels.  For streams without labels — and for the ablation
experiments on the adaptive τ objective — internal criteria that judge a
clustering purely from the geometry of the points are useful:

* :func:`silhouette_score` — mean silhouette coefficient,
* :func:`davies_bouldin_index` — average worst-case cluster similarity
  (lower is better),
* :func:`dunn_index` — minimum inter-cluster separation over maximum
  intra-cluster diameter (higher is better),
* :func:`sum_of_squared_errors` — total squared distance to cluster
  centroids (the k-means objective),
* :func:`within_between_ratio` — mean intra-cluster distance over mean
  inter-cluster distance, the geometric analogue of the paper's τ objective
  (Equation 15).

All functions take a point matrix and an integer label per point; points
labelled ``noise_label`` (default ``-1``) are excluded, mirroring how the
paper excludes outliers/halos from the objective function.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "silhouette_score",
    "davies_bouldin_index",
    "dunn_index",
    "sum_of_squared_errors",
    "within_between_ratio",
    "cluster_centroids",
]


def _validated(
    points: Sequence[Sequence[float]],
    labels: Sequence[int],
    noise_label: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop noise points and return aligned (points, labels) arrays."""
    matrix = np.asarray(points, dtype=float)
    label_arr = np.asarray(labels, dtype=int)
    if matrix.ndim != 2:
        raise ValueError("points must be a 2-D array-like")
    if matrix.shape[0] != label_arr.shape[0]:
        raise ValueError(
            f"points ({matrix.shape[0]}) and labels ({label_arr.shape[0]}) lengths differ"
        )
    keep = label_arr != noise_label
    return matrix[keep], label_arr[keep]


def cluster_centroids(
    points: Sequence[Sequence[float]],
    labels: Sequence[int],
    noise_label: int = -1,
) -> Dict[int, np.ndarray]:
    """Centroid of every non-noise cluster."""
    matrix, label_arr = _validated(points, labels, noise_label)
    centroids: Dict[int, np.ndarray] = {}
    for label in np.unique(label_arr):
        centroids[int(label)] = matrix[label_arr == label].mean(axis=0)
    return centroids


def sum_of_squared_errors(
    points: Sequence[Sequence[float]],
    labels: Sequence[int],
    noise_label: int = -1,
) -> float:
    """Total squared distance of every point to its cluster centroid (SSQ)."""
    matrix, label_arr = _validated(points, labels, noise_label)
    if matrix.shape[0] == 0:
        return 0.0
    total = 0.0
    for label in np.unique(label_arr):
        members = matrix[label_arr == label]
        centroid = members.mean(axis=0)
        total += float(((members - centroid) ** 2).sum())
    return total


def silhouette_score(
    points: Sequence[Sequence[float]],
    labels: Sequence[int],
    noise_label: int = -1,
) -> float:
    """Mean silhouette coefficient over the non-noise points.

    The silhouette of a point is ``(b - a) / max(a, b)`` where ``a`` is its
    mean distance to its own cluster and ``b`` its mean distance to the
    nearest other cluster.  Returns 0 for degenerate inputs (fewer than two
    clusters, or every cluster a singleton), matching the common convention.
    """
    matrix, label_arr = _validated(points, labels, noise_label)
    n = matrix.shape[0]
    unique = np.unique(label_arr)
    if n < 2 or unique.size < 2:
        return 0.0

    squared = np.sum(matrix ** 2, axis=1)
    distances = np.sqrt(
        np.maximum(squared[:, None] + squared[None, :] - 2.0 * matrix @ matrix.T, 0.0)
    )

    masks = {int(label): label_arr == label for label in unique}
    silhouettes = np.zeros(n, dtype=float)
    for i in range(n):
        own = masks[int(label_arr[i])]
        own_size = int(own.sum())
        if own_size <= 1:
            silhouettes[i] = 0.0
            continue
        a = distances[i, own].sum() / (own_size - 1)
        b = np.inf
        for label, mask in masks.items():
            if label == int(label_arr[i]):
                continue
            b = min(b, distances[i, mask].mean())
        denominator = max(a, b)
        silhouettes[i] = 0.0 if denominator == 0 else (b - a) / denominator
    return float(silhouettes.mean())


def davies_bouldin_index(
    points: Sequence[Sequence[float]],
    labels: Sequence[int],
    noise_label: int = -1,
) -> float:
    """Davies–Bouldin index (average worst-case cluster similarity; lower is better).

    Returns 0 for degenerate inputs with fewer than two clusters.
    """
    matrix, label_arr = _validated(points, labels, noise_label)
    unique = np.unique(label_arr)
    if unique.size < 2:
        return 0.0

    centroids = []
    scatters = []
    for label in unique:
        members = matrix[label_arr == label]
        centroid = members.mean(axis=0)
        centroids.append(centroid)
        scatters.append(float(np.linalg.norm(members - centroid, axis=1).mean()))
    centroid_matrix = np.asarray(centroids)

    k = unique.size
    worst = np.zeros(k, dtype=float)
    for i in range(k):
        for j in range(k):
            if i == j:
                continue
            separation = float(np.linalg.norm(centroid_matrix[i] - centroid_matrix[j]))
            if separation == 0:
                ratio = np.inf
            else:
                ratio = (scatters[i] + scatters[j]) / separation
            worst[i] = max(worst[i], ratio)
    return float(worst.mean())


def dunn_index(
    points: Sequence[Sequence[float]],
    labels: Sequence[int],
    noise_label: int = -1,
) -> float:
    """Dunn index: min inter-cluster distance / max intra-cluster diameter.

    Higher is better.  Returns 0 for degenerate inputs (fewer than two
    clusters); returns ``inf`` when every cluster is a single point but the
    clusters are separated.
    """
    matrix, label_arr = _validated(points, labels, noise_label)
    unique = np.unique(label_arr)
    if unique.size < 2:
        return 0.0

    squared = np.sum(matrix ** 2, axis=1)
    distances = np.sqrt(
        np.maximum(squared[:, None] + squared[None, :] - 2.0 * matrix @ matrix.T, 0.0)
    )
    masks = {int(label): label_arr == label for label in unique}

    max_diameter = 0.0
    for mask in masks.values():
        members = np.flatnonzero(mask)
        if members.size >= 2:
            max_diameter = max(max_diameter, float(distances[np.ix_(members, members)].max()))

    min_separation = np.inf
    labels_list = list(masks)
    for i in range(len(labels_list)):
        for j in range(i + 1, len(labels_list)):
            a = np.flatnonzero(masks[labels_list[i]])
            b = np.flatnonzero(masks[labels_list[j]])
            min_separation = min(min_separation, float(distances[np.ix_(a, b)].min()))

    if max_diameter == 0.0:
        return float("inf") if min_separation > 0 else 0.0
    return float(min_separation / max_diameter)


def within_between_ratio(
    points: Sequence[Sequence[float]],
    labels: Sequence[int],
    noise_label: int = -1,
) -> float:
    """Mean intra-cluster distance divided by mean inter-cluster distance.

    Lower is better; this is the geometric counterpart of the τ objective of
    Equation 15 (minimise intra-dependent distances, maximise inter-dependent
    distances).  Returns 0 for degenerate inputs.
    """
    matrix, label_arr = _validated(points, labels, noise_label)
    unique = np.unique(label_arr)
    if matrix.shape[0] < 2 or unique.size < 2:
        return 0.0

    squared = np.sum(matrix ** 2, axis=1)
    distances = np.sqrt(
        np.maximum(squared[:, None] + squared[None, :] - 2.0 * matrix @ matrix.T, 0.0)
    )
    same = label_arr[:, None] == label_arr[None, :]
    upper = np.triu(np.ones_like(same, dtype=bool), k=1)

    intra = distances[same & upper]
    inter = distances[~same & upper]
    if intra.size == 0 or inter.size == 0:
        return 0.0
    mean_inter = float(inter.mean())
    if mean_inter == 0:
        return float("inf")
    return float(intra.mean()) / mean_inter
