"""The unified stream-clusterer protocol: ingest on one side, serve on the other.

Every algorithm in this repository — EDMStream and all baselines — is driven
through the same surface:

* **Ingest**: :meth:`StreamClusterer.learn_one` per arriving point, or
  :meth:`~StreamClusterer.learn_many` for an iterable (of
  :class:`~repro.streams.point.StreamPoint`\\ s or raw value vectors) with an
  optional micro-batch size.
* **Serve**: :meth:`~StreamClusterer.request_clustering` brings the macro
  clustering up to date (two-phase algorithms pay their offline step here)
  and returns an immutable :class:`~repro.api.snapshot.ClusterSnapshot`;
  :meth:`~StreamClusterer.snapshot` returns the latest published snapshot
  without forcing a re-clustering (stale-but-consistent);
  :meth:`~StreamClusterer.predict_one` / :meth:`~StreamClusterer.predict_many`
  answer point queries under the current clustering.

Subclasses implement the four abstract members plus the
:meth:`~StreamClusterer._serving_view` hook describing their serving state;
``request_clustering`` implementations end with
``return self._publish_snapshot()`` so every algorithm publishes versioned,
stable-id-matched snapshots through one code path.

Concurrency contract: ``learn_*``, ``request_clustering`` and the model's
own ``predict_*`` conveniences are writer-side calls — a query may publish a
fresh snapshot off the live structures, so they belong on the ingest
thread.  Concurrent readers hold a :class:`ClusterSnapshot` and query it;
the snapshot owns private frozen copies of everything it serves from, so it
is safe to read from any number of threads or workers while ingestion
continues.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, Iterator, List, Optional

import numpy as np

from repro.api.snapshot import ClusterSnapshot, ServingView, SnapshotPublisher
from repro.streams.point import StreamPoint


def as_stream_points(stream: Iterable[Any]) -> Iterator[StreamPoint]:
    """Normalise an iterable of points onto :class:`StreamPoint`.

    Accepts a mix of :class:`StreamPoint` instances (passed through) and raw
    value vectors / payload objects (wrapped with no timestamp, so the
    clusterer auto-assigns arrival times) — the one input convention shared
    by every ``learn_many`` implementation.
    """
    for item in stream:
        if isinstance(item, StreamPoint):
            yield item
        else:
            yield StreamPoint(values=item, timestamp=None)


class StreamClusterer(abc.ABC):
    """Abstract base class for stream clustering algorithms.

    The benchmark harness and the serving layer treat every implementation
    uniformly through this interface; see the module docstring for the
    ingest/serve split.
    """

    #: Human-readable algorithm name used in reports and snapshots.
    name: str = "stream-clusterer"

    #: Label returned for points not covered by any cluster.
    outlier_label: int = -1

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def learn_one(
        self, values: Any, timestamp: Optional[float] = None, label: Optional[int] = None
    ) -> Any:
        """Ingest a single stream point (the online phase)."""

    def learn_many(
        self, stream: Iterable[Any], batch_size: Optional[int] = None
    ) -> List[Any]:
        """Ingest an iterable of stream points or raw value vectors.

        The base implementation is the per-point fallback: it feeds every
        point through :meth:`learn_one` regardless of ``batch_size`` (which
        only algorithms with a true micro-batch path, like EDMStream, act
        on).  Returns the per-point ``learn_one`` results.
        """
        del batch_size  # accepted for signature uniformity; per-point fallback
        return [
            self.learn_one(point.values, timestamp=point.timestamp, label=point.label)
            for point in as_stream_points(stream)
        ]

    # ------------------------------------------------------------------ #
    # serve
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def request_clustering(self) -> ClusterSnapshot:
        """Bring the macro clustering up to date and publish a snapshot.

        This is where two-phase algorithms pay for their offline step.
        Implementations end with ``return self._publish_snapshot()``.
        """

    def snapshot(self) -> ClusterSnapshot:
        """Latest published snapshot (stale-but-consistent serving view).

        Unlike :meth:`request_clustering` this never recomputes the macro
        clustering; it only falls back to it when nothing has been published
        yet.  That first-call fallback walks the live structures, so — like
        every method on the model itself — this call belongs on the ingest
        thread; hand the returned (immutable) snapshot to readers.
        """
        latest = getattr(self, "_latest_snapshot", None)
        if latest is None:
            return self.request_clustering()
        return latest

    @abc.abstractmethod
    def predict_one(self, values: Any) -> int:
        """Macro-cluster label of a point under the current clustering."""

    def predict_many(self, points: Iterable[Any]) -> np.ndarray:
        """Macro-cluster labels for a batch of points.

        Base implementation loops :meth:`predict_one`, so every algorithm
        supports batch queries; algorithms with a vectorised snapshot path
        (EDMStream) override this.
        """
        return np.asarray(
            [int(self.predict_one(values)) for values in points], dtype=np.int64
        )

    @property
    @abc.abstractmethod
    def n_clusters(self) -> int:
        """Number of macro clusters in the current clustering."""

    # ------------------------------------------------------------------ #
    # snapshot publication plumbing
    # ------------------------------------------------------------------ #
    def _serving_view(self) -> ServingView:
        """Describe the current serving state (seeds, labels, coverage, …).

        Called by :meth:`_publish_snapshot` with the macro clustering
        already up to date.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not describe its serving state"
        )

    def _publish_snapshot(self) -> ClusterSnapshot:
        """Freeze the current serving state into the next snapshot version."""
        publisher = getattr(self, "_snapshot_publisher", None)
        if publisher is None:
            publisher = SnapshotPublisher()
            self._snapshot_publisher = publisher
        snapshot = publisher.publish(
            self._serving_view(),
            algorithm=self.name,
            outlier_label=self.outlier_label,
        )
        self._latest_snapshot = snapshot
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
