"""Immutable, versioned serving views of a stream clustering.

The ingest/serve split: the *online* side of a stream clusterer mutates live
state on every arriving point, while the *serving* side answers
"which cluster is this point in?" for potentially millions of concurrent
readers.  Walking the live structures for every query couples the two sides
— a reader can observe a half-updated partition, and every query pays the
bookkeeping cost of the writer's data structures.

:class:`ClusterSnapshot` decouples them.  A snapshot is a frozen,
monotonically-versioned copy of exactly the state needed to serve queries:

* the **seed matrix** — one row per summary (cluster-cell seed,
  micro-cluster centre, CF-entry centroid, …),
* the **label array** — the macro-cluster label of each summary,
* the **densities** and the separation threshold **τ** in force when the
  snapshot was taken, and
* **stable cluster ids** — serving-side identifiers that survive across
  snapshot versions as long as the underlying cluster survives (matched by
  member overlap, the same MONIC-style rule
  :class:`repro.core.evolution.EvolutionTracker` uses for its
  survive/split/merge events).

Queries (:meth:`ClusterSnapshot.predict_one` /
:meth:`~ClusterSnapshot.predict_many`) run entirely off the snapshot through
the shared :func:`repro.distance.metrics.pairwise_euclidean` kernel — no
lock on the live model, stale-but-consistent by construction.  Grid-based
algorithms (D-Stream, MR-Stream), whose serving state is a labelled grid
rather than a seed set, use the :class:`GridSpec` mode instead; everything
else (versioning, stable ids, immutability) is identical.

:class:`SnapshotPublisher` owns the version counter and the stable-id
registry for one clusterer; :class:`ServingView` is the small mutable
builder an algorithm fills in to describe its current serving state.
"""

from __future__ import annotations

import math
from dataclasses import MISSING as _MISSING
from dataclasses import dataclass, field, fields
from types import MappingProxyType
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.distance.metrics import pairwise_euclidean

#: Target number of matrix elements per query block in predict_many; keeps
#: the (queries x seeds) distance matrix cache-resident.
_BLOCK_ELEMENTS = 4_000_000


def _frozen_array(values: Any, dtype: Any) -> Optional[np.ndarray]:
    """Copy ``values`` into a read-only numpy array (``None`` passes through)."""
    if values is None:
        return None
    array = np.array(values, dtype=dtype, copy=True)
    array.flags.writeable = False
    return array


@dataclass(frozen=True)
class GridSpec:
    """Serving state of a grid-based clusterer (D-Stream, MR-Stream).

    A point maps to the grid key ``floor((v - origin) / width)`` per axis,
    optionally clamped to ``[0, divisions - 1]`` (MR-Stream's bounded
    domain); the cluster label is then a lookup in ``labels``.
    """

    width: float
    labels: Mapping[Tuple[int, ...], int]
    origin: float = 0.0
    divisions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"grid width must be positive, got {self.width}")
        object.__setattr__(self, "labels", MappingProxyType(dict(self.labels)))

    def keys_of(self, queries: np.ndarray) -> List[Tuple[int, ...]]:
        """Grid keys of a ``(n, d)`` query block."""
        scaled = np.floor((queries - self.origin) / self.width).astype(np.int64)
        if self.divisions is not None:
            np.clip(scaled, 0, self.divisions - 1, out=scaled)
        return [tuple(int(v) for v in row) for row in scaled]

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: the label table travels as a plain dict."""
        return {
            "width": self.width,
            "labels": dict(self.labels),
            "origin": self.origin,
            "divisions": self.divisions,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        """Restore the frozen fields and re-wrap the label table read-only."""
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "labels", MappingProxyType(dict(state["labels"])))


@dataclass
class ServingView:
    """Mutable builder a clusterer fills in to publish a snapshot.

    Exactly one of the three serving representations should be populated:
    ``seeds`` (numeric seed matrix), ``seed_objects`` + ``metric``
    (non-numeric seeds, e.g. token sets under Jaccard), or ``grid``.
    """

    time: float = 0.0
    n_points: int = 0
    tau: Optional[float] = None
    seeds: Optional[np.ndarray] = None
    seed_objects: Optional[Sequence[Any]] = None
    metric: Optional[Callable[[Any, Any], float]] = None
    cell_ids: Optional[Sequence[int]] = None
    labels: Optional[Sequence[int]] = None
    densities: Optional[Sequence[float]] = None
    coverage: Union[float, Sequence[float]] = math.inf
    grid: Optional[GridSpec] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def partition(self, outlier_label: int) -> Dict[int, FrozenSet[Hashable]]:
        """Cluster label -> member summary ids, for stable-id matching."""
        members: Dict[int, set] = {}
        if self.grid is not None:
            for key, label in self.grid.labels.items():
                if label != outlier_label:
                    members.setdefault(int(label), set()).add(key)
        elif self.labels is not None:
            ids = self.cell_ids
            if ids is None:
                ids = range(len(self.labels))
            for cell_id, label in zip(ids, self.labels):
                if label != outlier_label:
                    members.setdefault(int(label), set()).add(cell_id)
        return {label: frozenset(ms) for label, ms in members.items()}


@dataclass(frozen=True)
class ClusterSnapshot:
    """An immutable, versioned view of one clustering state.

    Instances are produced by :class:`SnapshotPublisher` (via
    ``StreamClusterer.request_clustering`` / ``snapshot``); every array is a
    private read-only copy, so a snapshot taken before further ingestion is
    bit-identical after it — readers never observe the writer.

    ``labels`` holds the clusterer's *native* cluster labels (for EDMStream:
    the DP-Tree root cell id of each active cell), which is what
    ``predict_*`` returns by default so that snapshot queries agree with the
    clusterer's own ``predict_one``.  ``stable_ids`` maps those native
    labels to serving-side ids that persist across versions while the
    cluster survives; pass ``stable=True`` to ``predict_*`` (or use
    :meth:`stable_label_of`) to query in that id space.
    """

    version: int
    time: float
    n_points: int
    algorithm: str = "stream-clusterer"
    outlier_label: int = -1
    tau: Optional[float] = None
    seeds: Optional[np.ndarray] = None
    seed_objects: Optional[Tuple[Any, ...]] = None
    metric: Optional[Callable[[Any, Any], float]] = None
    grid: Optional[GridSpec] = None
    cell_ids: Optional[np.ndarray] = None
    labels: Optional[np.ndarray] = None
    densities: Optional[np.ndarray] = None
    coverage: Union[float, np.ndarray] = math.inf
    stable_ids: Mapping[int, int] = field(default_factory=dict)
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        freeze = object.__setattr__
        # The seed matrix arrives as a slice straight out of the arena's
        # contiguous storage; keep its reduced precision (float32 mode)
        # instead of silently doubling the serving-side footprint.
        seed_dtype = (
            self.seeds.dtype
            if isinstance(self.seeds, np.ndarray)
            and self.seeds.dtype in (np.float32, np.float64)
            else float
        )
        freeze(self, "seeds", _frozen_array(self.seeds, seed_dtype))
        if self.seed_objects is not None:
            freeze(self, "seed_objects", tuple(self.seed_objects))
        freeze(self, "cell_ids", _frozen_array(self.cell_ids, np.int64))
        freeze(self, "labels", _frozen_array(self.labels, np.int64))
        freeze(self, "densities", _frozen_array(self.densities, float))
        if not np.isscalar(self.coverage):
            freeze(self, "coverage", _frozen_array(self.coverage, float))
        freeze(self, "stable_ids", MappingProxyType(dict(self.stable_ids)))
        freeze(self, "metadata", MappingProxyType(dict(self.metadata)))

    # ------------------------------------------------------------------ #
    # cross-process transport
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: mapping proxies travel as plain dicts."""
        state = {f.name: getattr(self, f.name) for f in fields(self)}
        state["stable_ids"] = dict(self.stable_ids)
        state["metadata"] = dict(self.metadata)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        """Restore the frozen fields, re-freezing proxies and array flags."""
        freeze = object.__setattr__
        for name, value in state.items():
            if isinstance(value, np.ndarray):
                value.flags.writeable = False
            freeze(self, name, value)
        freeze(self, "stable_ids", MappingProxyType(dict(state["stable_ids"])))
        freeze(self, "metadata", MappingProxyType(dict(state["metadata"])))

    @classmethod
    def _assemble(cls, **values: Any) -> "ClusterSnapshot":
        """Construct a snapshot without the ``__post_init__`` defensive copies.

        The serving tier's shared-memory hydration path
        (:mod:`repro.api.transport`) rebuilds snapshots directly over
        buffer-backed arrays; copying here would defeat the zero-copy
        publication contract.  Every array handed in must therefore already
        be read-only — this constructor enforces that instead of copying.
        """
        snapshot = object.__new__(cls)
        freeze = object.__setattr__
        for f in fields(cls):
            if f.name in values:
                value = values[f.name]
            elif f.default is not _MISSING:
                value = f.default
            else:
                value = f.default_factory()  # type: ignore[misc]
            if isinstance(value, np.ndarray) and value.flags.writeable:
                raise ValueError(
                    f"_assemble requires read-only arrays; {f.name!r} is writable"
                )
            freeze(snapshot, f.name, value)
        freeze(snapshot, "stable_ids", MappingProxyType(dict(snapshot.stable_ids or {})))
        freeze(snapshot, "metadata", MappingProxyType(dict(snapshot.metadata or {})))
        return snapshot

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    @property
    def n_cells(self) -> int:
        """Number of summaries (seeds / grid cells) the snapshot serves from."""
        if self.grid is not None:
            return len(self.grid.labels)
        if self.seeds is not None:
            return int(self.seeds.shape[0])
        if self.seed_objects is not None:
            return len(self.seed_objects)
        return 0

    @property
    def n_clusters(self) -> int:
        """Number of distinct (non-outlier) clusters in the snapshot."""
        return len(self.cluster_labels())

    def cluster_labels(self) -> List[int]:
        """Sorted native cluster labels present in the snapshot."""
        if self.grid is not None:
            values = set(self.grid.labels.values())
        elif self.labels is not None:
            values = set(int(v) for v in self.labels)
        else:
            values = set()
        values.discard(self.outlier_label)
        return sorted(values)

    def clusters(self) -> Dict[int, List[Hashable]]:
        """Native cluster label -> sorted member summary ids."""
        members: Dict[int, List[Hashable]] = {}
        if self.grid is not None:
            for key, label in self.grid.labels.items():
                if label != self.outlier_label:
                    members.setdefault(int(label), []).append(key)
        elif self.labels is not None:
            ids = (
                self.cell_ids
                if self.cell_ids is not None
                else np.arange(len(self.labels))
            )
            for cell_id, label in zip(ids, self.labels):
                if label != self.outlier_label:
                    members.setdefault(int(label), []).append(int(cell_id))
        for ms in members.values():
            ms.sort()
        return members

    def stable_label_of(self, native_label: int) -> int:
        """Stable serving id of a native cluster label (outlier passes through)."""
        if native_label == self.outlier_label:
            return self.outlier_label
        return self.stable_ids.get(int(native_label), self.outlier_label)

    def cell_assignment(self) -> Dict[Hashable, int]:
        """Summary id -> native cluster label (outliers omitted)."""
        assignment: Dict[Hashable, int] = {}
        for label, members in self.clusters().items():
            for member in members:
                assignment[member] = label
        return assignment

    # ------------------------------------------------------------------ #
    # serving queries
    # ------------------------------------------------------------------ #
    def predict_one(self, values: Any) -> int:
        """Cluster label of one point under this (frozen) clustering."""
        return int(self.predict_many([values])[0])

    def predict_many(self, points: Sequence[Any], stable: bool = False) -> np.ndarray:
        """Vectorised cluster labels for a batch of query points.

        Row ``i`` of the result is exactly ``predict_one(points[i])`` — the
        batch runs through the same shared kernel with the same tie-breaking
        (first seed in array order on exact distance ties).  ``stable=True``
        returns labels in the stable serving-id space instead of the native
        one.
        """
        n = len(points)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self.grid is not None:
            queries = np.asarray(points, dtype=float)
            if queries.ndim == 1:
                queries = queries[None, :]
            table = self.grid.labels
            out = np.asarray(
                [table.get(key, self.outlier_label) for key in self.grid.keys_of(queries)],
                dtype=np.int64,
            )
        elif self.seeds is not None and self.seeds.size:
            out = self._predict_numeric(points)
        elif self.seed_objects:
            out = self._predict_objects(points)
        else:
            out = np.full(n, self.outlier_label, dtype=np.int64)
        if stable:
            out = np.asarray(
                [self.stable_label_of(int(label)) for label in out], dtype=np.int64
            )
        return out

    def _predict_numeric(self, points: Sequence[Any]) -> np.ndarray:
        queries = np.asarray(points, dtype=self.seeds.dtype)
        if queries.ndim == 1:
            queries = queries[None, :]
        n = queries.shape[0]
        n_seeds = self.seeds.shape[0]
        out = np.empty(n, dtype=np.int64)
        block = max(1, _BLOCK_ELEMENTS // max(1, n_seeds))
        for start in range(0, n, block):
            stop = min(n, start + block)
            distances = pairwise_euclidean(queries[start:stop], self.seeds)
            positions = np.argmin(distances, axis=1)
            rows = np.arange(stop - start)
            best = distances[rows, positions]
            labels = self.labels[positions]
            covered = best <= self._coverage_at(positions)
            out[start:stop] = np.where(covered, labels, self.outlier_label)
        return out

    def _predict_objects(self, points: Sequence[Any]) -> np.ndarray:
        metric = self.metric
        out = np.empty(len(points), dtype=np.int64)
        for i, point in enumerate(points):
            distances = np.asarray(
                [metric(point, seed) for seed in self.seed_objects], dtype=float
            )
            position = int(np.argmin(distances))
            if distances[position] <= self._coverage_at(np.asarray([position]))[0]:
                out[i] = int(self.labels[position])
            else:
                out[i] = self.outlier_label
        return out

    def _coverage_at(self, positions: np.ndarray) -> np.ndarray:
        if np.isscalar(self.coverage):
            return np.full(positions.shape, float(self.coverage))
        return np.asarray(self.coverage)[positions]

    def summary(self) -> Dict[str, Any]:
        """Compact description of the snapshot, for logs and reports."""
        return {
            "version": self.version,
            "algorithm": self.algorithm,
            "time": self.time,
            "points": self.n_points,
            "cells": self.n_cells,
            "clusters": self.n_clusters,
            "tau": self.tau,
        }


class SnapshotPublisher:
    """Versioning and stable-id bookkeeping for one clusterer's snapshots.

    The publisher assigns strictly increasing version numbers and matches
    each new partition against the previously published one by member
    overlap: a new cluster inherits the stable id of the old cluster it
    shares the largest member fraction with (at least ``overlap_threshold``
    of either side), the same survival rule
    :class:`repro.core.evolution.EvolutionTracker` applies when it emits
    SURVIVE / SPLIT / MERGE events.  Unmatched clusters get fresh ids, so a
    stable id is never reused for a different cluster.
    """

    def __init__(self, overlap_threshold: float = 0.5) -> None:
        if not 0.0 < overlap_threshold <= 1.0:
            raise ValueError(
                f"overlap_threshold must be in (0, 1], got {overlap_threshold}"
            )
        self.overlap_threshold = overlap_threshold
        self._version = 0
        self._next_stable_id = 0
        #: stable id -> member set of the cluster at its last publication.
        self._previous: Dict[int, FrozenSet[Hashable]] = {}

    @property
    def version(self) -> int:
        """Version of the most recently published snapshot (0 = none yet)."""
        return self._version

    # ------------------------------------------------------------------ #
    def publish(
        self,
        view: ServingView,
        algorithm: str = "stream-clusterer",
        outlier_label: int = -1,
    ) -> ClusterSnapshot:
        """Freeze a :class:`ServingView` into the next snapshot version."""
        partition = view.partition(outlier_label)
        stable_ids = self._match_stable_ids(partition)
        self._previous = {
            stable_ids[label]: members for label, members in partition.items()
        }
        self._version += 1
        return ClusterSnapshot(
            version=self._version,
            time=view.time,
            n_points=view.n_points,
            algorithm=algorithm,
            outlier_label=outlier_label,
            tau=view.tau,
            seeds=view.seeds,
            seed_objects=view.seed_objects,
            metric=view.metric,
            grid=view.grid,
            cell_ids=view.cell_ids,
            labels=view.labels,
            densities=view.densities,
            coverage=view.coverage,
            stable_ids=stable_ids,
            metadata=view.metadata,
        )

    # ------------------------------------------------------------------ #
    def _match_stable_ids(
        self, partition: Mapping[int, FrozenSet[Hashable]]
    ) -> Dict[int, int]:
        """Greedy max-overlap matching of new clusters onto known stable ids."""
        candidates: List[Tuple[int, int, int, int]] = []
        for label, members in partition.items():
            if not members:
                continue
            for stable_id, old_members in self._previous.items():
                shared = len(members & old_members)
                if not shared:
                    continue
                share = max(shared / len(old_members), shared / len(members))
                if share >= self.overlap_threshold:
                    candidates.append((shared, stable_id, label, len(members)))
        # Largest overlap wins; ties resolve deterministically by id.
        candidates.sort(key=lambda item: (-item[0], item[1], item[2]))
        mapping: Dict[int, int] = {}
        used_stable: set = set()
        for shared, stable_id, label, _ in candidates:
            if label in mapping or stable_id in used_stable:
                continue
            mapping[label] = stable_id
            used_stable.add(stable_id)
        for label in sorted(partition):
            if label not in mapping:
                mapping[label] = self._next_stable_id
                self._next_stable_id += 1
        self._next_stable_id = max(
            self._next_stable_id, max(mapping.values(), default=-1) + 1
        )
        return mapping
