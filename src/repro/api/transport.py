"""Cross-process snapshot transport: raw-buffer hydration + pickle fallback.

A :class:`~repro.api.snapshot.ClusterSnapshot` serves queries entirely off a
handful of numpy arrays (seed matrix, labels, densities, per-seed coverage)
plus a small amount of scalar/mapping state.  That split is what makes
zero-copy publication possible: the arrays can live in a
``multiprocessing.shared_memory`` segment mapped by every query worker,
while the scalars travel in a compact pickled header.

This module is the shared-memory-agnostic core of that contract:

* :func:`snapshot_to_buffers` decomposes a numeric-seed snapshot into a
  picklable **header** and named C-contiguous **arrays**;
* :func:`snapshot_from_buffers` reassembles a snapshot *directly over* the
  caller's buffers — ``copy=False`` (the default) performs **zero array
  copies**, so a worker hydrating from shared memory serves
  ``predict_many`` straight off the published pages.

Snapshots with no numeric seed matrix — grid-mode snapshots (whose serving
state is a label table keyed by grid tuples) and object-keyed snapshots
(token sets under Jaccard) — cannot be expressed as raw buffers; they
round-trip through plain pickle instead (:func:`supports_buffer_transport`
tells the two apart, and ``ClusterSnapshot.__getstate__`` makes pickle work
for every mode).  The serving tier (:mod:`repro.serving`) falls back to
pickle transport for those automatically.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

import numpy as np

from repro.api.snapshot import ClusterSnapshot

__all__ = [
    "supports_buffer_transport",
    "snapshot_to_buffers",
    "snapshot_from_buffers",
]

#: Snapshot fields that may hold arrays eligible for raw-buffer transport.
_ARRAY_FIELDS = ("seeds", "cell_ids", "labels", "densities", "coverage")

#: Header format version, bumped on layout changes.
_FORMAT = 1


def supports_buffer_transport(snapshot: ClusterSnapshot) -> bool:
    """Whether a snapshot can travel as raw buffers (numeric serving state).

    Grid-mode snapshots and object-keyed snapshots (non-``None`` ``grid``,
    ``seed_objects`` or ``metric``) have serving state that is not a numpy
    array and must use pickle transport instead.
    """
    return (
        snapshot.grid is None
        and snapshot.seed_objects is None
        and snapshot.metric is None
    )


def snapshot_to_buffers(
    snapshot: ClusterSnapshot,
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Decompose a numeric snapshot into ``(header, named arrays)``.

    The header is a small picklable dict (scalars, stable ids, metadata and
    the dtype/shape of every array); the arrays are C-contiguous views or
    copies of the snapshot's frozen arrays, ready to be written into any
    buffer-providing transport.  Raises ``ValueError`` for snapshots that
    need pickle transport (see :func:`supports_buffer_transport`).
    """
    if not supports_buffer_transport(snapshot):
        raise ValueError(
            "snapshot has non-numeric serving state (grid or seed objects); "
            "use pickle transport instead"
        )
    arrays: Dict[str, np.ndarray] = {}
    for name in _ARRAY_FIELDS:
        value = getattr(snapshot, name)
        if isinstance(value, np.ndarray):
            arrays[name] = np.ascontiguousarray(value)
    header = {
        "format": _FORMAT,
        "version": snapshot.version,
        "time": snapshot.time,
        "n_points": snapshot.n_points,
        "algorithm": snapshot.algorithm,
        "outlier_label": snapshot.outlier_label,
        "tau": snapshot.tau,
        "coverage_scalar": (
            None
            if isinstance(snapshot.coverage, np.ndarray)
            else float(snapshot.coverage)
        ),
        "stable_ids": dict(snapshot.stable_ids),
        "metadata": dict(snapshot.metadata),
        "arrays": {
            name: (str(array.dtype), tuple(array.shape))
            for name, array in arrays.items()
        },
    }
    return header, arrays


def snapshot_from_buffers(
    header: Mapping[str, Any],
    buffers: Mapping[str, Any],
    copy: bool = False,
) -> ClusterSnapshot:
    """Reassemble a snapshot from a header and named array buffers.

    ``buffers`` maps each array name from ``header["arrays"]`` to any
    buffer-protocol object (a ``memoryview`` into shared memory, ``bytes``,
    an ndarray, …).  With ``copy=False`` the returned snapshot's arrays are
    read-only views **into those buffers** — no element is copied, and the
    caller is responsible for keeping the backing memory alive as long as
    the snapshot is in use.  ``copy=True`` detaches the snapshot from the
    buffers at the cost of one copy per array.
    """
    if header.get("format") != _FORMAT:
        raise ValueError(f"unsupported snapshot buffer format: {header.get('format')!r}")
    arrays: Dict[str, np.ndarray] = {}
    for name, (dtype, shape) in header["arrays"].items():
        flat = np.frombuffer(buffers[name], dtype=np.dtype(dtype))
        array = flat.reshape(shape)
        if copy:
            array = array.copy()
        array.flags.writeable = False
        arrays[name] = array
    coverage = arrays.pop("coverage", None)
    if coverage is None:
        coverage = header["coverage_scalar"]
    return ClusterSnapshot._assemble(
        version=header["version"],
        time=header["time"],
        n_points=header["n_points"],
        algorithm=header["algorithm"],
        outlier_label=header["outlier_label"],
        tau=header["tau"],
        coverage=coverage,
        stable_ids=header["stable_ids"],
        metadata=header["metadata"],
        **arrays,
    )
