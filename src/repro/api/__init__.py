"""Public serving API: the ingest/serve split behind every stream clusterer.

* :class:`~repro.api.protocol.StreamClusterer` — the unified protocol every
  algorithm (EDMStream and all baselines) implements:
  ``learn_one`` / ``learn_many(batch_size=…)`` /
  ``request_clustering() -> ClusterSnapshot`` / ``predict_one`` /
  ``predict_many`` / ``snapshot()``.
* :class:`~repro.api.snapshot.ClusterSnapshot` — an immutable,
  monotonically-versioned serving view (frozen seed matrix, label array,
  densities, τ, stable cluster ids) queried without touching the live model.
* :class:`~repro.api.snapshot.SnapshotPublisher` — versioning and stable-id
  matching across snapshot generations.
"""

from repro.api.protocol import StreamClusterer, as_stream_points
from repro.api.snapshot import (
    ClusterSnapshot,
    GridSpec,
    ServingView,
    SnapshotPublisher,
)
from repro.api.transport import (
    snapshot_from_buffers,
    snapshot_to_buffers,
    supports_buffer_transport,
)

__all__ = [
    "StreamClusterer",
    "ClusterSnapshot",
    "GridSpec",
    "ServingView",
    "SnapshotPublisher",
    "as_stream_points",
    "snapshot_to_buffers",
    "snapshot_from_buffers",
    "supports_buffer_transport",
]
