"""Read-only nearest-seed index over a live :class:`~repro.core.cellstore.CellStore`.

The dictionary-backed indexes in this package own a private copy of every
seed, which is redundant once the cells live in the structure-of-arrays
arena: the store's slot array *is* an index into the shared seed matrix.
:class:`ArenaIndex` adapts a :class:`~repro.core.cellstore.CellStore` to the
:class:`~repro.index.base.SeedIndex` interface without copying anything —
every query gathers straight out of the arena's contiguous columns, so the
index is always exactly as fresh as the store it wraps.

Because membership is owned by the store (cells enter and leave populations
through the model, not through the index), the mutation half of the
interface is intentionally unsupported.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.index.base import SeedIndex


class ArenaIndex(SeedIndex):
    """A zero-copy :class:`SeedIndex` view of one cell-store population.

    Parameters
    ----------
    store:
        The :class:`~repro.core.cellstore.CellStore` to serve queries from.
        Keys are the store's cell ids; locations are the seed rows of the
        shared arena.  The index reflects the store live — there is no
        rebuild step and no per-insert bookkeeping.
    """

    def __init__(self, store: Any) -> None:
        self._store = store

    # ------------------------------------------------------------------ #
    # mutation — owned by the store, not the index
    # ------------------------------------------------------------------ #
    def insert(self, key: Hashable, location: Any) -> None:
        """Unsupported: membership is managed through the wrapped store."""
        raise TypeError("ArenaIndex reflects a CellStore; add cells to the store")

    def remove(self, key: Hashable) -> None:
        """Unsupported: membership is managed through the wrapped store."""
        raise TypeError("ArenaIndex reflects a CellStore; remove cells from the store")

    # ------------------------------------------------------------------ #
    # queries — gathered straight from the arena columns
    # ------------------------------------------------------------------ #
    def nearest(self, query: Any) -> Optional[Tuple[Hashable, float]]:
        """Nearest stored seed as ``(cell_id, distance)``, or ``None``."""
        result = self._store.nearest(query)
        return None if result is None else (result[0], float(result[1]))

    def nearest_many(
        self, queries: Sequence[Any]
    ) -> List[Optional[Tuple[Hashable, float]]]:
        """Batch nearest query answered by one blocked arena scan."""
        distances, ids = self._store.nearest_many(queries)
        if distances is None:
            return [None for _ in queries]
        return [
            (int(cell_id), float(distance))
            for distance, cell_id in zip(distances, ids)
        ]

    def within(self, query: Any, radius: float) -> List[Tuple[Hashable, float]]:
        """All ``(cell_id, distance)`` pairs within ``radius``, nearest first."""
        distances = self._store.distances_to(query)
        if distances.size == 0:
            return []
        hits = np.flatnonzero(distances <= radius)
        results = [(self._store.id_at(int(i)), float(distances[i])) for i in hits]
        results.sort(key=lambda item: item[1])
        return results

    def location(self, key: Hashable) -> Any:
        """The stored seed of a cell id (a view into the arena)."""
        return self._store.get(key).seed

    def __len__(self) -> int:
        """Number of cells in the wrapped population."""
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        """Whether a cell id belongs to the wrapped population."""
        return key in self._store

    def keys(self) -> Iterable[Hashable]:
        """Cell ids of the wrapped population, in array order."""
        return self._store.ids()
