"""Uniform-grid nearest-seed index for numeric (Euclidean) spaces.

Seeds are hashed into hyper-cubic buckets of side ``cell_width``.  A nearest
query inspects buckets in growing rings around the query's bucket and stops
once the closest seed found so far is provably closer than any seed in an
unexplored ring.  For EDMStream we set ``cell_width`` to the cluster-cell
radius ``r``, so the assignment query (is there a seed within ``r``?)
usually touches only the 3^d neighbouring buckets for small d.

For high-dimensional data (d larger than ``max_grid_dim``) the ring search
degenerates, so the index transparently falls back to a linear scan while
still providing the same interface.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distance import euclidean
from repro.distance.metrics import pairwise_euclidean
from repro.index.base import SeedIndex


class GridIndex(SeedIndex):
    """Uniform grid over a Euclidean space with ring-expanding nearest search."""

    def __init__(self, cell_width: float, max_grid_dim: int = 6) -> None:
        if cell_width <= 0:
            raise ValueError(f"cell_width must be positive, got {cell_width}")
        self._cell_width = cell_width
        self._max_grid_dim = max_grid_dim
        self._seeds: Dict[Hashable, Tuple[float, ...]] = {}
        self._buckets: Dict[Tuple[int, ...], List[Hashable]] = {}
        self._dimension: Optional[int] = None

    @property
    def cell_width(self) -> float:
        """Side length of a grid bucket."""
        return self._cell_width

    def _bucket_of(self, location: Sequence[float]) -> Tuple[int, ...]:
        return tuple(int(math.floor(v / self._cell_width)) for v in location)

    def _use_grid(self) -> bool:
        return self._dimension is not None and self._dimension <= self._max_grid_dim

    def insert(self, key: Hashable, location: Any) -> None:
        if key in self._seeds:
            raise KeyError(f"seed key {key!r} already present in index")
        point = tuple(float(v) for v in location)
        if self._dimension is None:
            self._dimension = len(point)
        elif len(point) != self._dimension:
            raise ValueError(
                f"seed dimension {len(point)} does not match index dimension {self._dimension}"
            )
        self._seeds[key] = point
        bucket = self._bucket_of(point)
        self._buckets.setdefault(bucket, []).append(key)

    def remove(self, key: Hashable) -> None:
        if key not in self._seeds:
            raise KeyError(f"seed key {key!r} not present in index")
        point = self._seeds.pop(key)
        bucket = self._bucket_of(point)
        members = self._buckets.get(bucket, [])
        if key in members:
            members.remove(key)
            if not members:
                del self._buckets[bucket]

    def _scan_all(self, query: Sequence[float]) -> Optional[Tuple[Hashable, float]]:
        best_key: Optional[Hashable] = None
        best_distance = float("inf")
        for key, location in self._seeds.items():
            distance = euclidean(query, location)
            if distance < best_distance:
                best_key = key
                best_distance = distance
        if best_key is None:
            return None
        return best_key, best_distance

    def _ring_buckets(self, center: Tuple[int, ...], ring: int) -> Iterable[Tuple[int, ...]]:
        """Buckets whose Chebyshev distance from ``center`` is exactly ``ring``."""
        dimension = len(center)
        if ring == 0:
            yield center
            return
        for offsets in itertools.product(range(-ring, ring + 1), repeat=dimension):
            if max(abs(o) for o in offsets) != ring:
                continue
            yield tuple(c + o for c, o in zip(center, offsets))

    def nearest(self, query: Any) -> Optional[Tuple[Hashable, float]]:
        if not self._seeds:
            return None
        point = tuple(float(v) for v in query)
        if not self._use_grid():
            return self._scan_all(point)

        center = self._bucket_of(point)
        best_key: Optional[Hashable] = None
        best_distance = float("inf")
        max_ring = self._max_ring(center)
        for ring in range(max_ring + 1):
            # Once we have a candidate, any seed in ring k is at least
            # (k - 1) * cell_width away, so we can stop expanding.
            if best_key is not None and (ring - 1) * self._cell_width > best_distance:
                break
            for bucket in self._ring_buckets(center, ring):
                for key in self._buckets.get(bucket, ()):  # missing buckets are empty
                    distance = euclidean(point, self._seeds[key])
                    if distance < best_distance:
                        best_key = key
                        best_distance = distance
        if best_key is None:
            return self._scan_all(point)
        return best_key, best_distance

    def nearest_many(self, queries: Sequence[Any]) -> List[Optional[Tuple[Hashable, float]]]:
        """Batch nearest query answered as one vectorised distance matrix.

        A ring search pays off for a single query, but for a batch the
        per-query Python bucket walk dominates; one matrix computation over
        the (query, seed) grid amortises that cost across the whole batch.
        Distances come from the shared deterministic kernel; exact distance
        ties may resolve to a different (equally near) key than repeated
        :meth:`nearest` calls, which inspect buckets in ring order.
        """
        if not self._seeds or not len(queries):
            return [None] * len(queries)
        keys = list(self._seeds.keys())
        seeds = np.asarray([self._seeds[key] for key in keys], dtype=float)
        points = np.asarray([tuple(float(v) for v in q) for q in queries], dtype=float)
        distances = pairwise_euclidean(points, seeds)
        positions = np.argmin(distances, axis=1)
        return [
            (keys[int(position)], float(distances[row, position]))
            for row, position in enumerate(positions)
        ]

    def _max_ring(self, center: Tuple[int, ...]) -> int:
        """Largest ring that could contain any occupied bucket."""
        max_ring = 0
        for bucket in self._buckets:
            ring = max(abs(b - c) for b, c in zip(bucket, center))
            if ring > max_ring:
                max_ring = ring
        return max_ring

    def within(self, query: Any, radius: float) -> List[Tuple[Hashable, float]]:
        point = tuple(float(v) for v in query)
        results: List[Tuple[Hashable, float]] = []
        if not self._seeds:
            return results
        if not self._use_grid():
            for key, location in self._seeds.items():
                distance = euclidean(point, location)
                if distance <= radius:
                    results.append((key, distance))
            results.sort(key=lambda item: item[1])
            return results

        center = self._bucket_of(point)
        max_ring = int(math.ceil(radius / self._cell_width)) + 1
        for ring in range(max_ring + 1):
            for bucket in self._ring_buckets(center, ring):
                for key in self._buckets.get(bucket, ()):
                    distance = euclidean(point, self._seeds[key])
                    if distance <= radius:
                        results.append((key, distance))
        results.sort(key=lambda item: item[1])
        return results

    def location(self, key: Hashable) -> Tuple[float, ...]:
        """Return the stored seed location for ``key``."""
        return self._seeds[key]

    def __len__(self) -> int:
        return len(self._seeds)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._seeds

    def keys(self) -> Iterable[Hashable]:
        return self._seeds.keys()
