"""Brute-force nearest-seed index.

Works with any pairwise distance metric, which makes it the only option for
non-numeric points such as token sets.  Complexity is O(n) per query, which
is acceptable because the number of cluster-cells is orders of magnitude
smaller than the number of stream points (that is precisely the purpose of
the cluster-cell summarisation, Section 3.2).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distance import DistanceMetric, euclidean
from repro.distance.metrics import pairwise_euclidean
from repro.index.base import SeedIndex


class BruteForceIndex(SeedIndex):
    """Dictionary-backed linear-scan nearest-seed index."""

    def __init__(self, metric: DistanceMetric = euclidean) -> None:
        self._metric = metric
        self._seeds: Dict[Hashable, Any] = {}

    def insert(self, key: Hashable, location: Any) -> None:
        if key in self._seeds:
            raise KeyError(f"seed key {key!r} already present in index")
        self._seeds[key] = location

    def remove(self, key: Hashable) -> None:
        if key not in self._seeds:
            raise KeyError(f"seed key {key!r} not present in index")
        del self._seeds[key]

    def nearest(self, query: Any) -> Optional[Tuple[Hashable, float]]:
        best_key: Optional[Hashable] = None
        best_distance = float("inf")
        for key, location in self._seeds.items():
            distance = self._metric(query, location)
            if distance < best_distance:
                best_key = key
                best_distance = distance
        if best_key is None:
            return None
        return best_key, best_distance

    def nearest_many(self, queries: Sequence[Any]) -> List[Optional[Tuple[Hashable, float]]]:
        """Batch nearest query, vectorised when the metric is Euclidean.

        For the default Euclidean metric the whole batch is answered by one
        matrix computation through the shared deterministic kernel (ties may
        resolve to a different equally-near key than the scalar scan); any
        other metric falls back to the per-query loop.
        """
        if self._metric is not euclidean or not self._seeds or not len(queries):
            return super().nearest_many(queries)
        keys = list(self._seeds.keys())
        seeds = np.asarray([self._seeds[key] for key in keys], dtype=float)
        points = np.asarray([tuple(float(v) for v in q) for q in queries], dtype=float)
        distances = pairwise_euclidean(points, seeds)
        positions = np.argmin(distances, axis=1)
        return [
            (keys[int(position)], float(distances[row, position]))
            for row, position in enumerate(positions)
        ]

    def within(self, query: Any, radius: float) -> List[Tuple[Hashable, float]]:
        results = []
        for key, location in self._seeds.items():
            distance = self._metric(query, location)
            if distance <= radius:
                results.append((key, distance))
        results.sort(key=lambda item: item[1])
        return results

    def location(self, key: Hashable) -> Any:
        """Return the stored seed location for ``key``."""
        return self._seeds[key]

    def __len__(self) -> int:
        return len(self._seeds)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._seeds

    def keys(self) -> Iterable[Hashable]:
        return self._seeds.keys()
