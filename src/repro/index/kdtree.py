"""KD-tree nearest-seed index for numeric (Euclidean) spaces.

The KD-tree splits the space along one coordinate per node and answers
nearest / range queries by branch-and-bound: a subtree is visited only when
the query ball crosses its splitting plane.  For the low-to-moderate
dimensionalities of the paper's numeric datasets (2-54 D) this prunes most
of the candidate seeds; in very high dimensions the bound degenerates to a
near-linear scan, which is why the ablation experiment compares it against
:class:`~repro.index.brute.BruteForceIndex` and
:class:`~repro.index.grid.GridIndex`.

Insertions are standard (no rebalancing); removals are *lazy* — the node is
marked dead and skipped by queries — and the tree is rebuilt from the live
seeds whenever dead nodes outnumber a configurable fraction of the total,
which keeps queries near O(log n) under the churn produced by cluster-cell
creation and recycling.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.index.base import SeedIndex


class _KDNode:
    """One node of the KD-tree (one seed per node)."""

    __slots__ = ("key", "point", "axis", "left", "right", "alive")

    def __init__(self, key: Hashable, point: Tuple[float, ...], axis: int) -> None:
        self.key = key
        self.point = point
        self.axis = axis
        self.left: Optional["_KDNode"] = None
        self.right: Optional["_KDNode"] = None
        self.alive = True


def _squared_distance(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


class KDTreeIndex(SeedIndex):
    """Dynamic KD-tree over Euclidean seed points.

    Parameters
    ----------
    rebuild_factor:
        The tree is rebuilt (balanced, dead nodes dropped) whenever the
        number of lazily-removed nodes exceeds ``rebuild_factor`` times the
        number of live seeds.
    """

    def __init__(self, rebuild_factor: float = 1.0) -> None:
        if rebuild_factor <= 0:
            raise ValueError(f"rebuild_factor must be positive, got {rebuild_factor}")
        self.rebuild_factor = rebuild_factor
        self._root: Optional[_KDNode] = None
        self._nodes: Dict[Hashable, _KDNode] = {}
        self._dimension: Optional[int] = None
        self._n_dead = 0
        #: Number of full rebuilds performed (exposed for tests and reports).
        self.n_rebuilds = 0

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def insert(self, key: Hashable, location: Any) -> None:
        """Add a seed to the index; raises ``KeyError`` if the key exists."""
        if key in self._nodes:
            raise KeyError(f"seed key {key!r} already present in index")
        point = tuple(float(v) for v in location)
        if self._dimension is None:
            self._dimension = len(point)
        elif len(point) != self._dimension:
            raise ValueError(
                f"seed dimension {len(point)} does not match index dimension {self._dimension}"
            )
        node = self._insert_node(key, point)
        self._nodes[key] = node

    def _insert_node(self, key: Hashable, point: Tuple[float, ...]) -> _KDNode:
        if self._root is None:
            self._root = _KDNode(key, point, axis=0)
            return self._root
        current = self._root
        while True:
            axis = current.axis
            child_axis = (axis + 1) % self._dimension
            if point[axis] < current.point[axis]:
                if current.left is None:
                    current.left = _KDNode(key, point, child_axis)
                    return current.left
                current = current.left
            else:
                if current.right is None:
                    current.right = _KDNode(key, point, child_axis)
                    return current.right
                current = current.right

    def remove(self, key: Hashable) -> None:
        """Remove a seed; raises ``KeyError`` if the key is unknown."""
        node = self._nodes.pop(key, None)
        if node is None:
            raise KeyError(f"seed key {key!r} not present in index")
        node.alive = False
        self._n_dead += 1
        if self._nodes and self._n_dead > self.rebuild_factor * len(self._nodes):
            self._rebuild()
        elif not self._nodes:
            self._root = None
            self._n_dead = 0

    def _rebuild(self) -> None:
        """Rebuild a balanced tree from the live seeds (drops dead nodes)."""
        items = [(key, node.point) for key, node in self._nodes.items()]
        self._root = self._build_balanced(items, depth=0)
        self._nodes = {}
        self._collect_nodes(self._root)
        self._n_dead = 0
        self.n_rebuilds += 1

    def _build_balanced(
        self, items: List[Tuple[Hashable, Tuple[float, ...]]], depth: int
    ) -> Optional[_KDNode]:
        if not items:
            return None
        axis = depth % self._dimension
        items.sort(key=lambda kv: kv[1][axis])
        median = len(items) // 2
        key, point = items[median]
        node = _KDNode(key, point, axis)
        node.left = self._build_balanced(items[:median], depth + 1)
        node.right = self._build_balanced(items[median + 1:], depth + 1)
        return node

    def _collect_nodes(self, node: Optional[_KDNode]) -> None:
        if node is None:
            return
        self._nodes[node.key] = node
        self._collect_nodes(node.left)
        self._collect_nodes(node.right)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def nearest(self, query: Any) -> Optional[Tuple[Hashable, float]]:
        """Return ``(key, distance)`` of the nearest live seed, or ``None``."""
        if not self._nodes:
            return None
        point = tuple(float(v) for v in query)
        best: List[Any] = [None, math.inf]  # [key, squared distance]
        self._nearest_recursive(self._root, point, best)
        if best[0] is None:
            return None
        return best[0], math.sqrt(best[1])

    def _nearest_recursive(
        self, node: Optional[_KDNode], query: Tuple[float, ...], best: List[Any]
    ) -> None:
        if node is None:
            return
        if node.alive:
            distance_sq = _squared_distance(query, node.point)
            if distance_sq < best[1]:
                best[0] = node.key
                best[1] = distance_sq
        axis = node.axis
        difference = query[axis] - node.point[axis]
        near, far = (node.left, node.right) if difference < 0 else (node.right, node.left)
        self._nearest_recursive(near, query, best)
        if difference * difference < best[1]:
            self._nearest_recursive(far, query, best)

    def nearest_many(self, queries: Sequence[Any]) -> List[Optional[Tuple[Hashable, float]]]:
        """Batch nearest query with locality-ordered traversal.

        The branch-and-bound search itself is already sublinear, so the
        batch win comes from visiting queries in lexicographic point order:
        consecutive queries then descend largely the same root path, keeping
        the upper tree levels hot in cache.  Results are returned in the
        original query order.
        """
        points = [tuple(float(v) for v in query) for query in queries]
        results: List[Optional[Tuple[Hashable, float]]] = [None] * len(points)
        for index in sorted(range(len(points)), key=points.__getitem__):
            results[index] = self.nearest(points[index])
        return results

    def within(self, query: Any, radius: float) -> List[Tuple[Hashable, float]]:
        """All live ``(key, distance)`` pairs with distance <= radius, nearest first."""
        if not self._nodes:
            return []
        point = tuple(float(v) for v in query)
        results: List[Tuple[Hashable, float]] = []
        self._range_recursive(self._root, point, radius, radius * radius, results)
        results.sort(key=lambda item: item[1])
        return results

    def _range_recursive(
        self,
        node: Optional[_KDNode],
        query: Tuple[float, ...],
        radius: float,
        radius_sq: float,
        results: List[Tuple[Hashable, float]],
    ) -> None:
        if node is None:
            return
        if node.alive:
            distance_sq = _squared_distance(query, node.point)
            if distance_sq <= radius_sq:
                results.append((node.key, math.sqrt(distance_sq)))
        difference = query[node.axis] - node.point[node.axis]
        if difference < 0:
            self._range_recursive(node.left, query, radius, radius_sq, results)
            if -difference <= radius:
                self._range_recursive(node.right, query, radius, radius_sq, results)
        else:
            self._range_recursive(node.right, query, radius, radius_sq, results)
            if difference <= radius:
                self._range_recursive(node.left, query, radius, radius_sq, results)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def location(self, key: Hashable) -> Tuple[float, ...]:
        """Return the stored seed location for ``key``."""
        return self._nodes[key].point

    @property
    def height(self) -> int:
        """Height of the tree (0 when empty)."""
        def _height(node: Optional[_KDNode]) -> int:
            if node is None:
                return 0
            return 1 + max(_height(node.left), _height(node.right))

        return _height(self._root)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._nodes

    def keys(self) -> Iterable[Hashable]:
        return self._nodes.keys()
