"""Abstract interface shared by the nearest-seed indexes."""

from __future__ import annotations

import abc
from typing import Any, Hashable, Iterable, List, Optional, Sequence, Tuple


class SeedIndex(abc.ABC):
    """Maintains a set of (key, location) pairs and answers nearest queries.

    Keys identify cluster-cells; locations are their seed points.  The index
    must support dynamic insertion and removal because cells are created,
    deleted (memory recycling) and never move (a cell's seed is fixed at
    creation, Definition 4).
    """

    @abc.abstractmethod
    def insert(self, key: Hashable, location: Any) -> None:
        """Add a seed to the index; raises ``KeyError`` if the key exists."""

    @abc.abstractmethod
    def remove(self, key: Hashable) -> None:
        """Remove a seed; raises ``KeyError`` if the key is unknown."""

    @abc.abstractmethod
    def nearest(self, query: Any) -> Optional[Tuple[Hashable, float]]:
        """Return ``(key, distance)`` of the nearest seed, or ``None`` if empty."""

    @abc.abstractmethod
    def within(self, query: Any, radius: float) -> List[Tuple[Hashable, float]]:
        """Return all ``(key, distance)`` pairs with distance <= radius."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of indexed seeds."""

    @abc.abstractmethod
    def __contains__(self, key: Hashable) -> bool:
        """Whether a key is currently indexed."""

    @abc.abstractmethod
    def keys(self) -> Iterable[Hashable]:
        """Iterate over the indexed keys."""

    def nearest_key(self, query: Any) -> Optional[Hashable]:
        """Convenience wrapper returning only the nearest key."""
        result = self.nearest(query)
        return None if result is None else result[0]

    def nearest_many(self, queries: Sequence[Any]) -> List[Optional[Tuple[Hashable, float]]]:
        """Batch form of :meth:`nearest`: one result per query, same order.

        The base implementation simply loops; backends override it with a
        vectorised computation when they can answer a whole batch cheaper
        than query-by-query.  This mirrors the bulk assignment query the
        micro-batch ingestion path issues against its cell stores
        (``CellStore.nearest_many``), for index users — e.g. the index
        ablation — that want the same batched access pattern.
        """
        return [self.nearest(query) for query in queries]
