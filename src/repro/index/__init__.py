"""Nearest-seed index structures.

EDMStream's point-assignment step (Section 4.1, operation 1) needs, for every
arriving point, the nearest cluster-cell seed.  This package provides three
interchangeable indexes:

* :class:`BruteForceIndex` — works with any distance metric (including
  Jaccard over token sets); O(n) per query.
* :class:`GridIndex` — a uniform grid over numeric spaces that restricts the
  candidate set to nearby buckets; falls back to a full scan when the query
  ball is empty.
* :class:`KDTreeIndex` — a dynamic KD-tree with lazy deletion and periodic
  rebuilds; effective at low-to-moderate dimensionality.
* :class:`ArenaIndex` — a zero-copy read-only view over a live
  :class:`~repro.core.cellstore.CellStore`; queries gather straight from the
  shared structure-of-arrays seed matrix.
"""

from repro.index.arena import ArenaIndex
from repro.index.base import SeedIndex
from repro.index.brute import BruteForceIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTreeIndex

__all__ = ["SeedIndex", "ArenaIndex", "BruteForceIndex", "GridIndex", "KDTreeIndex"]
