"""EDMStream reproduction: stream clustering by exploring the evolution of density mountain.

This package is a from-scratch reproduction of the VLDB 2017 paper
*Clustering Stream Data by Exploring the Evolution of Density Mountain*
(Gong, Zhang, Yu), including the EDMStream algorithm itself, batch Density
Peaks clustering, the stream-clustering baselines it is compared against
(DenStream, D-Stream, DBSTREAM, MR-Stream, CluStream), synthetic and
surrogate workload generators, the CMM quality metric and a benchmark
harness that regenerates every table and figure of the paper's evaluation.

Quickstart (ingest, then serve from an immutable snapshot)::

    from repro import EDMStream
    from repro.streams import SDSGenerator

    stream = SDSGenerator(seed=7).generate()
    model = EDMStream(radius=0.3, beta=0.001)
    model.learn_many(stream)                      # micro-batched ingestion
    snapshot = model.request_clustering()         # immutable serving view
    print(snapshot.n_clusters, "clusters at version", snapshot.version)
    labels = snapshot.predict_many([p.values for p in stream.points[:100]])
"""

from repro.api import ClusterSnapshot, SnapshotPublisher, StreamClusterer
from repro.core import (
    BatchIngestor,
    ClusterCell,
    ClusterEvent,
    DecayModel,
    DPTree,
    EDMStream,
    EDMStreamConfig,
    EvolutionTracker,
    EvolutionType,
    OutlierReservoir,
)

__version__ = "1.1.0"

__all__ = [
    "BatchIngestor",
    "EDMStream",
    "EDMStreamConfig",
    "StreamClusterer",
    "ClusterSnapshot",
    "SnapshotPublisher",
    "DecayModel",
    "ClusterCell",
    "DPTree",
    "OutlierReservoir",
    "EvolutionTracker",
    "EvolutionType",
    "ClusterEvent",
    "__version__",
]
