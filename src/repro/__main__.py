"""``python -m repro`` — run the reproduction experiments from the command line."""

import sys

from repro.harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
