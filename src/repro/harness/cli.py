"""Command-line interface for running the reproduction experiments.

Usage::

    python -m repro list
    python -m repro run fig9 --points 6000
    python -m repro run fig15 --output results/fig15.txt

Every experiment id corresponds to one table or figure of the paper (see
DESIGN.md) or one of the repo's extensions (``serve``, ``memory``); ``run``
executes the driver and prints (or writes) the rendered tables and series.

The id table is *generated* from :mod:`repro.harness.registry` — the CLI
holds no experiment list of its own, so drivers registered there appear in
``list`` and ``run`` automatically.  ``EXPERIMENTS`` is kept as a mapping
of ``id -> (description, factory)`` for backwards compatibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.harness import registry
from repro.harness.results import ExperimentResult


class _RegistryView(Dict[str, Tuple[str, Callable[[Optional[int]], ExperimentResult]]]):
    """Lazy dict view of the registry in the legacy ``(description, factory)`` shape.

    Materialising the registry imports every driver module, so the view
    fills itself on first access instead of at import time.
    """

    def _materialise(self) -> None:
        if not dict.__len__(self):
            for experiment_id, spec in registry.all_experiments().items():
                dict.__setitem__(self, experiment_id, (spec.description, spec.factory))

    def __getitem__(self, key: str):  # noqa: D105
        self._materialise()
        return dict.__getitem__(self, key)

    def __contains__(self, key: object) -> bool:  # noqa: D105
        self._materialise()
        return dict.__contains__(self, key)

    def __iter__(self):  # noqa: D105
        self._materialise()
        return dict.__iter__(self)

    def __len__(self) -> int:  # noqa: D105
        self._materialise()
        return dict.__len__(self)

    def keys(self):  # noqa: D102
        self._materialise()
        return dict.keys(self)

    def items(self):  # noqa: D102
        self._materialise()
        return dict.items(self)

    def values(self):  # noqa: D102
        self._materialise()
        return dict.values(self)


#: Experiment id -> (description, driver factory taking an optional point budget).
#: Derived from :mod:`repro.harness.registry`; do not add entries here.
EXPERIMENTS = _RegistryView()


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the EDMStream (VLDB 2017) evaluation experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run = subparsers.add_parser("run", help="run one experiment and print its report")
    run.add_argument(
        "experiment", choices=sorted(EXPERIMENTS), help="experiment id"
    )
    run.add_argument(
        "--points",
        type=int,
        default=None,
        help="override the number of stream points (smaller = faster)",
    )
    run.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the report to this file instead of stdout",
    )
    return parser


def run_experiment(experiment_id: str, points: Optional[int] = None) -> ExperimentResult:
    """Execute one experiment driver by id."""
    return registry.get_experiment(experiment_id).run(points)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS) + 1
        for experiment_id, spec in registry.all_experiments().items():
            print(f"{experiment_id:<{width}s} {spec.description}")
        return 0

    result = run_experiment(args.experiment, points=args.points)
    report = result.to_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
