"""Command-line interface for running the reproduction experiments.

Usage::

    python -m repro list
    python -m repro run fig9 --points 6000
    python -m repro run fig15 --output results/fig15.txt
    python -m repro fleet list --tag bench
    python -m repro fleet run --tag bench --resume --jobs 4
    python -m repro fleet run --matrix nightly.toml --seed 7
    python -m repro stats <token> --interval 1.0

Every experiment id corresponds to one table or figure of the paper (see
DESIGN.md) or one of the repo's extensions (``serve``, ``memory``); ``run``
executes the driver and prints (or writes) the rendered tables and series.
``fleet`` expands a run matrix over the registry (optionally from a
TOML/JSON config), executes it on a worker pool with one durable result
directory per run, resumes interrupted matrices, emits the consolidated
``BENCH_*.json`` artifacts, and enforces the registry gates.  ``stats``
attaches read-only to a live serving cluster's shared-memory stats block
and prints per-worker QPS / latency quantiles / staleness plus the ingest
phase breakdown (see :mod:`repro.obs.export`).

The id table is *generated* from :mod:`repro.harness.registry` — the CLI
holds no experiment list of its own, so drivers registered there appear in
``list`` and ``run`` automatically.  ``EXPERIMENTS`` is kept as a mapping
of ``id -> (description, factory)`` for backwards compatibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.harness import registry
from repro.harness.results import ExperimentResult


class _RegistryView(Dict[str, Tuple[str, Callable[[Optional[int]], ExperimentResult]]]):
    """Lazy dict view of the registry in the legacy ``(description, factory)`` shape.

    Materialising the registry imports every driver module, so the view
    fills itself on first access instead of at import time.
    """

    def _materialise(self) -> None:
        if not dict.__len__(self):
            for experiment_id, spec in registry.all_experiments().items():
                dict.__setitem__(self, experiment_id, (spec.description, spec.factory))

    def __getitem__(self, key: str):  # noqa: D105
        self._materialise()
        return dict.__getitem__(self, key)

    def __contains__(self, key: object) -> bool:  # noqa: D105
        self._materialise()
        return dict.__contains__(self, key)

    def __iter__(self):  # noqa: D105
        self._materialise()
        return dict.__iter__(self)

    def __len__(self) -> int:  # noqa: D105
        self._materialise()
        return dict.__len__(self)

    def keys(self):  # noqa: D102
        self._materialise()
        return dict.keys(self)

    def items(self):  # noqa: D102
        self._materialise()
        return dict.items(self)

    def values(self):  # noqa: D102
        self._materialise()
        return dict.values(self)


#: Experiment id -> (description, driver factory taking an optional point budget).
#: Derived from :mod:`repro.harness.registry`; do not add entries here.
EXPERIMENTS = _RegistryView()


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the EDMStream (VLDB 2017) evaluation experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run = subparsers.add_parser("run", help="run one experiment and print its report")
    run.add_argument(
        "experiment", choices=sorted(EXPERIMENTS), help="experiment id"
    )
    run.add_argument(
        "--points",
        type=int,
        default=None,
        help="override the number of stream points (smaller = faster)",
    )
    run.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the report to this file instead of stdout",
    )

    fleet = subparsers.add_parser(
        "fleet", help="run a declarative experiment matrix on a worker pool"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run", help="execute the matrix (resumable, durable result dirs)"
    )
    fleet_list = fleet_sub.add_parser(
        "list", help="show the runs the matrix would execute, without running"
    )
    for sub in (fleet_run, fleet_list):
        sub.add_argument(
            "--matrix",
            type=str,
            default=None,
            help="TOML/JSON matrix config; omit to expand the registry directly",
        )
        sub.add_argument(
            "--tag",
            action="append",
            default=[],
            help="select experiments carrying this registry tag (repeatable)",
        )
        sub.add_argument(
            "--id",
            action="append",
            default=[],
            dest="ids",
            help="select one experiment id (repeatable)",
        )
        sub.add_argument(
            "--points", type=int, default=None, help="point-budget override for every run"
        )
        sub.add_argument(
            "--seed",
            type=int,
            default=None,
            help="explicit seed, recorded in metadata.json and forwarded to the drivers",
        )
        sub.add_argument(
            "--name",
            type=str,
            default=None,
            help="matrix name (the results/<name>/ directory component)",
        )
    fleet_run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker-pool size (0 = inline in this process; default: CPU count)",
    )
    fleet_run.add_argument(
        "--resume",
        action="store_true",
        help="skip runs whose result directory already holds a valid metadata.json",
    )
    fleet_run.add_argument(
        "--no-gate",
        action="store_true",
        help="skip the registry gate assertions after the runs complete",
    )
    fleet_run.add_argument(
        "--results-dir",
        type=str,
        default=None,
        help="root for per-run result directories (default: results/)",
    )
    fleet_run.add_argument(
        "--artifacts-dir",
        type=str,
        default=None,
        help="where consolidated BENCH_*.json files go (default: benchmarks/results/)",
    )

    stats = subparsers.add_parser(
        "stats", help="live stats of a running serving cluster (by token)"
    )
    stats.add_argument("token", help="serving-cluster token (ServingCluster.token)")
    stats.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between the two stats reads that rates are computed from",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the raw report as JSON instead of the rendered table",
    )
    return parser


def run_experiment(experiment_id: str, points: Optional[int] = None) -> ExperimentResult:
    """Execute one experiment driver by id."""
    return registry.get_experiment(experiment_id).run(points)


def _build_matrix(args) -> "object":
    """Expand the fleet matrix selected by the CLI arguments."""
    from repro.harness import fleet as fleet_mod

    if args.matrix:
        matrix = fleet_mod.RunMatrix.from_file(args.matrix)
        matrix = matrix.filter(tags=args.tag, ids=args.ids)
    else:
        name = args.name or ("-".join(args.tag) if args.tag else "fleet")
        matrix = fleet_mod.RunMatrix.from_registry(
            name=name,
            tags=args.tag,
            ids=args.ids,
            points=args.points,
            seed=args.seed,
        )
    if args.name:
        import dataclasses

        matrix = dataclasses.replace(matrix, name=args.name)
    return matrix


def _fleet_main(args) -> int:
    from repro.harness import fleet as fleet_mod

    matrix = _build_matrix(args)
    if args.fleet_command == "list":
        print(f"matrix {matrix.name}: {len(matrix)} runs")
        for run in matrix.runs:
            tags = ",".join(run.tags)
            artifact = f" -> {run.artifact}" if run.artifact and run.canonical else ""
            print(f"  {run.run_id:<40s} [{tags}]{artifact}")
        return 0
    if not matrix.runs:
        print("matrix is empty (no experiment matched the filters)")
        return 1
    runner = fleet_mod.FleetRunner(
        matrix,
        results_root=args.results_dir or fleet_mod.DEFAULT_RESULTS_ROOT,
        jobs=args.jobs,
        resume=args.resume,
        gate=not args.no_gate,
        artifacts_dir=args.artifacts_dir or fleet_mod.DEFAULT_ARTIFACTS_DIR,
    )
    report = runner.execute()
    print(report.to_text())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "fleet":
        return _fleet_main(args)

    if args.command == "stats":
        from repro.obs.export import stats_main

        return stats_main(args.token, interval_s=args.interval, as_json=args.as_json)

    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS) + 1
        for experiment_id, spec in registry.all_experiments().items():
            print(f"{experiment_id:<{width}s} {spec.description}")
        return 0

    result = run_experiment(args.experiment, points=args.points)
    report = result.to_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
