"""Command-line interface for running the reproduction experiments.

Usage::

    python -m repro list
    python -m repro run fig9 --points 6000
    python -m repro run fig15 --output results/fig15.txt

Every experiment id corresponds to one table or figure of the paper (see
DESIGN.md); ``run`` executes the driver and prints (or writes) the rendered
tables and series.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from repro.harness import ablations, experiments, scenarios
from repro.harness.results import ExperimentResult

#: Experiment id -> (description, driver factory taking an optional point budget).
EXPERIMENTS: Dict[str, tuple] = {
    "table2": (
        "Table 2 — dataset inventory",
        lambda points: experiments.experiment_table2(surrogate_points=points or 2000),
    ),
    "fig7": (
        "Figures 6-7 — SDS cluster evolution",
        lambda points: scenarios.experiment_evolution_sds(n_points=points or 20000),
    ),
    "fig8": (
        "Figure 8 / Table 3 — news-stream topic evolution",
        lambda points: scenarios.experiment_news_evolution(n_points=points or 8000),
    ),
    "fig9": (
        "Figure 9 — response time vs stream length",
        lambda points: experiments.experiment_response_time(n_points=points or 10000),
    ),
    "fig10": (
        "Figure 10 — throughput",
        lambda points: experiments.experiment_throughput(n_points=points or 10000),
    ),
    "fig10_batch": (
        "Figure 10 extension — micro-batch vs sequential ingestion throughput",
        lambda points: experiments.experiment_batch_throughput(n_points=points or 16000),
    ),
    "query": (
        "Serving extension — snapshot predict_many vs per-point query loop",
        lambda points: experiments.experiment_query_throughput(n_points=points or 16000),
    ),
    "serve": (
        "Serving tier — shared-memory snapshot fan-out QPS/latency vs workers",
        lambda points: experiments.experiment_serving(n_points=points or 4000),
    ),
    "fig11": (
        "Figure 11 — dependency-update filtering ablation",
        lambda points: experiments.experiment_filtering(n_points=points or 20000),
    ),
    "fig12": (
        "Figure 12 — response time vs dimensionality",
        lambda points: experiments.experiment_dimensions(n_points=points or 5000),
    ),
    "fig13": (
        "Figure 13 — cluster quality (CMM)",
        lambda points: experiments.experiment_quality(n_points=points or 10000),
    ),
    "fig14": (
        "Figure 14 — cluster quality vs stream rate",
        lambda points: experiments.experiment_stream_rate(n_points=points or 10000),
    ),
    "fig15": (
        "Figure 15 / Table 4 — dynamic vs static tau",
        lambda points: scenarios.experiment_adaptive_tau(n_points=points or 20000),
    ),
    "fig16": (
        "Figure 16 — outlier reservoir size",
        lambda points: experiments.experiment_reservoir(n_points=points or 10000),
    ),
    "fig17": (
        "Figure 17 — effect of the cluster-cell radius",
        lambda points: experiments.experiment_radius(n_points=points or 10000),
    ),
    "ablation": (
        "Ablation — incremental DP-Tree vs periodic batch DP",
        lambda points: experiments.experiment_dptree_ablation(n_points=points or 10000),
    ),
    "ablation_decay": (
        "Ablation — decay half-life vs recovery from abrupt drift",
        lambda points: ablations.experiment_decay_ablation(n_points=points or 8000),
    ),
    "ablation_beta": (
        "Ablation — active-threshold multiplier beta",
        lambda points: ablations.experiment_beta_ablation(n_points=points or 8000),
    ),
    "ablation_index": (
        "Ablation — nearest-seed index comparison",
        lambda points: ablations.experiment_index_ablation(
            n_queries=points or 2000
        ),
    ),
    "ablation_tracking": (
        "Ablation — online evolution tracking vs offline MONIC / MEC",
        lambda points: ablations.experiment_tracking_comparison(n_points=points or 12000),
    ),
    "ablation_cftree": (
        "Ablation — CF-Tree (BIRCH) vs DP-Tree (EDMStream) under drift",
        lambda points: ablations.experiment_cftree_vs_dptree(n_points=points or 8000),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the EDMStream (VLDB 2017) evaluation experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run = subparsers.add_parser("run", help="run one experiment and print its report")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run.add_argument(
        "--points",
        type=int,
        default=None,
        help="override the number of stream points (smaller = faster)",
    )
    run.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the report to this file instead of stdout",
    )
    return parser


def run_experiment(experiment_id: str, points: Optional[int] = None) -> ExperimentResult:
    """Execute one experiment driver by id."""
    if experiment_id not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    _, factory = EXPERIMENTS[experiment_id]
    return factory(points)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            description, _ = EXPERIMENTS[experiment_id]
            print(f"{experiment_id:<10s} {description}")
        return 0

    result = run_experiment(args.experiment, points=args.points)
    report = result.to_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
