"""Declarative run-matrix executor over the experiment registry.

The fleet runner turns the registry's :class:`~repro.harness.registry.ExperimentSpec`
contracts into a reproducible benchmark/ablation matrix:

* a :class:`RunMatrix` expands a config (TOML/JSON file, plain mapping, or
  just registry tag/id filters) into concrete :class:`PlannedRun` entries —
  one per (experiment, parameter-grid combination);
* :class:`FleetRunner` executes the matrix on a ``ProcessPoolExecutor``
  worker pool, writing one durable result directory per run
  (``results/<matrix>/<run_id>/`` holding ``metadata.json``,
  ``result.json`` and ``report.txt``);
* ``--resume`` skips runs whose directory already holds a valid
  ``metadata.json`` with a matching fingerprint; partial directories left
  by a crash (no metadata, or a stale fingerprint) are wiped and
  re-executed;
* after the matrix completes, the consolidated ``BENCH_*.json`` artifacts
  are rebuilt from the durable results (identical fields whether the run
  executed now or was resumed) and the registry gates are evaluated.

``metadata.json`` is written last and atomically (tmp file + ``os.replace``),
so its presence is the validity marker: a worker killed mid-run can never
leave a directory that resumes as complete.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import itertools
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.harness import registry
from repro.harness.results import ExperimentResult, jsonify

__all__ = [
    "FleetReport",
    "FleetRunner",
    "PlannedRun",
    "RunMatrix",
    "run_bench",
]

#: Default root for per-run result directories (``<root>/<matrix>/<run_id>/``).
DEFAULT_RESULTS_ROOT = "results"
#: Default directory for the consolidated ``BENCH_*.json`` artifacts.
DEFAULT_ARTIFACTS_DIR = os.path.join("benchmarks", "results")

_SLUG_RE = re.compile(r"[^A-Za-z0-9_.=+-]+")


def _slug(value: Any) -> str:
    return _SLUG_RE.sub("-", str(value)).strip("-") or "x"


# --------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlannedRun:
    """One concrete run of the matrix: an experiment plus pinned inputs."""

    run_id: str
    experiment_id: str
    points: Optional[int] = None
    seed: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    artifact: Optional[str] = None
    #: The default-parameter run of its spec; only canonical runs emit the
    #: consolidated benchmark artifact (grid sweeps are exploratory).
    canonical: bool = True

    def fingerprint(self) -> str:
        """Stable identity of the run's inputs; a mismatch invalidates resume."""
        identity = jsonify(
            {
                "experiment_id": self.experiment_id,
                "points": self.points,
                "seed": self.seed,
                "params": self.params,
            }
        )
        blob = json.dumps(identity, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class RunMatrix:
    """A named, ordered collection of planned runs."""

    name: str
    runs: Tuple[PlannedRun, ...]

    # ------------------------------------------------------------------ #
    @classmethod
    def from_registry(
        cls,
        name: str = "fleet",
        tags: Sequence[str] = (),
        ids: Sequence[str] = (),
        points: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> "RunMatrix":
        """Expand registry specs selected by ``tags`` / ``ids`` into a matrix.

        With neither filter, every registered experiment is selected.  Each
        spec contributes its benchmark-contract parameters (resolved at
        planning time, honouring the ``BENCH_*`` environment knobs) crossed
        with its default parameter grid.
        """
        selected: Dict[str, registry.ExperimentSpec] = {}
        if not tags and not ids:
            selected = registry.all_experiments()
        for tag in tags:
            selected.update(registry.experiments_with_tag(tag))
        for experiment_id in ids:
            selected[experiment_id] = registry.get_experiment(experiment_id)
        runs: List[PlannedRun] = []
        for experiment_id in sorted(selected):
            spec = selected[experiment_id]
            runs.extend(
                _expand_spec(spec, points=points, seed=seed, grid=None, params=None)
            )
        return cls(name=name, runs=tuple(runs))

    @classmethod
    def from_mapping(cls, config: Mapping[str, Any]) -> "RunMatrix":
        """Build a matrix from a config mapping (the parsed TOML/JSON shape).

        Schema::

            name = "nightly"            # matrix name (result-dir component)
            [defaults]                  # optional run defaults
            points = 20000
            seed = 7
            [[runs]]                    # one entry per selector
            id = "fig10_batch"          # ... or tag = "bench"
            points = 8000               # optional overrides
            seed = 11
            [runs.params]               # fixed driver kwargs
            datasets = ["SDS"]
            [runs.grid]                 # kwarg -> list of values (cartesian)
            n_points = [4000, 8000]
        """
        defaults = dict(config.get("defaults", {}))
        default_points = defaults.get("points")
        default_seed = defaults.get("seed")
        runs: List[PlannedRun] = []
        for entry in config.get("runs", []):
            specs: List[registry.ExperimentSpec] = []
            if "id" in entry:
                specs.append(registry.get_experiment(entry["id"]))
            elif "tag" in entry:
                specs.extend(registry.experiments_with_tag(entry["tag"]).values())
            else:
                raise ValueError(f"matrix entry needs an 'id' or 'tag': {entry!r}")
            for spec in specs:
                runs.extend(
                    _expand_spec(
                        spec,
                        points=entry.get("points", default_points),
                        seed=entry.get("seed", default_seed),
                        grid=entry.get("grid"),
                        params=entry.get("params"),
                    )
                )
        return cls(name=str(config.get("name", "fleet")), runs=_dedupe(runs))

    @classmethod
    def from_file(cls, path: os.PathLike) -> "RunMatrix":
        """Load a matrix config from a ``.toml`` or ``.json`` file."""
        path = pathlib.Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix == ".toml":
            try:
                import tomllib
            except ImportError as exc:  # pragma: no cover - python < 3.11
                raise RuntimeError(
                    "TOML matrix configs need Python >= 3.11 (tomllib); "
                    "use an equivalent .json config instead"
                ) from exc
            config = tomllib.loads(text)
        elif path.suffix == ".json":
            config = json.loads(text)
        else:
            raise ValueError(f"unsupported matrix config suffix: {path.suffix!r}")
        matrix = cls.from_mapping(config)
        if "name" not in config:
            matrix = replace(matrix, name=path.stem)
        return matrix

    # ------------------------------------------------------------------ #
    def filter(
        self, tags: Sequence[str] = (), ids: Sequence[str] = ()
    ) -> "RunMatrix":
        """Keep only runs matching any of ``tags`` or any of ``ids``."""
        if not tags and not ids:
            return self
        kept = tuple(
            run
            for run in self.runs
            if run.experiment_id in ids or any(tag in run.tags for tag in tags)
        )
        return replace(self, runs=kept)

    def __len__(self) -> int:
        return len(self.runs)


def _expand_spec(
    spec: registry.ExperimentSpec,
    points: Optional[int],
    seed: Optional[int],
    grid: Optional[Mapping[str, Sequence[Any]]],
    params: Optional[Mapping[str, Any]],
) -> List[PlannedRun]:
    """One :class:`PlannedRun` per parameter-grid combination of ``spec``."""
    base = spec.bench_params()
    contract_points = base.pop("points", None)
    base.update(params or {})
    if grid is None:
        combos = spec.grid_combinations()
    else:
        names = sorted(grid)
        combos = tuple(
            dict(zip(names, values))
            for values in itertools.product(*(grid[name] for name in names))
        ) or ({},)
    runs = []
    for combo in combos:
        run_params = {**base, **combo}
        run = PlannedRun(
            run_id=_run_id(spec.experiment_id, combo, points, seed),
            experiment_id=spec.experiment_id,
            points=points if points is not None else contract_points,
            seed=seed,
            params=jsonify(run_params),
            tags=spec.tags,
            artifact=spec.bench.artifact if spec.bench else None,
            canonical=not combo,
        )
        runs.append(run)
    return runs


def _run_id(
    experiment_id: str,
    combo: Mapping[str, Any],
    points: Optional[int],
    seed: Optional[int],
) -> str:
    parts = [experiment_id]
    for key in sorted(combo):
        parts.append(f"{_slug(key)}={_slug(combo[key])}")
    if points is not None:
        parts.append(f"points={points}")
    if seed is not None:
        parts.append(f"seed={seed}")
    return "--".join(parts)


def _dedupe(runs: Sequence[PlannedRun]) -> Tuple[PlannedRun, ...]:
    seen: Dict[str, PlannedRun] = {}
    for run in runs:
        seen.setdefault(run.run_id, run)
    return tuple(seen.values())


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #
@dataclass
class RunOutcome:
    """What happened to one planned run during a fleet execution."""

    run: PlannedRun
    status: str  # "ok" | "resumed" | "failed" | "not-run"
    directory: pathlib.Path
    duration_s: float = 0.0
    error: Optional[str] = None
    gate_passed: Optional[bool] = None
    gate_error: Optional[str] = None


@dataclass
class FleetReport:
    """Aggregate outcome of one fleet execution."""

    matrix: RunMatrix
    outcomes: List[RunOutcome]
    artifacts: List[pathlib.Path]

    @property
    def ok(self) -> bool:
        """True when every run completed (now or resumed) and every gate passed."""
        return all(o.status in ("ok", "resumed") for o in self.outcomes) and all(
            o.gate_passed is not False for o in self.outcomes
        )

    def to_text(self) -> str:
        """Human-readable one-line-per-run summary."""
        lines = [f"== fleet: {self.matrix.name} ({len(self.outcomes)} runs) =="]
        for outcome in self.outcomes:
            gate = ""
            if outcome.gate_passed is True:
                gate = " gate=pass"
            elif outcome.gate_passed is False:
                gate = " gate=FAIL"
            detail = f" ({outcome.error})" if outcome.error else ""
            lines.append(
                f"{outcome.run.run_id:<40s} {outcome.status:<7s} "
                f"{outcome.duration_s:7.1f}s{gate}{detail}"
            )
        for path in self.artifacts:
            lines.append(f"artifact: {path}")
        return "\n".join(lines)


def _git_sha() -> Optional[str]:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.SubprocessError):
        return None


def _execute_run(run_payload: Dict[str, Any], run_dir: str) -> Dict[str, Any]:
    """Worker entry point: execute one run and persist its result directory.

    ``metadata.json`` is written last (atomically), so a crash at any
    earlier point leaves an invalid directory that a resumed fleet
    re-executes.
    """
    directory = pathlib.Path(run_dir)
    directory.mkdir(parents=True, exist_ok=True)
    spec = registry.get_experiment(run_payload["experiment_id"])
    started = time.time()
    result = spec.run(
        points=run_payload["points"],
        seed=run_payload["seed"],
        **run_payload["params"],
    )
    finished = time.time()
    (directory / "report.txt").write_text(result.to_text() + "\n", encoding="utf-8")
    (directory / "result.json").write_text(
        json.dumps(result.to_payload(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    # Drivers that ran with live telemetry (the repro.obs convention) put a
    # phase/event breakdown into metadata["telemetry"]; persist it per run
    # so fleet output directories carry the observability record alongside
    # report.txt / result.json.
    telemetry = result.metadata.get("telemetry")
    if telemetry is not None:
        (directory / "telemetry.json").write_text(
            json.dumps(telemetry, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    metadata = {
        "run_id": run_payload["run_id"],
        "experiment_id": run_payload["experiment_id"],
        "points": run_payload["points"],
        "seed": run_payload["seed"],
        "params": run_payload["params"],
        "tags": list(run_payload["tags"]),
        "artifact": run_payload["artifact"],
        "canonical": run_payload["canonical"],
        "fingerprint": run_payload["fingerprint"],
        "git_sha": run_payload["git_sha"],
        "python": sys.version.split()[0],
        "status": "ok",
        "started_at": started,
        "finished_at": finished,
        "duration_s": round(finished - started, 3),
    }
    tmp = directory / "metadata.json.tmp"
    tmp.write_text(json.dumps(metadata, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, directory / "metadata.json")
    return metadata


def _load_valid_metadata(
    directory: pathlib.Path, fingerprint: str
) -> Optional[Dict[str, Any]]:
    """The run's metadata if its directory is a valid completed result."""
    metadata_path = directory / "metadata.json"
    if not metadata_path.is_file() or not (directory / "result.json").is_file():
        return None
    try:
        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if metadata.get("status") != "ok" or metadata.get("fingerprint") != fingerprint:
        return None
    return metadata


class FleetRunner:
    """Executes a :class:`RunMatrix` on a worker pool with durable results.

    Parameters
    ----------
    matrix:
        The planned runs.
    results_root:
        Root directory; each run lands in ``<root>/<matrix.name>/<run_id>/``.
    jobs:
        Worker-pool size.  ``0`` executes runs inline in this process
        (useful for debugging and doctests); ``None`` uses the CPU count.
    resume:
        Skip runs whose result directory already holds a valid
        ``metadata.json`` with a matching fingerprint; wipe and re-run
        anything else.
    gate:
        Evaluate the registry gates on every completed (or resumed) run.
    artifacts_dir:
        Where the consolidated ``BENCH_*.json`` files are written.
    """

    def __init__(
        self,
        matrix: RunMatrix,
        results_root: os.PathLike = DEFAULT_RESULTS_ROOT,
        jobs: Optional[int] = None,
        resume: bool = False,
        gate: bool = True,
        artifacts_dir: os.PathLike = DEFAULT_ARTIFACTS_DIR,
    ) -> None:
        self.matrix = matrix
        self.results_root = pathlib.Path(results_root)
        self.jobs = (os.cpu_count() or 1) if jobs is None else jobs
        self.resume = resume
        self.gate = gate
        self.artifacts_dir = pathlib.Path(artifacts_dir)

    # ------------------------------------------------------------------ #
    def run_dir(self, run: PlannedRun) -> pathlib.Path:
        """The durable result directory of one planned run."""
        return self.results_root / self.matrix.name / run.run_id

    def execute(self, echo=print) -> FleetReport:
        """Run the matrix; returns the aggregate report."""
        git_sha = _git_sha()
        outcomes: Dict[str, RunOutcome] = {}
        pending: List[PlannedRun] = []

        for run in self.matrix.runs:
            directory = self.run_dir(run)
            if self.resume and _load_valid_metadata(directory, run.fingerprint()):
                outcomes[run.run_id] = RunOutcome(run, "resumed", directory)
                echo(f"[fleet] resume: skipping completed {run.run_id}")
                continue
            if directory.exists():
                if self.resume:
                    echo(f"[fleet] resume: {run.run_id} is partial/stale, re-running")
                shutil.rmtree(directory)
            pending.append(run)

        self._execute_pending(pending, outcomes, git_sha, echo)
        ordered = [outcomes[run.run_id] for run in self.matrix.runs]
        artifacts = self._consolidate(ordered, echo)
        if self.gate:
            self._evaluate_gates(ordered, echo)
        return FleetReport(matrix=self.matrix, outcomes=ordered, artifacts=artifacts)

    # ------------------------------------------------------------------ #
    def _payload(self, run: PlannedRun, git_sha: Optional[str]) -> Dict[str, Any]:
        return {
            "run_id": run.run_id,
            "experiment_id": run.experiment_id,
            "points": run.points,
            "seed": run.seed,
            "params": run.params,
            "tags": run.tags,
            "artifact": run.artifact,
            "canonical": run.canonical,
            "fingerprint": run.fingerprint(),
            "git_sha": git_sha,
        }

    def _execute_pending(
        self,
        pending: List[PlannedRun],
        outcomes: Dict[str, RunOutcome],
        git_sha: Optional[str],
        echo,
    ) -> None:
        if not pending:
            return
        if self.jobs == 0:
            for run in pending:
                outcomes[run.run_id] = self._execute_inline(run, git_sha, echo)
            return
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max(1, min(self.jobs, len(pending)))
        ) as pool:
            futures = {
                pool.submit(
                    _execute_run, self._payload(run, git_sha), str(self.run_dir(run))
                ): run
                for run in pending
            }
            for future in concurrent.futures.as_completed(futures):
                run = futures[future]
                directory = self.run_dir(run)
                try:
                    metadata = future.result()
                    outcomes[run.run_id] = RunOutcome(
                        run, "ok", directory, duration_s=metadata["duration_s"]
                    )
                    echo(f"[fleet] done: {run.run_id} ({metadata['duration_s']:.1f}s)")
                except concurrent.futures.process.BrokenProcessPool as exc:
                    # A worker died (OOM-kill, SIGKILL, hard crash).  The
                    # whole pool is broken; every run without a result is
                    # recorded as failed and the partial directories stay
                    # invalid for the next --resume pass to redo.
                    for other, other_run in futures.items():
                        if other_run.run_id not in outcomes:
                            outcomes[other_run.run_id] = RunOutcome(
                                other_run,
                                "failed",
                                self.run_dir(other_run),
                                error=f"worker pool broke: {exc}",
                            )
                    echo(f"[fleet] worker pool broke: {exc}")
                    return
                except Exception as exc:  # noqa: BLE001 - per-run isolation
                    outcomes[run.run_id] = RunOutcome(
                        run, "failed", directory, error=f"{type(exc).__name__}: {exc}"
                    )
                    echo(f"[fleet] FAILED: {run.run_id}: {exc}")

    def _execute_inline(
        self, run: PlannedRun, git_sha: Optional[str], echo
    ) -> RunOutcome:
        directory = self.run_dir(run)
        try:
            metadata = _execute_run(self._payload(run, git_sha), str(directory))
        except Exception as exc:  # noqa: BLE001 - per-run isolation
            echo(f"[fleet] FAILED: {run.run_id}: {exc}")
            return RunOutcome(
                run, "failed", directory, error=f"{type(exc).__name__}: {exc}"
            )
        echo(f"[fleet] done: {run.run_id} ({metadata['duration_s']:.1f}s)")
        return RunOutcome(run, "ok", directory, duration_s=metadata["duration_s"])

    # ------------------------------------------------------------------ #
    def _stored_result(self, outcome: RunOutcome) -> ExperimentResult:
        payload = json.loads(
            (outcome.directory / "result.json").read_text(encoding="utf-8")
        )
        return ExperimentResult.from_payload(payload)

    def _consolidate(self, outcomes: List[RunOutcome], echo) -> List[pathlib.Path]:
        """Rebuild the consolidated ``BENCH_*.json`` artifacts from run dirs."""
        artifacts: List[pathlib.Path] = []
        for outcome in outcomes:
            run = outcome.run
            if not run.artifact or not run.canonical:
                continue
            if outcome.status not in ("ok", "resumed"):
                echo(f"[fleet] artifact {run.artifact} skipped: {run.run_id} did not complete")
                continue
            spec = registry.get_experiment(run.experiment_id)
            payload = spec.bench.payload(self._stored_result(outcome))
            self.artifacts_dir.mkdir(parents=True, exist_ok=True)
            path = self.artifacts_dir / run.artifact
            path.write_text(
                json.dumps(jsonify(payload), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            echo(f"[fleet] wrote {path}")
            artifacts.append(path)
        return artifacts

    def _evaluate_gates(self, outcomes: List[RunOutcome], echo) -> None:
        for outcome in outcomes:
            if outcome.status not in ("ok", "resumed"):
                continue
            spec = registry.get_experiment(outcome.run.experiment_id)
            if spec.bench is None or spec.bench.gate is None:
                continue
            try:
                spec.bench.gate(self._stored_result(outcome))
            except AssertionError as exc:
                outcome.gate_passed = False
                outcome.gate_error = str(exc)
                echo(f"[fleet] gate FAILED for {outcome.run.run_id}: {exc}")
            else:
                outcome.gate_passed = True


# --------------------------------------------------------------------- #
# Single-benchmark path (shared by the benchmarks/bench_*.py wrappers)
# --------------------------------------------------------------------- #
def run_bench(
    experiment_id: str,
    seed: Optional[int] = None,
    reports_dir: Optional[os.PathLike] = None,
    artifacts_dir: Optional[os.PathLike] = None,
    gate: bool = True,
) -> ExperimentResult:
    """Run one registered benchmark through its contract, in-process.

    Resolves the spec's benchmark parameters (honouring the ``BENCH_*``
    environment knobs), executes the driver, records the plain-text report
    under ``reports_dir``, emits the spec's ``BENCH_*.json`` artifact under
    ``artifacts_dir``, and finally enforces the gate (``AssertionError`` on
    violation — after the artifact is written, so failed runs still leave
    their numbers behind).
    """
    spec = registry.get_experiment(experiment_id)
    params = spec.bench_params()
    points = params.pop("points", None)
    result = spec.run(points=points, seed=seed, **params)
    if reports_dir is not None:
        reports_dir = pathlib.Path(reports_dir)
        reports_dir.mkdir(parents=True, exist_ok=True)
        text = result.to_text()
        (reports_dir / f"{result.experiment_id}.txt").write_text(
            text + "\n", encoding="utf-8"
        )
        print(f"\n{text}\n")
    if artifacts_dir is not None and spec.bench and spec.bench.artifact:
        artifacts_dir = pathlib.Path(artifacts_dir)
        artifacts_dir.mkdir(parents=True, exist_ok=True)
        path = artifacts_dir / spec.bench.artifact
        path.write_text(
            json.dumps(jsonify(spec.bench.payload(result)), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path}")
    if gate and spec.bench and spec.bench.gate:
        spec.bench.gate(result)
    return result
