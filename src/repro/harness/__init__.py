"""Benchmark harness.

* :mod:`repro.harness.results` — result containers (series, tables, runs).
* :mod:`repro.harness.reporting` — plain-text rendering of tables and series
  (the repository deliberately has no plotting dependency; every figure is
  reproduced as a printed series with the same axes as the paper).
* :mod:`repro.harness.runner` — drives any stream clusterer over a stream
  while measuring response time, throughput and quality.
* :mod:`repro.harness.experiments` — one driver per table/figure of the
  paper's evaluation (Section 6); the ``benchmarks/`` directory contains one
  pytest-benchmark file per driver.
"""

from repro.harness.results import ExperimentResult, RunMetrics, SeriesResult
from repro.harness.reporting import format_comparison, format_series, format_table
from repro.harness.runner import StreamRunner
from repro.harness import ablations, experiments, scenarios

__all__ = [
    "SeriesResult",
    "RunMetrics",
    "ExperimentResult",
    "StreamRunner",
    "format_table",
    "format_series",
    "format_comparison",
    "experiments",
    "scenarios",
    "ablations",
]
