"""Scenario experiments: cluster evolution and adaptive τ.

These drivers reproduce the evolution-centric parts of the evaluation:

* Figures 6 and 7 — the SDS synthetic stream with its scripted
  merge / emerge / disappear / split timeline,
* Figure 8 and Table 3 — topic evolution on the news stream,
* Figure 15 and Table 4 — dynamic τ vs static τ on SDS.

All of them use a fast-forgetting decay (λ equal to the arrival rate, i.e.
an effective per-point decay of ``a``) so that the 20-second evolution of
the SDS stream is observable; EXPERIMENTS.md discusses why the paper's
timeline implies this parameterisation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core import EDMStream, EvolutionType
from repro.harness.results import ExperimentResult, SeriesResult
from repro.streams import NewsStreamGenerator, SDSGenerator


def _sds_model(rate: float, radius: float = 0.3, adaptive_tau: bool = True,
               tau: Optional[float] = None, alpha: Optional[float] = None) -> EDMStream:
    """EDMStream configured for the SDS evolution experiments."""
    return EDMStream(
        radius=radius,
        beta=0.0021,
        decay_a=0.998,
        decay_lambda=rate,  # per-point forgetting; see module docstring
        stream_rate=rate,
        adaptive_tau=adaptive_tau,
        tau=tau,
        alpha=alpha,
    )


# --------------------------------------------------------------------- #
# Figures 6 and 7 — SDS evolution tracking
# --------------------------------------------------------------------- #
def experiment_evolution_sds(
    n_points: int = 20000, rate: float = 1000.0, seed: int = 7
) -> ExperimentResult:
    """Figures 6-7: run EDMStream over SDS and report the evolution timeline."""
    generator = SDSGenerator(n_points=n_points, rate=rate, seed=seed)
    stream = generator.generate()
    model = _sds_model(rate)

    clusters_per_second: Dict[int, int] = {}
    snapshot_rows: List[Dict[str, Any]] = []
    snapshot_times = set(generator.snapshot_times())
    for point in stream:
        model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
        second = int(point.timestamp) + 1
        clusters_per_second[second] = model.n_clusters
        if point.timestamp in snapshot_times:
            snapshot_times.discard(point.timestamp)
    for snapshot_time in generator.snapshot_times():
        second = min(int(snapshot_time), max(clusters_per_second))
        snapshot_rows.append(
            {
                "snapshot_time_s": snapshot_time,
                "clusters": clusters_per_second.get(
                    max(1, second), clusters_per_second[max(clusters_per_second)]
                ),
            }
        )

    result = ExperimentResult(
        experiment_id="fig6_7",
        description="Cluster evolution activities on the SDS stream",
    )
    series = SeriesResult(
        name="EDMStream", x_label="time (s)", y_label="number of clusters"
    )
    for second in sorted(clusters_per_second):
        series.append(second, clusters_per_second[second])
    result.add_series("clusters_over_time", series)
    result.add_table("snapshots", snapshot_rows)
    result.add_table(
        "evolution_events",
        [
            {
                "time_s": round(event.time, 2),
                "type": event.event_type.value,
                "description": event.description,
            }
            for event in model.evolution.events
            if event.event_type != EvolutionType.ADJUST
        ],
    )
    result.add_table("event_counts", [model.evolution.counts()])
    result.metadata["expected_events"] = {
        "merge": "two initial clusters merge around 8-9 s",
        "emerge": "a new cluster appears around 12 s",
        "disappear": "the merged cluster disappears around 14-16 s",
        "split": "the emergent cluster splits around 14-17 s",
    }
    return result


# --------------------------------------------------------------------- #
# Figure 8 and Table 3 — news-stream topic evolution
# --------------------------------------------------------------------- #
def experiment_news_evolution(
    n_points: int = 8000, seed: int = 17
) -> ExperimentResult:
    """Figure 8 / Table 3: topic-level cluster evolution on the news stream."""
    generator = NewsStreamGenerator(n_points=n_points, seed=seed)
    stream = generator.generate()
    rate = stream.rate
    model = EDMStream(
        radius=0.4,
        beta=0.0021,
        metric="jaccard",
        decay_a=0.998,
        decay_lambda=rate,
        stream_rate=rate,
        adaptive_tau=True,
    )
    for point in stream:
        model.learn_one(point.values, timestamp=point.timestamp, label=point.label)

    seconds_per_day = (len(stream) / rate) / generator.days
    event_rows = []
    for event in model.evolution.events:
        if event.event_type in (EvolutionType.ADJUST, EvolutionType.SURVIVE):
            continue
        event_rows.append(
            {
                "day": round(event.time / seconds_per_day, 1),
                "type": event.event_type.value,
                "description": event.description,
            }
        )

    result = ExperimentResult(
        experiment_id="fig8_table3",
        description="Cluster evolution activities on the news stream (Jaccard distance)",
    )
    result.add_table("observed_events", event_rows)
    result.add_table("expected_events", generator.expected_events())
    result.add_table("event_counts", [model.evolution.counts()])
    result.metadata["n_clusters_final"] = model.n_clusters
    return result


# --------------------------------------------------------------------- #
# Figure 15 and Table 4 — dynamic vs static τ
# --------------------------------------------------------------------- #
def experiment_adaptive_tau(
    n_points: int = 20000,
    rate: float = 1000.0,
    seed: int = 7,
    static_tau: float = 5.0,
    seconds_reported: int = 10,
) -> ExperimentResult:
    """Figure 15 / Table 4: number of clusters with dynamic vs static τ on SDS."""
    stream = SDSGenerator(n_points=n_points, rate=rate, seed=seed).generate()

    dynamic_model = _sds_model(rate, adaptive_tau=True)
    static_model = _sds_model(rate, adaptive_tau=False, tau=static_tau)

    dynamic_counts: Dict[int, int] = {}
    static_counts: Dict[int, int] = {}
    decision_graphs: Dict[int, List[Tuple[float, float, int]]] = {}
    for point in stream:
        dynamic_model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
        static_model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
        second = int(point.timestamp) + 1
        dynamic_counts[second] = dynamic_model.n_clusters
        static_counts[second] = static_model.n_clusters
        if second in (4, 5, 6) and second not in decision_graphs and point.timestamp >= second - 0.01:
            decision_graphs[second] = dynamic_model.decision_graph()

    result = ExperimentResult(
        experiment_id="fig15_table4",
        description="Dynamic vs static tau: number of clusters over the first seconds (SDS)",
    )
    rows = []
    for second in range(1, seconds_reported + 1):
        rows.append(
            {
                "t (s)": second,
                "dynamic tau": dynamic_counts.get(second, 0),
                "static tau": static_counts.get(second, 0),
            }
        )
    result.add_table("table4", rows)

    dynamic_series = SeriesResult(name="dynamic", x_label="time (s)", y_label="clusters")
    static_series = SeriesResult(name="static", x_label="time (s)", y_label="clusters")
    for second in sorted(dynamic_counts):
        dynamic_series.append(second, dynamic_counts[second])
        static_series.append(second, static_counts.get(second, 0))
    result.add_series("dynamic_tau", dynamic_series)
    result.add_series("static_tau", static_series)

    tau_series = SeriesResult(name="tau", x_label="time (s)", y_label="tau value")
    for time_point, tau_value in dynamic_model.tau_history:
        tau_series.append(time_point, tau_value)
    result.add_series("tau_over_time", tau_series)

    result.metadata["alpha"] = dynamic_model.alpha
    result.metadata["static_tau"] = static_tau
    result.metadata["decision_graph_sizes"] = {
        second: len(graph) for second, graph in decision_graphs.items()
    }
    return result
