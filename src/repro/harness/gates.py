"""Benchmark contracts: per-experiment run parameters, artifacts, and gates.

Each entry of :func:`bench_contracts` describes how one registered
experiment runs *as a benchmark*: the exact driver parameters (resolved
at call time so the ``BENCH_*`` environment knobs CI sets keep working),
the consolidated ``BENCH_*.json`` artifact it emits (payload fields are
byte-compatible with the pre-fleet per-script outputs), and the gate
assertions enforced both by the thin ``benchmarks/bench_*.py`` wrappers
and by ``python -m repro fleet run --gate``.

Gates raise ``AssertionError`` with the same messages the historical
scripts printed; the docstring of each gate records the paper shape that
must hold.  A gate must only consume what
:meth:`repro.harness.results.ExperimentResult.to_payload` round-trips
(tables, series, metadata), so resumed fleet runs can be re-gated from
their durable ``result.json`` without re-execution.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from repro.harness.results import ExperimentResult

__all__ = ["bench_contracts"]


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, str(default)))


def _env_tuple(name: str, default: str) -> tuple:
    return tuple(
        item.strip() for item in os.environ.get(name, default).split(",") if item.strip()
    )


# --------------------------------------------------------------------- #
# Paper figures and tables
# --------------------------------------------------------------------- #

#: Competitors plotted in each panel of Figure 9 (besides EDMStream).
FIG9_PAPER_SERIES = {
    "KDDCUP99": ("D-Stream", "DenStream", "DBSTREAM"),
    "CoverType": ("D-Stream", "DBSTREAM"),
    "PAMAP2": ("D-Stream", "DBSTREAM"),
}

#: Competitors EDMStream must beat per dataset in Figure 10 (DenStream
#: completes on our small surrogates, unlike at the paper's scale, so it
#: is asserted only on KDDCUP99 — the dataset where the paper also shows
#: it surviving at 1 K/s).
FIG10_PAPER_SERIES = {
    "KDDCUP99": ("D-Stream", "DenStream", "DBSTREAM", "MR-Stream"),
    "CoverType": ("D-Stream", "DBSTREAM", "MR-Stream"),
    "PAMAP2": ("D-Stream", "DBSTREAM", "MR-Stream"),
}


def gate_table2(result: ExperimentResult) -> None:
    """Table 2 must inventory the paper's 10 datasets and our 5 surrogates."""
    assert len(result.tables["paper"]) == 10
    assert len(result.tables["surrogates"]) == 5


def gate_fig7(result: ExperimentResult) -> None:
    """All four SDS evolution activities (Figures 6-7) must be observed."""
    counts = result.tables["event_counts"][0]
    assert counts["merge"] >= 1, "the two initial clusters should merge"
    assert counts["emerge"] >= 3, "a new cluster should emerge around 12 s"
    assert counts["disappear"] >= 1, "the merged cluster should disappear"
    assert counts["split"] >= 1, "the emergent cluster should split"
    series = result.series["clusters_over_time"]
    assert max(series.y) >= 2 and min(series.y) >= 1


def gate_fig8(result: ExperimentResult) -> None:
    """The scripted merges and splits of Table 3 must surface as events."""
    counts = result.tables["event_counts"][0]
    observed_types = {row["type"] for row in result.tables["observed_events"]}
    assert counts["merge"] + counts["split"] >= 2
    assert "merge" in observed_types or "split" in observed_types
    assert result.metadata["n_clusters_final"] >= 2


def gate_fig9(result: ExperimentResult) -> None:
    """EDMStream responds faster than every competitor the paper plots."""
    summary = result.tables["summary"]
    for dataset, competitors in FIG9_PAPER_SERIES.items():
        edm = next(
            row["mean_response_us"]
            for row in summary
            if row["dataset"] == dataset and row["algorithm"] == "EDMStream"
        )
        best_other = min(
            row["mean_response_us"]
            for row in summary
            if row["dataset"] == dataset and row["algorithm"] in competitors
        )
        assert edm < best_other, (
            f"EDMStream should respond faster than every competitor the paper "
            f"plots on {dataset} (EDMStream {edm} µs vs best competitor {best_other} µs)"
        )


def gate_fig10(result: ExperimentResult) -> None:
    """EDMStream sustains a higher real-time throughput than the competitors."""
    summary = result.tables["summary"]
    for dataset, competitors in FIG10_PAPER_SERIES.items():
        edm = next(
            row["mean_throughput"]
            for row in summary
            if row["dataset"] == dataset and row["algorithm"] == "EDMStream"
        )
        assert edm > 0
        best_other = max(
            row["mean_throughput"]
            for row in summary
            if row["dataset"] == dataset and row["algorithm"] in competitors
        )
        assert edm > best_other, (
            f"EDMStream should sustain a higher real-time throughput than the "
            f"competitors on {dataset} (EDMStream {edm} pt/s vs best {best_other} pt/s)"
        )


def gate_fig11(result: ExperimentResult) -> None:
    """Theorem-1 filtering cuts work; adding Theorem 2 cuts it further."""
    for dataset in ("KDDCUP99", "CoverType", "PAMAP2"):
        rows = {
            r["variant"]: r for r in result.tables["summary"] if r["dataset"] == dataset
        }
        assert rows["df"]["distance_computations"] <= rows["wf"]["distance_computations"]
        assert (
            rows["df+tif"]["distance_computations"] <= rows["df"]["distance_computations"]
        )
        assert rows["df+tif"]["update_time_ms"] <= rows["wf"]["update_time_ms"] * 1.1


def gate_fig12(result: ExperimentResult) -> None:
    """Response time grows with the dimensionality (more per-distance work)."""
    series = result.series["EDMStream"]
    assert series.y[-1] >= series.y[0]
    assert all(y > 0 for y in series.y)


def gate_fig13(result: ExperimentResult) -> None:
    """EDMStream's CMM is comparable to the best baseline on each dataset."""
    rows = result.tables["summary"]
    for dataset in {row["dataset"] for row in rows}:
        per_dataset = [r for r in rows if r["dataset"] == dataset]
        best = max(r["mean_cmm"] for r in per_dataset)
        edm = [r["mean_cmm"] for r in per_dataset if r["algorithm"] == "EDMStream"][0]
        assert edm >= best - 0.35, (
            f"EDMStream's CMM on {dataset} should be comparable to the best baseline"
        )


def gate_fig14(result: ExperimentResult) -> None:
    """Quality stays stable when the stream is replayed at higher rates."""
    values = [row["mean_cmm"] for row in result.tables["summary"]]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert max(values) - min(values) < 0.35, "CMM should be stable across stream rates"


def gate_fig15(result: ExperimentResult) -> None:
    """Adaptive τ keeps tracking two clusters longer than the static τ."""
    rows = result.tables["table4"]
    dynamic_total = sum(row["dynamic tau"] for row in rows)
    static_total = sum(row["static tau"] for row in rows)
    assert dynamic_total > static_total, (
        "the adaptive tau should keep tracking two clusters longer than the static tau"
    )
    assert any(row["dynamic tau"] == 2 and row["static tau"] == 1 for row in rows)


def gate_fig16(result: ExperimentResult) -> None:
    """Measured reservoir sizes respect the Theorem-3 upper bound."""
    for row in result.tables["summary"]:
        assert row["within_bound"], (
            f"measured reservoir size exceeded the Theorem-3 bound on {row['dataset']}"
        )
        assert row["max_measured_size"] <= row["upper_bound"]


def gate_fig17(result: ExperimentResult) -> None:
    """Smaller radii yield more, finer cluster-cells; quality stays usable."""
    rows = result.tables["summary"]
    assert rows[0]["radius"] <= rows[-1]["radius"]
    assert rows[0]["total_cells"] >= rows[-1]["total_cells"]
    assert all(row["mean_response_us"] > 0 for row in rows)
    assert all(0.0 <= row["mean_cmm"] <= 1.0 for row in rows)


def gate_ablation(result: ExperimentResult) -> None:
    """Incremental DP-Tree maintenance answers updates faster than batch DP."""
    rows = {row["algorithm"]: row for row in result.tables["summary"]}
    assert rows["EDMStream"]["mean_response_us"] < rows["Periodic-DP"]["mean_response_us"]


def gate_ablation_decay(result: ExperimentResult) -> None:
    """A decayed configuration tracks the post-drift concept at least as well."""
    rows = {row["variant"]: row for row in result.tables["summary"]}
    assert all(0.0 <= row["mean_cmm"] <= 1.0 for row in rows.values())
    decayed_best = max(
        row["post_drift_cmm"] for name, row in rows.items() if name != "no decay"
    )
    assert decayed_best >= rows["no decay"]["post_drift_cmm"] - 0.05, (
        "a decayed configuration should track the post-drift concept at least "
        "as well as the no-decay configuration"
    )


def gate_ablation_beta(result: ExperimentResult) -> None:
    """Larger β ⇒ higher active threshold ⇒ no more active cells."""
    rows = result.tables["summary"]
    actives = [row["active_cells"] for row in rows]
    thresholds = [row["active_threshold"] for row in rows]
    assert thresholds == sorted(thresholds), "threshold must rise with beta"
    assert actives[0] >= actives[-1], "larger beta must not produce more active cells"
    paper_row = next(row for row in rows if row["beta"] == 0.0021)
    assert paper_row["clusters"] >= 1
    assert 0.0 <= paper_row["mean_cmm"] <= 1.0


def gate_ablation_index(result: ExperimentResult) -> None:
    """All indexes agree with brute force; a spatial index stays competitive."""
    rows = result.tables["summary"]
    assert all(row["agreement_with_brute_force"] > 0.99 for row in rows)
    largest = max(row["seeds"] for row in rows)
    at_largest = {
        row["index"]: row["query_time_us"] for row in rows if row["seeds"] == largest
    }
    spatial_best = min(at_largest["Grid"], at_largest["KDTree"])
    assert spatial_best <= at_largest["BruteForce"] * 1.5, (
        "at the largest seed count a spatial index should be competitive with "
        f"the linear scan (spatial {spatial_best} µs vs brute {at_largest['BruteForce']} µs)"
    )


def gate_ablation_tracking(result: ExperimentResult) -> None:
    """Online tracking sees the SDS story; offline trackers detect activity."""
    counts = {row["tracker"]: row for row in result.tables["event_counts"]}
    online = counts["EDMStream (online)"]
    assert online["emerge"] >= 1
    assert online["merge"] + online["split"] >= 1
    for name in ("MONIC (offline)", "MEC (offline)"):
        assert (
            sum(counts[name].get(k, 0) for k in ("emerge", "disappear", "split", "merge"))
            >= 1
        )
    cost = {row["component"]: row["seconds"] for row in result.tables["cost"]}
    assert all(value >= 0 for value in cost.values())


def gate_ablation_cftree(result: ExperimentResult) -> None:
    """The decayed DP-Tree tracks the post-drift concept at least as well."""
    rows = {row["algorithm"]: row for row in result.tables["summary"]}
    assert set(rows) == {"EDMStream", "BIRCH"}
    assert all(0.0 <= row["mean_cmm"] <= 1.0 for row in rows.values())
    assert rows["EDMStream"]["post_drift_cmm"] >= rows["BIRCH"]["post_drift_cmm"] - 0.05, (
        "the decayed DP-Tree should track the post-drift concept at least as "
        "well as the un-decayed CF-Tree"
    )
    assert rows["EDMStream"]["final_clusters"] >= 1


# --------------------------------------------------------------------- #
# CI benchmark matrix (tag "bench"): artifacts + gates
# --------------------------------------------------------------------- #
def params_fig10_batch() -> Dict[str, Any]:
    """Workload knobs: ``BENCH_FIG10_POINTS``, ``BENCH_FIG10_DATASETS``."""
    params: Dict[str, Any] = {"points": _env_int("BENCH_FIG10_POINTS", 16000)}
    datasets_env = os.environ.get("BENCH_FIG10_DATASETS")
    if datasets_env:
        params["datasets"] = _env_tuple("BENCH_FIG10_DATASETS", "")
    return params


def payload_fig10_batch(result: ExperimentResult) -> Dict[str, Any]:
    """The ``BENCH_throughput.json`` payload (fields unchanged since PR 1)."""
    return {
        "experiment": "fig10_batch_ingestion",
        "n_points": result.metadata["n_points"],
        "batch_sizes": result.metadata["batch_sizes"],
        "min_speedup_required_on_synthetic": _env_float("BENCH_BATCH_MIN_SPEEDUP", 6.0),
        "rows": result.tables["summary"],
    }


def gate_fig10_batch(result: ExperimentResult) -> None:
    """Micro-batch ingestion must not be slower, and must hit the speedup bar.

    At batch size 256 the batch path must never be slower than the
    sequential path, and on the paper's synthetic workloads (SDS, HDS) it
    must reach ``BENCH_BATCH_MIN_SPEEDUP`` (default 6×, reflecting the
    structure-of-arrays batch engine; the CI job lowers this to 2× because
    its runners are small and noisy).  The real-dataset surrogates are
    dominated by the irreducible nearest-seed scan both paths share, so
    they gate only on "not slower".  The not-slower floor sits slightly
    below 1.0 because the gate compares two single wall-clock runs.
    """
    min_speedup = _env_float("BENCH_BATCH_MIN_SPEEDUP", 6.0)
    not_slower_floor = _env_float("BENCH_BATCH_NOT_SLOWER_FLOOR", 0.9)
    by_dataset: Dict[str, Dict[str, Any]] = {}
    for row in result.tables["summary"]:
        by_dataset.setdefault(row["dataset"], {})[row["mode"]] = row
    for dataset, modes in by_dataset.items():
        batch = modes.get("batch-256")
        if batch is None:
            continue
        speedup = batch["speedup_vs_sequential"]
        assert speedup >= not_slower_floor, (
            f"batch ingestion must not be slower than sequential on {dataset} "
            f"(got {speedup}x at batch_size=256, floor {not_slower_floor}x)"
        )
        if batch["synthetic"]:
            assert speedup >= min_speedup, (
                f"batch ingestion should reach {min_speedup}x over sequential on "
                f"the synthetic workload {dataset} (got {speedup}x at batch_size=256)"
            )


def params_query() -> Dict[str, Any]:
    """Workload knobs: ``BENCH_QUERY_POINTS``, ``BENCH_QUERY_QUERIES``."""
    return {
        "points": _env_int("BENCH_QUERY_POINTS", 16000),
        "n_queries": _env_int("BENCH_QUERY_QUERIES", 10000),
        "batch_sizes": (1, 64, 4096),
    }


def payload_query(result: ExperimentResult) -> Dict[str, Any]:
    """The ``BENCH_query.json`` payload (fields unchanged since PR 2)."""
    return {
        "experiment": "query_throughput",
        "n_points": result.metadata["n_points"],
        "n_queries": result.metadata["n_queries"],
        "snapshot": result.metadata["snapshot"],
        "min_speedup_required_at_largest_batch": _env_float(
            "BENCH_QUERY_MIN_SPEEDUP", 5.0
        ),
        "rows": result.tables["summary"],
    }


def gate_query(result: ExperimentResult) -> None:
    """Snapshot ``predict_many`` beats the per-point loop.

    At batch sizes > 1 it must never be slower than the loop
    (``BENCH_QUERY_NOT_SLOWER_FLOOR``, default 1.0) and at the largest
    batch size it must reach ``BENCH_QUERY_MIN_SPEEDUP`` (default 5×, the
    ISSUE 2 acceptance bar).  Batch size 1 is the degenerate case and is
    reported but not gated.
    """
    min_speedup = _env_float("BENCH_QUERY_MIN_SPEEDUP", 5.0)
    not_slower_floor = _env_float("BENCH_QUERY_NOT_SLOWER_FLOOR", 1.0)
    gated = [row for row in result.tables["summary"] if row["batch_size"] > 1]
    assert gated, "no gated predict_many rows in the summary"
    for row in gated:
        assert row["speedup_vs_loop"] >= not_slower_floor, (
            f"snapshot predict_many must not be slower than the per-point loop "
            f"(got {row['speedup_vs_loop']}x at batch size {row['batch_size']}, "
            f"floor {not_slower_floor}x)"
        )
    largest = max(gated, key=lambda row: row["batch_size"])
    assert largest["speedup_vs_loop"] >= min_speedup, (
        f"snapshot predict_many should reach {min_speedup}x over the per-point "
        f"loop at batch size {largest['batch_size']} "
        f"(got {largest['speedup_vs_loop']}x)"
    )


def params_serve() -> Dict[str, Any]:
    """Workload knobs: ``BENCH_SERVING_POINTS`` / ``_WORKERS`` / ``_MEASURE_S``."""
    return {
        "points": _env_int("BENCH_SERVING_POINTS", 4000),
        "worker_counts": tuple(
            int(v) for v in _env_tuple("BENCH_SERVING_WORKERS", "1,4,8")
        ),
        "measure_s": _env_float("BENCH_SERVING_MEASURE_S", 2.0),
    }


def payload_serve(result: ExperimentResult) -> Dict[str, Any]:
    """The ``BENCH_serving.json`` payload (fields unchanged since PR 7)."""
    return {
        "experiment": "serving",
        "n_points": result.metadata["n_points"],
        "query_batch": result.metadata["query_batch"],
        "measure_s": result.metadata["measure_s"],
        "min_scaling_required_at_4_workers": _env_float("BENCH_SERVING_MIN_SCALING", 2.5),
        "min_qps_required": _env_float("BENCH_SERVING_MIN_QPS", 20000),
        "rows": result.tables["summary"],
    }


def gate_serve(result: ExperimentResult) -> None:
    """Serving fan-out: scaling, QPS floor, and shared-memory hygiene.

    When both the 1- and 4-worker rows are measured, the 4-worker cluster
    must sustain ``BENCH_SERVING_MIN_SCALING`` (default 2.5×) the
    single-worker QPS; every row must clear ``BENCH_SERVING_MIN_QPS``
    (default 20 000 queries/s); zero leaked ``/dev/shm`` segments per row
    and zero ``edmserv-*`` segments globally after the gate.
    """
    from repro.serving import list_segments

    min_scaling = _env_float("BENCH_SERVING_MIN_SCALING", 2.5)
    min_qps = _env_float("BENCH_SERVING_MIN_QPS", 20000)
    summary = result.tables["summary"]
    for row in summary:
        assert row["leaked_segments"] == 0, (
            f"{row['workers']}-worker cluster left {row['leaked_segments']} "
            f"shared-memory segments behind after shutdown"
        )
        assert row["qps"] >= min_qps, (
            f"{row['workers']}-worker cluster sustained only {row['qps']:.0f} "
            f"queries/s (floor {min_qps:.0f})"
        )
        assert row["staleness_max_s"] is not None and row["staleness_max_s"] < 60.0, (
            f"{row['workers']}-worker cluster served implausibly stale snapshots "
            f"({row['staleness_max_s']}s old)"
        )
    by_workers = {row["workers"]: row for row in summary}
    if 1 in by_workers and 4 in by_workers:
        scaling = by_workers[4]["scaling_vs_1w"]
        assert scaling >= min_scaling, (
            f"4 query workers should sustain >= {min_scaling}x the single-worker "
            f"QPS (got {scaling}x: {by_workers[4]['qps']:.0f} vs "
            f"{by_workers[1]['qps']:.0f} queries/s)"
        )
    leaked = list_segments()
    assert leaked == [], f"leaked shared-memory segments at exit: {leaked}"


def params_memory() -> Dict[str, Any]:
    """Workload knobs: ``BENCH_MEMORY_POINTS`` / ``_DATASETS`` / ``_CAP_FRACTION``."""
    n_points = _env_int("BENCH_MEMORY_POINTS", 50000)
    return {
        "points": n_points,
        "datasets": _env_tuple("BENCH_MEMORY_DATASETS", "SDS,Drift,HDS-10d"),
        "cap_fraction": _env_float("BENCH_MEMORY_CAP_FRACTION", 0.5),
        "eval_every": max(1000, min(10_000, n_points // 5)),
    }


def payload_memory(result: ExperimentResult) -> Dict[str, Any]:
    """The ``BENCH_memory.json`` payload (fields unchanged since PR 8)."""
    return {
        "experiment": "memory",
        "n_points": result.metadata["n_points"],
        "cap_fraction": result.metadata["cap_fraction"],
        "max_quality_drop": _env_float("BENCH_MEMORY_MAX_DROP", 0.10),
        "rows": result.tables["summary"],
    }


def gate_memory(result: ExperimentResult) -> None:
    """Bounded-memory runs stay under cap with bounded quality loss.

    Every capped row must stay at or under its ``memory_cap_bytes`` with
    zero transient enforcement failures, CMM/purity may drop at most
    ``BENCH_MEMORY_MAX_DROP`` (default 10%) relative to the exact run on
    the same workload, and the cap must actually constrain the workload
    (at least one eviction).
    """
    max_drop = _env_float("BENCH_MEMORY_MAX_DROP", 0.10)
    capped = [row for row in result.tables["summary"] if row["mode"] == "capped"]
    assert capped, "experiment_memory produced no capped rows"
    for row in capped:
        dataset = row["dataset"]
        assert row["under_cap"], (
            f"{dataset}: peak cell-state footprint {row['peak_cell_state_bytes']} "
            f"exceeded the cap {row['memory_cap_bytes']} "
            f"({row['bytes_per_point']} bytes/point)"
        )
        assert row["cap_overflows"] == 0, (
            f"{dataset}: {row['cap_overflows']} cap-enforcement failures while "
            f"bounded at {row['memory_cap_bytes']} bytes"
        )
        assert row["cmm_drop"] <= max_drop, (
            f"{dataset}: CMM dropped {row['cmm_drop']:.1%} under the cap "
            f"(budget {max_drop:.0%}; capped {row['cmm']} vs exact)"
        )
        assert row["purity_drop"] <= max_drop, (
            f"{dataset}: purity dropped {row['purity_drop']:.1%} under the cap "
            f"(budget {max_drop:.0%}; capped {row['purity']} vs exact)"
        )
        assert row["evictions"] > 0, (
            f"{dataset}: the capped run never evicted — the cap "
            f"{row['memory_cap_bytes']} did not constrain this workload"
        )


def params_obs() -> Dict[str, Any]:
    """Workload knobs: ``BENCH_OBS_POINTS`` / ``_TRIALS``."""
    return {
        "points": _env_int("BENCH_OBS_POINTS", 16000),
        "trials": _env_int("BENCH_OBS_TRIALS", 3),
    }


def payload_obs(result: ExperimentResult) -> Dict[str, Any]:
    """The ``BENCH_obs.json`` payload: overhead ratio + phase breakdown."""
    return {
        "experiment": "obs",
        "n_points": result.metadata["n_points"],
        "batch_size": result.metadata["batch_size"],
        "trials": result.metadata["trials"],
        "overhead_ratio": result.metadata["overhead_ratio"],
        "max_overhead": _env_float("BENCH_OBS_MAX_OVERHEAD", 0.05),
        "identical_clustering": result.metadata["identical_clustering"],
        "telemetry": result.metadata.get("telemetry"),
        "rows": result.tables["summary"],
    }


def gate_obs(result: ExperimentResult) -> None:
    """Telemetry must be nearly free and strictly observational.

    Best-of-trials ingest with telemetry on may cost at most
    ``BENCH_OBS_MAX_OVERHEAD`` (default 5%) over telemetry off, both modes
    must produce the identical clustering, and the instrumented run must
    actually have recorded phase timings (the gate would otherwise pass
    trivially on a broken no-op wiring).
    """
    max_overhead = _env_float("BENCH_OBS_MAX_OVERHEAD", 0.05)
    overhead = result.metadata["overhead_ratio"]
    assert overhead <= max_overhead, (
        f"telemetry overhead {overhead:.1%} exceeds the {max_overhead:.0%} budget"
    )
    assert result.metadata["identical_clustering"], (
        "telemetry-on produced a different clustering than telemetry-off"
    )
    telemetry = result.metadata.get("telemetry")
    assert telemetry, "instrumented run recorded no telemetry metadata"
    assign = telemetry["phases"].get("assign", {})
    assert assign.get("count", 0) > 0, (
        "instrumented run recorded no 'assign' phase timings — wiring is broken"
    )


# --------------------------------------------------------------------- #
# The contract table
# --------------------------------------------------------------------- #
def bench_contracts() -> Dict[str, Any]:
    """Benchmark contract per experiment id (imported lazily by the registry)."""
    from repro.harness.registry import BenchContract

    return {
        "table2": BenchContract(
            params=lambda: {"points": 2000},
            gate=gate_table2,
        ),
        "fig7": BenchContract(
            params=lambda: {"points": 20000, "rate": 1000.0},
            gate=gate_fig7,
        ),
        "fig8": BenchContract(
            params=lambda: {"points": 6000},
            gate=gate_fig8,
        ),
        "fig9": BenchContract(
            params=lambda: {
                "points": 6000,
                "datasets": ("KDDCUP99", "CoverType", "PAMAP2"),
                "algorithms": ("EDMStream", "D-Stream", "DenStream", "DBSTREAM"),
                "checkpoint_every": 1500,
            },
            gate=gate_fig9,
        ),
        "fig10": BenchContract(
            params=lambda: {
                "points": 6000,
                "datasets": ("KDDCUP99", "CoverType", "PAMAP2"),
                "algorithms": (
                    "EDMStream",
                    "D-Stream",
                    "DenStream",
                    "DBSTREAM",
                    "MR-Stream",
                ),
                "checkpoint_every": 1500,
            },
            gate=gate_fig10,
        ),
        "fig10_batch": BenchContract(
            params=params_fig10_batch,
            artifact="BENCH_throughput.json",
            payload=payload_fig10_batch,
            gate=gate_fig10_batch,
        ),
        "query": BenchContract(
            params=params_query,
            artifact="BENCH_query.json",
            payload=payload_query,
            gate=gate_query,
        ),
        "serve": BenchContract(
            params=params_serve,
            artifact="BENCH_serving.json",
            payload=payload_serve,
            gate=gate_serve,
        ),
        "memory": BenchContract(
            params=params_memory,
            artifact="BENCH_memory.json",
            payload=payload_memory,
            gate=gate_memory,
        ),
        "obs": BenchContract(
            params=params_obs,
            artifact="BENCH_obs.json",
            payload=payload_obs,
            gate=gate_obs,
        ),
        "fig11": BenchContract(
            params=lambda: {
                "points": 8000,
                "datasets": ("KDDCUP99", "CoverType", "PAMAP2"),
                "checkpoint_every": 2000,
            },
            gate=gate_fig11,
        ),
        "fig12": BenchContract(
            params=lambda: {
                "points": 3000,
                "dimensions": (10, 30, 100, 300),
                "algorithms": (
                    "EDMStream",
                    "D-Stream",
                    "DenStream",
                    "DBSTREAM",
                    "MR-Stream",
                ),
                "checkpoint_every": 1000,
            },
            gate=gate_fig12,
        ),
        "fig13": BenchContract(
            params=lambda: {
                "points": 6000,
                "datasets": ("KDDCUP99", "CoverType", "PAMAP2"),
                "algorithms": ("EDMStream", "D-Stream", "DenStream", "DBSTREAM"),
                "checkpoint_every": 2000,
                "quality_window": 300,
            },
            gate=gate_fig13,
        ),
        "fig14": BenchContract(
            params=lambda: {
                "points": 6000,
                "rates": (1000.0, 5000.0, 10000.0),
                "dataset": "CoverType",
                "checkpoint_every": 2000,
                "quality_window": 300,
            },
            gate=gate_fig14,
        ),
        "fig15": BenchContract(
            params=lambda: {
                "points": 20000,
                "rate": 1000.0,
                "static_tau": 5.0,
                "seconds_reported": 10,
            },
            gate=gate_fig15,
        ),
        "fig16": BenchContract(
            params=lambda: {
                "points": 6000,
                "rates": (1000.0, 5000.0, 10000.0),
                "datasets": ("CoverType", "PAMAP2"),
            },
            gate=gate_fig16,
        ),
        "fig17": BenchContract(
            params=lambda: {
                "points": 6000,
                "percentiles": (0.5, 1.0, 1.5, 2.0),
                "dataset": "PAMAP2",
                "checkpoint_every": 2000,
                "quality_window": 300,
            },
            gate=gate_fig17,
        ),
        "ablation": BenchContract(
            params=lambda: {
                "points": 6000,
                "dataset": "CoverType",
                "checkpoint_every": 1500,
            },
            gate=gate_ablation,
        ),
        "ablation_decay": BenchContract(
            params=lambda: {"points": 6000, "half_lives": (0.5, 2.0, 8.0, 1e9)},
            gate=gate_ablation_decay,
        ),
        "ablation_beta": BenchContract(
            params=lambda: {"points": 6000, "betas": (0.0005, 0.0021, 0.01, 0.05)},
            gate=gate_ablation_beta,
        ),
        "ablation_index": BenchContract(
            params=lambda: {"points": 2000, "seed_counts": (100, 500, 2000)},
            gate=gate_ablation_index,
        ),
        "ablation_tracking": BenchContract(
            params=lambda: {"points": 10000},
            gate=gate_ablation_tracking,
        ),
        "ablation_cftree": BenchContract(
            params=lambda: {"points": 6000},
            gate=gate_ablation_cftree,
        ),
    }
