"""Drives a stream clusterer over a data stream and measures its behaviour.

The runner reproduces the measurement methodology of Section 6:

* **response time** (Figure 9): the time needed to have an up-to-date
  clustering after a point arrives.  For EDMStream this is essentially the
  per-point online cost (the DP-Tree is maintained incrementally); for the
  two-phase baselines it additionally includes the amortised cost of their
  offline clustering step, which the runner triggers at every checkpoint.
* **throughput** (Figure 10): points processed per wall-clock second inside
  a checkpoint window.
* **cluster quality** (Figures 13, 14, 17): CMM evaluated over a sliding
  window of the most recent points at every checkpoint.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Iterable, Optional

from repro.evaluation.cmm import CMM
from repro.harness.results import RunMetrics
from repro.streams.point import StreamPoint


class StreamRunner:
    """Runs one algorithm over one stream and collects :class:`RunMetrics`.

    Parameters
    ----------
    checkpoint_every:
        Number of points between measurement checkpoints.
    quality_window:
        Number of recent points kept for the CMM evaluation at checkpoints.
    evaluate_quality:
        Whether to compute CMM (requires numeric points and labels).
    request_clustering_at_checkpoints:
        Whether the offline clustering step is timed at every checkpoint
        (set False for pure-throughput stress tests).
    cmm:
        Custom CMM instance; ``None`` uses default parameters.
    """

    def __init__(
        self,
        checkpoint_every: int = 5000,
        quality_window: int = 1000,
        evaluate_quality: bool = True,
        request_clustering_at_checkpoints: bool = True,
        cmm: Optional[CMM] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if quality_window < 1:
            raise ValueError(f"quality_window must be >= 1, got {quality_window}")
        self.checkpoint_every = checkpoint_every
        self.quality_window = quality_window
        self.evaluate_quality = evaluate_quality
        self.request_clustering_at_checkpoints = request_clustering_at_checkpoints
        self.cmm = cmm or CMM()

    # ------------------------------------------------------------------ #
    def run(
        self,
        algorithm: Any,
        stream: Iterable[StreamPoint],
        algorithm_name: Optional[str] = None,
        stream_name: Optional[str] = None,
    ) -> RunMetrics:
        """Feed ``stream`` into ``algorithm`` and return the collected metrics."""
        name = algorithm_name or getattr(algorithm, "name", type(algorithm).__name__)
        if stream_name is None:
            stream_name = getattr(stream, "name", "stream")
        metrics = RunMetrics(algorithm=name, stream_name=stream_name)

        window: Deque[StreamPoint] = deque(maxlen=self.quality_window)
        learn_seconds_in_window = 0.0
        points_in_window = 0
        total_started = time.perf_counter()

        for point in stream:
            started = time.perf_counter()
            algorithm.learn_one(point.values, timestamp=point.timestamp, label=point.label)
            learn_seconds_in_window += time.perf_counter() - started
            points_in_window += 1
            metrics.n_points += 1
            window.append(point)

            if points_in_window >= self.checkpoint_every:
                self._checkpoint(
                    algorithm, metrics, window, learn_seconds_in_window, points_in_window
                )
                learn_seconds_in_window = 0.0
                points_in_window = 0

        if points_in_window:
            self._checkpoint(
                algorithm, metrics, window, learn_seconds_in_window, points_in_window
            )
        metrics.total_seconds = time.perf_counter() - total_started
        return metrics

    # ------------------------------------------------------------------ #
    def _checkpoint(
        self,
        algorithm: Any,
        metrics: RunMetrics,
        window: Deque[StreamPoint],
        learn_seconds: float,
        points: int,
    ) -> None:
        request_seconds = 0.0
        if self.request_clustering_at_checkpoints:
            started = time.perf_counter()
            # Protocol path: the offline step publishes an immutable
            # ClusterSnapshot; queries below are served from it.
            algorithm.request_clustering()
            request_seconds = time.perf_counter() - started

        total_seconds = learn_seconds + request_seconds
        metrics.checkpoints.append(metrics.n_points)
        # Response time = cost of having an up-to-date clustering after one
        # more point arrives: the average online cost per point plus the cost
        # of one clustering request (not amortised — this is what a query at
        # that moment would have to wait for).  Incremental algorithms pay a
        # tiny request cost; two-phase algorithms pay their offline step.
        metrics.response_time_us.append(
            (learn_seconds / points + request_seconds) * 1e6
        )
        metrics.throughput.append(points / total_seconds if total_seconds > 0 else 0.0)
        metrics.clustering_request_ms.append(request_seconds * 1e3)
        metrics.n_clusters.append(int(getattr(algorithm, "n_clusters", 0)))

        if self.evaluate_quality and window:
            metrics.cmm.append(self._evaluate_quality(algorithm, window))

    def _evaluate_quality(self, algorithm: Any, window: Deque[StreamPoint]) -> float:
        points = []
        true_labels = []
        values = []
        timestamps = []
        for point in window:
            if point.label is None:
                continue
            points.append(point.as_tuple())
            true_labels.append(point.label)
            values.append(point.values)
            timestamps.append(point.timestamp)
        if not points:
            return 1.0
        # One batch query against the published snapshot instead of one
        # per-point scan each (predict_many falls back to a predict_one loop
        # for algorithms without a vectorised serving path).
        predict_many = getattr(algorithm, "predict_many", None)
        if predict_many is not None:
            predicted_labels = [int(label) for label in predict_many(values)]
        else:
            predicted_labels = [int(algorithm.predict_one(v)) for v in values]
        result = self.cmm.evaluate(points, true_labels, predicted_labels, timestamps)
        return result.value
