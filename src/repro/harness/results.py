"""Result containers used by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class SeriesResult:
    """A named (x, y) series, e.g. "response time vs stream length"."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    x_label: str = "x"
    y_label: str = "y"

    def append(self, x: float, y: float) -> None:
        """Append one (x, y) sample."""
        self.x.append(float(x))
        self.y.append(float(y))

    def __len__(self) -> int:
        return len(self.x)

    def mean(self) -> float:
        """Mean of the y values (0 for an empty series)."""
        return sum(self.y) / len(self.y) if self.y else 0.0

    def last(self) -> Optional[float]:
        """Last y value, or ``None`` for an empty series."""
        return self.y[-1] if self.y else None

    def as_rows(self) -> List[Dict[str, float]]:
        """The series as a list of {x_label: x, y_label: y} rows."""
        return [{self.x_label: x, self.y_label: y} for x, y in zip(self.x, self.y)]


@dataclass
class RunMetrics:
    """Measurements collected while running one algorithm over one stream."""

    algorithm: str
    stream_name: str
    n_points: int = 0
    total_seconds: float = 0.0
    #: Stream length (points processed) at each checkpoint.
    checkpoints: List[int] = field(default_factory=list)
    #: Average per-point response time (µs) inside each checkpoint window,
    #: including the amortised cost of bringing the clustering up to date.
    response_time_us: List[float] = field(default_factory=list)
    #: Throughput (points/second) inside each checkpoint window.
    throughput: List[float] = field(default_factory=list)
    #: Wall-clock cost (ms) of one clustering request at each checkpoint.
    clustering_request_ms: List[float] = field(default_factory=list)
    #: CMM value over the recent-points window at each checkpoint.
    cmm: List[float] = field(default_factory=list)
    #: Number of macro clusters at each checkpoint.
    n_clusters: List[int] = field(default_factory=list)
    #: Free-form extra measurements (filter statistics, reservoir size, ...).
    extras: Dict[str, Any] = field(default_factory=dict)

    def series(self, field_name: str, y_label: Optional[str] = None) -> SeriesResult:
        """Expose one checkpointed measurement as a :class:`SeriesResult`."""
        values = getattr(self, field_name)
        return SeriesResult(
            name=self.algorithm,
            x=[float(c) for c in self.checkpoints],
            y=[float(v) for v in values],
            x_label="stream length",
            y_label=y_label or field_name,
        )

    @property
    def mean_response_time_us(self) -> float:
        """Mean per-point response time over all checkpoints (µs)."""
        if not self.response_time_us:
            return 0.0
        return sum(self.response_time_us) / len(self.response_time_us)

    @property
    def mean_throughput(self) -> float:
        """Mean throughput over all checkpoints (points/second)."""
        if not self.throughput:
            return 0.0
        return sum(self.throughput) / len(self.throughput)

    @property
    def mean_cmm(self) -> float:
        """Mean CMM over all checkpoints."""
        if not self.cmm:
            return 0.0
        return sum(self.cmm) / len(self.cmm)


@dataclass
class ExperimentResult:
    """The outcome of one experiment (one table or figure of the paper)."""

    experiment_id: str
    description: str
    series: Dict[str, SeriesResult] = field(default_factory=dict)
    tables: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    runs: List[RunMetrics] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_series(self, key: str, series: SeriesResult) -> None:
        """Register a named series."""
        self.series[key] = series

    def add_table(self, key: str, rows: List[Dict[str, Any]]) -> None:
        """Register a named table (list of row dicts)."""
        self.tables[key] = rows

    def to_text(self) -> str:
        """Render every table and series of the experiment as plain text."""
        from repro.harness.reporting import format_series, format_table

        lines = [f"== {self.experiment_id}: {self.description} =="]
        for key, rows in self.tables.items():
            lines.append("")
            lines.append(f"-- table: {key} --")
            lines.append(format_table(rows))
        for key, series in self.series.items():
            lines.append("")
            lines.append(f"-- series: {key} --")
            lines.append(format_series(series))
        return "\n".join(lines)
